//! The real-data path: everything in this repository also runs on genuine
//! Backblaze daily CSVs. This example round-trips a simulated fleet through
//! the Backblaze format and trains on the re-loaded data — byte-format
//! compatible with <https://www.backblaze.com/b2/hard-drive-test-data.html>.
//!
//! ```sh
//! cargo run --release --example backblaze_csv [path/to/backblaze.csv]
//! ```
//!
//! With a path argument, that CSV is loaded instead of simulated data.

use orfpred::eval::metrics::score_test_disks;
use orfpred::eval::prep::{build_matrix, training_labels};
use orfpred::eval::scorer::RfScorer;
use orfpred::eval::split::DiskSplit;
use orfpred::smart::attrs::table2_feature_columns;
use orfpred::smart::csv::{read_dataset, write_dataset};
use orfpred::smart::gen::{FleetConfig, FleetSim, ScalePreset};
use orfpred::trees::{ForestConfig, RandomForest};
use orfpred::util::Xoshiro256pp;
use std::io::BufReader;

fn main() {
    let ds = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading Backblaze CSV from {path}…");
            let file = std::fs::File::open(&path).expect("open CSV");
            read_dataset(BufReader::new(file)).expect("parse CSV")
        }
        None => {
            let mut fleet = FleetConfig::sta(ScalePreset::Tiny, 3);
            fleet.duration_days = 365;
            let ds = FleetSim::collect(&fleet);
            // Round-trip through the on-disk format to prove compatibility.
            let mut buf = Vec::new();
            write_dataset(&ds, &mut buf).expect("serialize");
            println!(
                "simulated {} snapshots → {:.1} MB of Backblaze-format CSV → reparsed",
                ds.n_records(),
                buf.len() as f64 / 1e6
            );
            read_dataset(BufReader::new(buf.as_slice())).expect("reparse")
        }
    };

    println!(
        "dataset: model {}, {} disks ({} failed), {} snapshots over {} days",
        ds.model,
        ds.disks.len(),
        ds.n_failed(),
        ds.n_records(),
        ds.duration_days
    );

    let mut rng = Xoshiro256pp::seed_from_u64(17);
    let split = DiskSplit::stratified(&ds, 0.7, &mut rng);
    let labels = training_labels(&ds, &split.is_train, ds.duration_days, 7);
    let Some(tm) = build_matrix(&ds, &labels, &table2_feature_columns(), Some(3.0), &mut rng)
    else {
        println!("not enough positive samples to train — nothing to do");
        return;
    };
    let model = RandomForest::fit(&tm.x, &tm.y, &ForestConfig::default(), 42);
    let scorer = RfScorer {
        model,
        scaler: tm.scaler,
    };
    let scored = score_test_disks(&ds, &split.test, &scorer, 7);
    let op = scored.tune_for_far(0.02);
    println!(
        "offline RF on the loaded data: FDR {:.1}% at FAR {:.2}% (τ = {:.2})",
        op.fdr * 100.0,
        op.far * 100.0,
        op.tau
    );
}
