//! The paper's closing claim: "our method should work for a wide range of
//! detection applications where the training data becomes available
//! sequentially". This example applies the ORF to a completely different
//! domain — drifting network-latency anomaly detection — using nothing but
//! the public `OnlineRandomForest` API.
//!
//! ```sh
//! cargo run --release --example generic_stream
//! ```

use orfpred::core::{OnlineRandomForest, OrfConfig};
use orfpred::util::{dist, Xoshiro256pp};

/// Synthetic service telemetry: (p50 latency, p99 latency, error rate,
/// queue depth). Anomalies are saturation events; the *normal* operating
/// point drifts upward over time (traffic growth), which would age a
/// frozen model.
fn sample(rng: &mut Xoshiro256pp, t: f64, anomalous: bool) -> [f32; 4] {
    let drift = 1.0 + 0.5 * t; // normal load grows 50% over the run
    let (lat_mult, err, queue) = if anomalous {
        (
            dist::log_normal(rng, 1.2, 0.3),
            dist::log_normal(rng, -3.0, 0.5),
            dist::log_normal(rng, 2.5, 0.4),
        )
    } else {
        (
            dist::log_normal(rng, 0.0, 0.15),
            dist::log_normal(rng, -6.5, 0.5),
            dist::log_normal(rng, 0.5, 0.3),
        )
    };
    let p50 = 20.0 * drift * lat_mult;
    let p99 = p50 * dist::log_normal(rng, 1.0, 0.2);
    [
        (p50 / 200.0) as f32,
        (p99 / 2_000.0) as f32,
        err as f32,
        (queue / 100.0) as f32,
    ]
}

fn main() {
    let cfg = OrfConfig {
        n_trees: 20,
        n_tests: 100,
        min_parent_size: 60.0,
        lambda_pos: 1.0,
        lambda_neg: 0.05, // anomalies are ~3% of the stream
        age_threshold: 2_000,
        oobe_threshold: 0.35,
        ..OrfConfig::default()
    };
    let mut forest = OnlineRandomForest::new(4, cfg, 42);
    let mut rng = Xoshiro256pp::seed_from_u64(7);

    let total = 60_000usize;
    let mut correct_recent = 0usize;
    let mut seen_recent = 0usize;
    for i in 0..total {
        let t = i as f64 / total as f64;
        let anomalous = rng.bernoulli(0.03);
        let x = sample(&mut rng, t, anomalous);

        // Predict before learning (prequential evaluation).
        let hit = forest.predict(&x, 0.5) == anomalous;
        if i >= total - 10_000 {
            seen_recent += 1;
            correct_recent += usize::from(hit);
        }
        forest.update(&x, anomalous);

        if i % 10_000 == 9_999 {
            println!(
                "after {:>6} events: trees replaced so far {}, score(normal) {:.2}, score(saturated) {:.2}",
                i + 1,
                forest.trees_replaced(),
                forest.score(&sample(&mut rng, t, false)),
                forest.score(&sample(&mut rng, t, true)),
            );
        }
    }
    println!(
        "\nprequential accuracy over the final 10k events: {:.1}% \
         (under a 50% drift in the normal operating point, no retraining)",
        100.0 * correct_recent as f64 / seen_recent as f64
    );
}
