//! Quickstart: train an Online Random Forest on a streaming SMART fleet and
//! raise alarms for disks about to fail.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use orfpred::core::{OnlinePredictor, OnlinePredictorConfig};
use orfpred::smart::attrs::table2_feature_columns;
use orfpred::smart::gen::{FleetConfig, FleetEvent, FleetSim, ScalePreset};

fn main() {
    // A small simulated fleet: ~275 disks over 39 months, Backblaze-shaped.
    let mut fleet = FleetConfig::sta(ScalePreset::Tiny, 7);
    fleet.duration_days = 400;

    // Algorithm 2 pipeline: online labeller + streaming scaler + ORF.
    let mut cfg = OnlinePredictorConfig::new(table2_feature_columns(), 42);
    cfg.orf.n_trees = 20;
    cfg.alarm_threshold = 0.8;
    let mut predictor = OnlinePredictor::new(&cfg);

    let mut alarms = 0u64;
    let mut alarmed_disks = std::collections::HashSet::new();
    let mut failures = Vec::new();
    for event in FleetSim::new(&fleet) {
        match &event {
            FleetEvent::Sample(_) => {
                if let Some(alarm) = predictor.observe(&event) {
                    alarms += 1;
                    if alarmed_disks.insert(alarm.disk_id) {
                        println!(
                            "day {:>3}: disk {:>4} at risk (score {:.2}) — migrate its data",
                            alarm.day, alarm.disk_id, alarm.score
                        );
                    }
                }
            }
            FleetEvent::Failure { disk_id, day } => {
                failures.push((*disk_id, *day));
                predictor.observe(&event);
            }
        }
    }

    let detected = failures
        .iter()
        .filter(|(d, _)| alarmed_disks.contains(d))
        .count();
    println!("---");
    println!(
        "failures: {} | detected in advance: {} | total alarms: {} | trees replaced: {}",
        failures.len(),
        detected,
        alarms,
        predictor.forest().trees_replaced()
    );
    println!(
        "model learned from {} labelled samples, no offline (re)training.",
        predictor.forest().samples_seen()
    );
}
