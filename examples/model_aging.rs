//! Model aging in one picture: a Random Forest trained once on the first
//! months slowly loses calibration as the SMART distribution drifts, while
//! the ORF — fed the same stream through its online labeller — keeps its
//! false-alarm rate flat. This is the paper's §4.5 story, condensed, plus
//! the closed loop on top: the same ORF with a drift-triggered long-term
//! update policy armed, so a detected shift rebuilds the forest live.
//!
//! ```sh
//! cargo run --release --example model_aging
//! ```

use orfpred::core::{AdaptConfig, UpdatePolicy};
use orfpred::eval::longterm::{run_closed_loop, run_longterm, LongtermConfig};
use orfpred::smart::attrs::table2_feature_columns;
use orfpred::smart::gen::{FleetConfig, FleetSim, ScalePreset};

fn main() {
    // Aging needs a population large enough for the drift mechanisms
    // (fleet turnover, batch shifts) to dominate sampling noise.
    let mut fleet = FleetConfig::sta(ScalePreset::Small, 11);
    fleet.duration_days = 900;
    println!(
        "generating fleet ({} disks, {} days)…",
        fleet.n_disks(),
        fleet.duration_days
    );
    let ds = FleetSim::collect(&fleet);

    let mut cfg = LongtermConfig::new(table2_feature_columns(), 6, 29, 3);
    cfg.forest.n_trees = 20;
    cfg.orf.n_trees = 20;
    cfg.orf.n_tests = 200;
    let result = run_longterm(&ds, &cfg);

    // The closed loop: same stream, same ORF settings, but a drift detector
    // watches the released healthy population and a policy rebuilds the
    // forest from buffered labelled history whenever it fires.
    let mut adapt = AdaptConfig::new(UpdatePolicy::Accumulate, cfg.cols.clone());
    adapt.detector.window = 256;
    adapt.detector.check_every = 128;
    adapt.detector.z_threshold = 5.0;
    let closed = run_closed_loop(&ds, &cfg, &adapt);

    println!("\nmonthly FAR (%) — deployment month 6 onward:");
    println!(
        "{:>6} {:>12} {:>12} {:>16}",
        "month", "frozen RF", "ORF", closed.series.name
    );
    for (i, &m) in result.orf.months.iter().enumerate() {
        println!(
            "{:>6} {:>12.2} {:>12.2} {:>16.2}",
            m, result.no_update.far[i], result.orf.far[i], closed.series.far[i]
        );
    }

    let avg = |xs: &[f64]| {
        let v: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
        orfpred::util::stats::mean(&v)
    };
    let n = result.orf.months.len();
    let late = n.saturating_sub(4);
    println!(
        "\nlate-month mean FAR: frozen RF {:.2}% vs ORF {:.2}% vs closed loop {:.2}%",
        avg(&result.no_update.far[late..]),
        avg(&result.orf.far[late..]),
        avg(&closed.series.far[late..])
    );
    println!(
        "closed loop: {} drift events, {} forest rebuilds — triggered, not scheduled",
        closed.drift_events, closed.rebuilds
    );
    println!("ORF needed zero retraining; the frozen model would need a scheduled pipeline.");
}
