//! Model aging in one picture: a Random Forest trained once on the first
//! months slowly loses calibration as the SMART distribution drifts, while
//! the ORF — fed the same stream through its online labeller — keeps its
//! false-alarm rate flat. This is the paper's §4.5 story, condensed.
//!
//! ```sh
//! cargo run --release --example model_aging
//! ```

use orfpred::eval::longterm::{run_longterm, LongtermConfig};
use orfpred::smart::attrs::table2_feature_columns;
use orfpred::smart::gen::{FleetConfig, FleetSim, ScalePreset};

fn main() {
    // Aging needs a population large enough for the drift mechanisms
    // (fleet turnover, batch shifts) to dominate sampling noise.
    let mut fleet = FleetConfig::sta(ScalePreset::Small, 11);
    fleet.duration_days = 900;
    println!(
        "generating fleet ({} disks, {} days)…",
        fleet.n_disks(),
        fleet.duration_days
    );
    let ds = FleetSim::collect(&fleet);

    let mut cfg = LongtermConfig::new(table2_feature_columns(), 6, 29, 3);
    cfg.forest.n_trees = 20;
    cfg.orf.n_trees = 20;
    cfg.orf.n_tests = 200;
    let result = run_longterm(&ds, &cfg);

    println!("\nmonthly FAR (%) — deployment month 6 onward:");
    println!("{:>6} {:>12} {:>12}", "month", "frozen RF", "ORF");
    for (i, &m) in result.orf.months.iter().enumerate() {
        println!(
            "{:>6} {:>12.2} {:>12.2}",
            m, result.no_update.far[i], result.orf.far[i]
        );
    }

    let avg = |xs: &[f64]| {
        let v: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
        orfpred::util::stats::mean(&v)
    };
    let n = result.orf.months.len();
    let late = n.saturating_sub(4);
    println!(
        "\nlate-month mean FAR: frozen RF {:.2}% vs ORF {:.2}%",
        avg(&result.no_update.far[late..]),
        avg(&result.orf.far[late..])
    );
    println!("ORF needed zero retraining; the frozen model would need a scheduled pipeline.");
}
