//! Feature selection walkthrough (§4.2): Wilcoxon rank-sum screening of the
//! 48 candidate SMART features, redundancy elimination, and a Random-Forest
//! importance ranking of the survivors.
//!
//! ```sh
//! cargo run --release --example feature_selection
//! ```

use orfpred::smart::attrs::{feature_name, N_FEATURES};
use orfpred::smart::gen::{FleetConfig, FleetSim, ScalePreset};
use orfpred::smart::label::LabelPolicy;
use orfpred::smart::select::{rank_sum_test, select_features};
use orfpred::util::Xoshiro256pp;

fn main() {
    let mut fleet = FleetConfig::sta(ScalePreset::Tiny, 5);
    fleet.n_good = 200;
    fleet.n_failed = 40;
    fleet.duration_days = 500;
    let ds = FleetSim::collect(&fleet);

    // Label with the 7-day window, gather class-wise rows.
    let labels = LabelPolicy::default().label_dataset(&ds, ds.duration_days);
    let mut rng = Xoshiro256pp::seed_from_u64(9);
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for l in &labels {
        let row = ds.records[l.record].features.as_slice();
        if l.positive {
            pos.push(row);
        } else if rng.bernoulli(0.1) {
            neg.push(row);
        }
    }
    println!(
        "{} positive rows, {} (sampled) negative rows",
        pos.len(),
        neg.len()
    );

    // Show a couple of individual rank-sum verdicts first.
    for name in ["smart_187_raw", "smart_194_raw", "smart_241_raw"] {
        let col = (0..N_FEATURES).find(|&c| feature_name(c) == name).unwrap();
        let xs: Vec<f32> = pos.iter().map(|r| r[col]).collect();
        let ys: Vec<f32> = neg.iter().map(|r| r[col]).collect();
        let t = rank_sum_test(&xs, &ys);
        println!("{name:>22}: z = {:+7.2}, p = {:.2e}", t.z, t.p);
    }

    // Full pipeline.
    let candidates: Vec<usize> = (0..N_FEATURES).collect();
    let report = select_features(&pos, &neg, &candidates, 0.01, 0.97);
    println!(
        "\nrank-sum filter dropped {} of 48; redundancy dropped {} more; {} kept:",
        report.dropped_nondiscriminative.len(),
        report.dropped_redundant.len(),
        report.kept.len()
    );
    for (i, &col) in report.kept.iter().enumerate() {
        print!("{:>26}", feature_name(col));
        if i % 2 == 1 {
            println!();
        }
    }
    println!();
    println!(
        "\ndropped as non-discriminative: {}",
        report
            .dropped_nondiscriminative
            .iter()
            .map(|&c| feature_name(c))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
