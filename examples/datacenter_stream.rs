//! Deployment simulation: run the Algorithm 2 pipeline over a live fleet
//! and report operational statistics — detection lead times, alarm volume,
//! and per-month detection/false-alarm counts — the numbers an SRE team
//! would actually watch.
//!
//! ```sh
//! cargo run --release --example datacenter_stream
//! ```

use orfpred::core::{OnlinePredictor, OnlinePredictorConfig};
use orfpred::smart::attrs::table2_feature_columns;
use orfpred::smart::gen::{FleetConfig, FleetSim, ScalePreset};
use std::collections::HashMap;

fn main() {
    let fleet = FleetConfig::sta(ScalePreset::Tiny, 2024);
    let sim = FleetSim::new(&fleet);
    let infos = sim.disk_infos();

    let mut cfg = OnlinePredictorConfig::new(table2_feature_columns(), 1);
    cfg.alarm_threshold = 0.85;
    cfg.orf.n_trees = 20;
    cfg.orf.n_tests = 200;
    let mut predictor = OnlinePredictor::new(&cfg);

    // first alarm day per disk
    let mut first_alarm: HashMap<u32, u16> = HashMap::new();
    let mut alarms_per_month: HashMap<u16, u32> = HashMap::new();

    for event in sim {
        if let Some(alarm) = predictor.observe(&event) {
            first_alarm.entry(alarm.disk_id).or_insert(alarm.day);
            *alarms_per_month.entry(alarm.day / 30).or_default() += 1;
        }
    }

    // Lead-time statistics over failed disks.
    let mut lead_times = Vec::new();
    let mut missed = 0usize;
    let mut too_early = 0usize;
    for info in infos.iter().filter(|i| i.failed) {
        match first_alarm.get(&info.disk_id) {
            None => missed += 1,
            Some(&alarm_day) => {
                let lead = i32::from(info.last_day) - i32::from(alarm_day);
                if lead > 60 {
                    too_early += 1; // alarm long before any real symptom
                } else {
                    lead_times.push(lead);
                }
            }
        }
    }
    lead_times.sort_unstable();
    let false_alarm_disks = infos
        .iter()
        .filter(|i| !i.failed && first_alarm.contains_key(&i.disk_id))
        .count();

    println!("fleet: {} disks, {} failures", infos.len(), fleet.n_failed);
    println!(
        "failed disks alarmed: {} (missed {missed}, alarmed >60d early {too_early})",
        lead_times.len()
    );
    if !lead_times.is_empty() {
        let median = lead_times[lead_times.len() / 2];
        println!(
            "detection lead time (days before failure): median {median}, min {}, max {}",
            lead_times.first().unwrap(),
            lead_times.last().unwrap()
        );
    }
    println!(
        "good disks ever alarmed: {false_alarm_disks} of {}",
        infos.iter().filter(|i| !i.failed).count()
    );
    let mut months: Vec<_> = alarms_per_month.into_iter().collect();
    months.sort_unstable();
    println!("alarms per month: {months:?}");
}
