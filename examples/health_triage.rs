//! Multi-level health triage (extension): instead of a binary alarm,
//! assign each disk a residual-life band — "act now", "schedule migration",
//! "healthy" — the formulation the paper's related work (RNN/GBRT health
//! assessment) argues is what operators actually need.
//!
//! ```sh
//! cargo run --release --example health_triage
//! ```

use orfpred::eval::health::{HealthAssessor, HealthLevel};
use orfpred::eval::split::DiskSplit;
use orfpred::smart::attrs::table2_feature_columns;
use orfpred::smart::gen::{FleetConfig, FleetSim, ScalePreset};
use orfpred::trees::ForestConfig;
use orfpred::util::Xoshiro256pp;

fn main() {
    let mut fleet = FleetConfig::sta(ScalePreset::Tiny, 99);
    fleet.n_good = 200;
    fleet.n_failed = 45;
    fleet.duration_days = 400;
    println!("generating fleet ({} disks)…", fleet.n_disks());
    let ds = FleetSim::collect(&fleet);

    let mut rng = Xoshiro256pp::seed_from_u64(1);
    let split = DiskSplit::stratified(&ds, 0.7, &mut rng);
    let forest = ForestConfig {
        n_trees: 20,
        ..ForestConfig::default()
    };
    let assessor = HealthAssessor::fit(
        &ds,
        &split.is_train,
        &table2_feature_columns(),
        &forest,
        &mut rng,
    )
    .expect("trainable fleet");

    // Band accuracy on held-out failed-disk samples.
    let report = assessor.evaluate(&ds, &split.is_train);
    println!(
        "\nheld-out failed-disk samples: {} | band accuracy {:.1}%",
        report.n_samples,
        report.acc_failed * 100.0
    );
    println!(
        "recall by true band: critical {:.1}%, warning {:.1}%, healthy {:.1}%",
        report.recall[0] * 100.0,
        report.recall[1] * 100.0,
        report.recall[2] * 100.0
    );

    // Operator view: triage every held-out disk by its latest snapshot.
    let by_disk = ds.records_by_disk();
    let mut counts = [0usize; 3];
    let mut act_now: Vec<(u32, bool)> = Vec::new();
    for &disk in &split.test {
        let Some(&last) = by_disk[disk as usize].last() else {
            continue;
        };
        let level = assessor.assess(&ds.records[last].features);
        let idx = match level {
            HealthLevel::Critical => 0,
            HealthLevel::Warning => 1,
            HealthLevel::Healthy => 2,
        };
        counts[idx] += 1;
        if level == HealthLevel::Critical {
            act_now.push((disk, ds.disks[disk as usize].failed));
        }
    }
    println!(
        "\ntriage of {} held-out disks' latest snapshots: {} critical / {} warning / {} healthy",
        split.test.len(),
        counts[0],
        counts[1],
        counts[2]
    );
    let true_pos = act_now.iter().filter(|(_, failed)| *failed).count();
    println!(
        "of the {} 'act now' disks, {} really were about to fail",
        act_now.len(),
        true_pos
    );
    for (disk, failed) in act_now.iter().take(10) {
        println!(
            "  disk S{disk:08} → migrate immediately ({})",
            if *failed {
                "correct: failed"
            } else {
                "false alarm"
            }
        );
    }
}
