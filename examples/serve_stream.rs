//! Drive the sharded serving engine two ways: through the line-delimited
//! JSON protocol (exactly what `orfpredd` speaks on stdin/stdout) and
//! through the in-process [`Engine`] API, showing checkpoint/restore and
//! the live counters along the way.
//!
//! ```sh
//! cargo run --release --example serve_stream
//! ```

use orfpred::core::OnlinePredictorConfig;
use orfpred::serve::{daemon, Checkpoint, DaemonConfig, Engine, Request, ServeConfig};
use orfpred::smart::attrs::table2_feature_columns;
use orfpred::smart::gen::{FleetConfig, FleetEvent, FleetSim, ScalePreset};
use std::io::Cursor;

fn serve_cfg(n_shards: usize) -> ServeConfig {
    let mut p = OnlinePredictorConfig::new(table2_feature_columns(), 7);
    p.alarm_threshold = 0.85;
    p.orf.n_trees = 20;
    p.orf.n_tests = 200;
    let mut cfg = ServeConfig::new(p);
    cfg.n_shards = n_shards;
    cfg
}

fn fleet() -> Vec<FleetEvent> {
    let mut cfg = FleetConfig::sta(ScalePreset::Tiny, 2024);
    cfg.duration_days = 150;
    FleetSim::new(&cfg).collect()
}

/// Render a fleet event as a protocol request line.
fn to_request(event: &FleetEvent) -> Request {
    match event {
        FleetEvent::Sample(rec) => Request::Sample {
            disk_id: rec.disk_id,
            day: rec.day,
            features: rec.features.to_vec(),
        },
        FleetEvent::Failure { disk_id, day } => Request::Failure {
            disk_id: *disk_id,
            day: *day,
        },
    }
}

fn main() {
    let events = fleet();
    println!("fleet stream: {} events", events.len());

    // --- 1. The wire protocol, exactly as a monitoring agent would use it.
    let mut script = String::new();
    for event in &events {
        script.push_str(&to_request(event).to_line());
        script.push('\n');
    }
    script.push_str(&Request::Stats.to_line());
    script.push('\n');
    script.push_str(&Request::Shutdown.to_line());
    script.push('\n');

    let cfg = DaemonConfig {
        serve: serve_cfg(4),
        listen: None,
        checkpoint_path: None,
        catchup_store: None,
    };
    let mut transcript = Vec::new();
    let finished =
        daemon::run(&cfg, Cursor::new(script), &mut transcript).expect("daemon run succeeds");
    let transcript = String::from_utf8(transcript).unwrap();
    let alarm_lines = transcript
        .lines()
        .filter(|l| l.contains("\"type\":\"alarm\""))
        .count();
    println!("\n== protocol run (4 shards) ==");
    println!("daemon emitted {alarm_lines} alarm lines; sample output:");
    for line in transcript.lines().take(3) {
        println!("  {line}");
    }
    if let Some(stats) = transcript
        .lines()
        .find(|l| l.contains("\"type\":\"stats\""))
    {
        println!("  {stats}");
    }

    // --- 2. The in-process API with a mid-stream checkpoint + restore.
    println!("\n== engine API run with checkpoint/restore ==");
    let ckpt = std::env::temp_dir().join("orfpred_serve_stream_example.json");
    let half = events.len() / 2;

    let engine = Engine::new(&serve_cfg(4));
    for e in &events[..half] {
        engine.ingest(e.clone()).unwrap();
    }
    engine.checkpoint(&ckpt).unwrap();
    let mut alarms = engine.take_alarms();
    println!(
        "first half: {} alarms, checkpoint written to {}",
        alarms.len(),
        ckpt.display()
    );
    drop(engine); // simulate a crash — in-flight state past the barrier is lost

    let restored = Engine::restore(&serve_cfg(2), Checkpoint::load(&ckpt).unwrap());
    for e in &events[half..] {
        restored.ingest(e.clone()).unwrap();
    }
    let stats = restored.stats();
    let fin = restored.finish().unwrap();
    alarms.extend(fin.alarms);
    println!(
        "resumed on 2 shards: {} alarms total, {} forest samples, \
         score p99 ≈ {} ns over {} measured scores",
        alarms.len(),
        stats.forest_samples_seen,
        stats.score_latency_p99_ns,
        stats.scores_measured
    );

    // The combined alarm stream equals the protocol run's: same model, same
    // events, different deployment shape.
    assert_eq!(
        finished.alarms, alarms,
        "protocol and API runs must agree exactly"
    );
    println!("protocol run and checkpoint/restore run raised identical alarms ✓");
    std::fs::remove_file(&ckpt).ok();
}
