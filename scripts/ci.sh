#!/usr/bin/env sh
# CI entry point: release build, tier-1 tests, then the deterministic
# fault-injection suites with a pinned seed set (override with
# TESTKIT_SEEDS=1,2,3 scripts/ci.sh — see README "Testing & fault
# injection" and DESIGN.md §9).
set -eu

cd "$(dirname "$0")/.."

# Pinned default so CI runs are reproducible; any failure prints an
# `orfpred faultsim --seed <n> --size <z>` repro line.
TESTKIT_SEEDS="${TESTKIT_SEEDS:-11,12,13,14,15,16}"
export TESTKIT_SEEDS

echo "== build (release) =="
cargo build --release

echo "== lint: clippy, warnings are errors =="
cargo clippy --workspace -- -D warnings

echo "== lint: orfpred invariants =="
# Workspace-wide static pass: determinism, unsafe-audit, panic-path and
# lock-discipline rules (DESIGN.md §12). Hard gate — on failure, each
# diagnostic names its rule id; dig deeper with
#   cargo run -p orfpred-analyze -- --explain <rule-id>
cargo run -q -p orfpred-analyze --release -- --deny

echo "== lint: graph invariants =="
# Cross-crate pass (DESIGN.md §17): lock-acquisition cycles across serve
# and fleet, checkpoint save/restore field coverage, and ORFB wire-tag
# exhaustiveness against the fleet_equiv corpus. Also a hard gate.
cargo run -q -p orfpred-analyze --release -- --deny \
    --only lock_order,checkpoint_coverage,wire_exhaustive

echo "== lint: machine-readable output smoke check =="
# The JSON renderer feeds external tooling; a clean run must emit an
# empty violations array and a non-zero scan count.
json_out="$(cargo run -q -p orfpred-analyze --release -- --format json)"
case "$json_out" in
    *'"violations": []'*) : ;;
    *) echo "lint --format json: expected an empty violations array:"; echo "$json_out"; exit 1 ;;
esac

echo "== bench compile gate (benches must not rot, store + prep + score + fleet included) =="
cargo bench --no-run
cargo bench -p orfpred-bench --bench store --no-run
cargo bench -p orfpred-bench --bench prep --no-run
cargo bench -p orfpred-bench --bench score --no-run
cargo bench -p orfpred-bench --bench fleet --no-run

echo "== tier-1: full test suite =="
cargo test -q

echo "== fault suites (TESTKIT_SEEDS=$TESTKIT_SEEDS) =="
cargo test -q \
    --test fault_checkpoint \
    --test fault_shard \
    --test fault_reorder \
    --test fault_protocol \
    --test fault_labeller \
    --test fault_sim \
    --test fault_store \
    --test fault_prep

echo "== closed-loop adaptation suite =="
cargo test -q --test serve_adapt

echo "== pluggable-domain equivalence suite (schema + window stage) =="
cargo test -q --test domain_equiv

echo "== store golden-trace property suite =="
cargo test -q --test store_roundtrip

echo "== batch kernel equivalence suite =="
cargo test -q --test batch_equiv --test frozen_equiv

echo "== fleet: multi-tenant serving equivalence suite =="
cargo test -q -p orfpred-fleet
cargo test -q --test fleet_equiv

echo "ci: all green"
