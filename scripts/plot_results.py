#!/usr/bin/env python3
"""Render the paper's figures from the JSON artefacts in results/.

Usage:
    cargo run --release -p orfpred-repro -- all --scale small
    python3 scripts/plot_results.py [results_dir] [out_dir]

Requires matplotlib. Produces fig2.png … fig7.png mirroring the paper's
Figures 2–7, plus roc.png when `repro roc` artefacts are present.
"""

import json
import pathlib
import sys

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover
    sys.exit("matplotlib is required: pip install matplotlib")

RESULTS = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "results")
OUT = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else "results")
OUT.mkdir(parents=True, exist_ok=True)

STYLE = {
    "ORF": dict(color="#d62728", marker="o"),
    "Offline RF": dict(color="#1f77b4", marker="s"),
    "DT": dict(color="#2ca02c", marker="^"),
    "SVM": dict(color="#9467bd", marker="v"),
    "No updating": dict(color="#1f77b4", marker="s"),
    "1-month replacing": dict(color="#2ca02c", marker="^"),
    "Accumulation": dict(color="#9467bd", marker="v"),
}


def load(name):
    path = RESULTS / f"{name}.json"
    if not path.exists():
        print(f"  (skip: {path} not found)")
        return None
    return json.loads(path.read_text())


def plot_monthly(name, title, ylabel="FDR (%)"):
    data = load(name)
    if data is None:
        return
    months = data["months"]
    fig, ax = plt.subplots(figsize=(6, 4))
    for key, label in [
        ("orf_fdr", "ORF"),
        ("rf_fdr", "Offline RF"),
        ("dt_fdr", "DT"),
        ("svm_fdr", "SVM"),
    ]:
        ys = data[key]
        pts = [(m, y) for m, y in zip(months, ys) if y == y]  # drop NaN
        if pts:
            ax.plot(*zip(*pts), label=label, **STYLE[label])
    ax.set_xlabel("Number Of Months")
    ax.set_ylabel(ylabel)
    ax.set_title(title)
    ax.grid(alpha=0.3)
    ax.legend()
    fig.tight_layout()
    fig.savefig(OUT / f"{name}.png", dpi=150)
    plt.close(fig)
    print(f"  wrote {OUT / f'{name}.png'}")


def plot_longterm(name, metric, title, fig_name):
    data = load(name)
    if data is None:
        return
    fig, ax = plt.subplots(figsize=(6, 4))
    for key in ["no_update", "replacing", "accumulation", "orf"]:
        series = data[key]
        label = series["name"]
        pts = [(m, y) for m, y in zip(series["months"], series[metric]) if y == y]
        if pts:
            ax.plot(*zip(*pts), label=label, **STYLE.get(label, {}))
    ax.set_xlabel("Number Of Months")
    ax.set_ylabel(f"{metric.upper()} (%)")
    ax.set_title(title)
    ax.grid(alpha=0.3)
    ax.legend()
    fig.tight_layout()
    fig.savefig(OUT / f"{fig_name}.png", dpi=150)
    plt.close(fig)
    print(f"  wrote {OUT / f'{fig_name}.png'}")


def plot_roc(name):
    data = load(name)
    if data is None:
        return
    fig, ax = plt.subplots(figsize=(5, 5))
    for model in data:
        pts = [(p["far"] * 100, p["fdr"] * 100) for p in model["points"]]
        pts.append((100.0, 100.0))
        ax.plot(*zip(*pts), label=f"{model['model']} (AUC {model['auc']:.3f})")
    ax.set_xlabel("FAR (%)")
    ax.set_ylabel("FDR (%)")
    ax.set_xscale("symlog", linthresh=0.1)
    ax.set_title(f"Per-disk ROC — {name.split('_')[-1]}")
    ax.grid(alpha=0.3)
    ax.legend()
    fig.tight_layout()
    fig.savefig(OUT / f"{name}.png", dpi=150)
    plt.close(fig)
    print(f"  wrote {OUT / f'{name}.png'}")


print("monthly convergence (Figures 2–3):")
plot_monthly("fig2", "Figure 2: ORF vs offline models on STA (FAR ≈ 1%)")
plot_monthly("fig3", "Figure 3: ORF vs offline models on STB (FAR ≈ 1%)")

print("long-term use (Figures 4–7):")
plot_longterm("longterm_STA", "far", "Figure 4: FARs on STA", "fig4")
plot_longterm("longterm_STB", "far", "Figure 5: FARs on STB", "fig5")
plot_longterm("longterm_STA", "fdr", "Figure 6: FDRs on STA", "fig6")
plot_longterm("longterm_STB", "fdr", "Figure 7: FDRs on STB", "fig7")

print("ROC curves:")
plot_roc("roc_STA")
plot_roc("roc_STB")
