//! Breadth-first batch scoring kernels: the level-order twin of the
//! preorder [`crate::FrozenForest`] layout, built for *throughput*.
//!
//! The preorder layout is ideal for one row at a time — descending left is
//! a cache-line walk — but scoring a batch row-by-row leaves the CPU idle:
//! each traversal step is a serial dependency chain (load node → load
//! feature → compare → compute next index), so a single row exposes almost
//! no instruction-level parallelism and every node fetch is paid once per
//! row. A [`LevelForest`] restructures the same trees for batches:
//!
//! * **level-order node layout** — each tree's nodes are re-emitted level
//!   by level, so while a block of rows is at depth `d` every node they can
//!   possibly touch sits in one contiguous stretch of the arrays and the
//!   fetches amortize across the block;
//! * **interleaved multi-row traversal** — [`LANES`] rows advance together
//!   one level per step. The per-row dependency chains are independent, so
//!   the out-of-order core overlaps them; the inner compare-and-advance
//!   loop is a fixed-trip-count, branch-free select over flat arrays that
//!   the autovectorizer can chew on;
//! * **self-looping leaves** — a leaf's two child slots both point at the
//!   leaf itself, so rows that finish early simply spin in place until the
//!   block completes the tree's deepest level. No masks, no compaction, no
//!   divergence bookkeeping;
//! * **bit-identical scores** — routing is the same `x[f] <= thr` the live
//!   walkers use (NaN routes right, exactly like the preorder kernel), leaf
//!   values are copied verbatim, and each row's tree contributions are
//!   summed in tree order before one division — so every score is
//!   bit-identical to [`crate::FrozenForest::score`] and therefore to the
//!   live models (`tests/batch_equiv.rs` pins this as a shrinking
//!   property).
//!
//! Batches large enough to amortize thread startup fan out over
//! `std::thread::scope` with each worker writing a disjoint slice of the
//! output; per-row results do not depend on the split, so the output is
//! bit-identical for every thread count (including 1).

use orfpred_util::Matrix;

/// Rows advanced together per tree level. Eight keeps the cursor block and
/// accumulators comfortably in registers while exposing eight independent
/// load-compare-select chains per step.
pub const LANES: usize = 8;

/// Batches below this many rows stay on the calling thread: a thread spawn
/// costs far more than scoring a few thousand rows.
const MIN_ROWS_PER_THREAD: usize = 4096;

/// A forest re-laid breadth-first for the interleaved batch kernels.
///
/// Node `i` carries `feature[i]` / `threshold[i]` and two absolute child
/// indices: `lo[i]` is taken when `x[feature] <= threshold`, `hi[i]`
/// otherwise — the same routing rule (and the same NaN-goes-right
/// behaviour) as the preorder kernel, just with both edges explicit so a
/// leaf can point both at itself. `value[i]` holds the leaf contribution
/// (internal nodes store 0.0 there and never read it).
#[derive(Clone, Debug)]
pub struct LevelForest {
    /// Split feature per node; leaves store 0 (a safe, never-routing read).
    feature: Vec<u16>,
    /// Split threshold per internal node; leaves store 0.0.
    threshold: Vec<f32>,
    /// Next node when `x[feature] <= threshold`; for leaves, the node itself.
    lo: Vec<u32>,
    /// Next node otherwise; for leaves, the node itself.
    hi: Vec<u32>,
    /// Leaf value at leaf nodes, 0.0 at internal nodes.
    value: Vec<f32>,
    /// Node-pool offsets: tree `t` occupies `tree_starts[t]..tree_starts[t+1]`
    /// in breadth-first order, root first.
    tree_starts: Vec<u32>,
    /// Deepest leaf per tree — the number of advance steps after which every
    /// lane is guaranteed to sit on (or spin at) a leaf.
    tree_depths: Vec<u32>,
    n_features: usize,
}

impl LevelForest {
    /// Re-emit a preorder node arena (the [`crate::FrozenForest`] arrays)
    /// breadth-first. Pure layout transform: same trees, same thresholds,
    /// same leaf values. Called once by `FrozenBuilder::finish`.
    pub(crate) fn from_preorder(
        pre_feature: &[u16],
        pre_threshold: &[f32],
        pre_skip: &[u32],
        starts: &[u32],
        n_features: usize,
    ) -> LevelForest {
        let n_nodes = pre_feature.len();
        let mut out = LevelForest {
            feature: Vec::with_capacity(n_nodes),
            threshold: Vec::with_capacity(n_nodes),
            lo: Vec::with_capacity(n_nodes),
            hi: Vec::with_capacity(n_nodes),
            value: Vec::with_capacity(n_nodes),
            tree_starts: vec![0],
            tree_depths: Vec::with_capacity(starts.len().saturating_sub(1)),
            n_features,
        };
        let mut new_index = vec![0u32; n_nodes];
        for w in starts.windows(2) {
            let (s, e) = (w[0] as usize, w[1] as usize);
            let base = out.feature.len() as u32;
            // Pass 1: BFS over the preorder arena assigns level-order slots
            // (a queue of preorder indices visited in level order).
            let mut order: Vec<u32> = Vec::with_capacity(e - s);
            let mut depth_of: Vec<u32> = Vec::with_capacity(e - s);
            order.push(s as u32);
            depth_of.push(0);
            let mut head = 0usize;
            let mut max_depth = 0u32;
            while head < order.len() {
                let pre = order[head] as usize;
                let d = depth_of[head];
                new_index[pre] = base + head as u32;
                max_depth = max_depth.max(d);
                if pre_feature[pre] != crate::frozen::LEAF {
                    // Preorder: left child is the next node, right child is
                    // the patched skip offset.
                    order.push(pre as u32 + 1);
                    depth_of.push(d + 1);
                    order.push(pre_skip[pre]);
                    depth_of.push(d + 1);
                }
                head += 1;
            }
            // Pass 2: emit nodes in the assigned level order.
            for &pre in &order {
                let pre = pre as usize;
                let slot = out.feature.len() as u32;
                if pre_feature[pre] == crate::frozen::LEAF {
                    out.feature.push(0);
                    out.threshold.push(0.0);
                    out.lo.push(slot);
                    out.hi.push(slot);
                    out.value.push(pre_threshold[pre]);
                } else {
                    out.feature.push(pre_feature[pre]);
                    out.threshold.push(pre_threshold[pre]);
                    out.lo.push(new_index[pre + 1]);
                    out.hi.push(new_index[pre_skip[pre] as usize]);
                    out.value.push(0.0);
                }
            }
            out.tree_starts.push(out.feature.len() as u32);
            out.tree_depths.push(max_depth);
        }
        out
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.tree_starts.len() - 1
    }

    /// Total nodes across all trees (equals the preorder count — the
    /// layout transform neither adds nor drops nodes).
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Total leaves (nodes whose child edges self-loop).
    pub fn n_leaves(&self) -> usize {
        self.lo
            .iter()
            .enumerate()
            .filter(|&(i, &lo)| lo as usize == i)
            .count()
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Deepest leaf in the forest.
    pub fn max_depth(&self) -> usize {
        self.tree_depths.iter().copied().max().unwrap_or(0) as usize
    }

    /// Leaf-depth histogram: `hist[d]` = leaves at depth `d` (root = 0).
    /// Must agree exactly with the preorder
    /// [`crate::FrozenForest::depth_histogram`].
    pub fn depth_histogram(&self) -> Vec<u64> {
        let mut hist: Vec<u64> = Vec::new();
        let mut depth = vec![0u32; self.feature.len()];
        for w in self.tree_starts.windows(2) {
            let (s, e) = (w[0] as usize, w[1] as usize);
            depth[s] = 0;
            // Level order ⇒ children sit strictly after their parent, so a
            // forward sweep settles every depth before it is read.
            for i in s..e {
                if self.lo[i] as usize == i {
                    let d = depth[i] as usize;
                    if hist.len() <= d {
                        hist.resize(d + 1, 0);
                    }
                    hist[d] += 1;
                } else {
                    depth[self.lo[i] as usize] = depth[i] + 1;
                    depth[self.hi[i] as usize] = depth[i] + 1;
                }
            }
        }
        hist
    }

    /// Heap footprint of the packed arrays, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.feature.len() * std::mem::size_of::<u16>()
            + self.threshold.len() * std::mem::size_of::<f32>()
            + self.lo.len() * std::mem::size_of::<u32>()
            + self.hi.len() * std::mem::size_of::<u32>()
            + self.value.len() * std::mem::size_of::<f32>()
            + self.tree_starts.len() * std::mem::size_of::<u32>()
            + self.tree_depths.len() * std::mem::size_of::<u32>()
    }

    /// Score one row by walking levels (used for batch tails shorter than a
    /// lane block). Bit-identical to [`crate::FrozenForest::score`]: same
    /// routing, same tree-order summation, same final division.
    pub fn score(&self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.n_features, "feature dimension mismatch");
        let mut sum = 0.0f32;
        for t in 0..self.n_trees() {
            let mut at = self.tree_starts[t] as usize;
            for _ in 0..self.tree_depths[t] {
                let f = self.feature[at] as usize;
                at = if x[f] <= self.threshold[at] {
                    self.lo[at] as usize
                } else {
                    self.hi[at] as usize
                };
            }
            sum += self.value[at];
        }
        sum / self.n_trees() as f32
    }

    /// The interleaved block kernel: advance [`LANES`] rows together one
    /// tree level per step, gathering each lane's feature via `fetch`.
    ///
    /// # Safety
    ///
    /// `fetch(lane, f)` must be in-bounds for every `lane < LANES` and
    /// every `f < self.n_features` (the public wrappers check row/column
    /// dimensions before calling). Node indices stay in-bounds because the
    /// builder writes `lo`/`hi` as absolute offsets inside the same tree's
    /// pool range and leaves self-loop, so a cursor never leaves the pool.
    #[inline(always)]
    // SAFETY: sound iff `fetch(lane, f)` is in-bounds for every lane < LANES
    // and f < n_features — the `# Safety` contract above, upheld by the two
    // length-checked wrappers (`score_rows_range`, `score_columns_range`).
    unsafe fn score_block<F: Fn(usize, usize) -> f32>(&self, fetch: F, out: &mut [f32]) {
        let mut acc = [0.0f32; LANES];
        for t in 0..self.n_trees() {
            // SAFETY: t < n_trees, so tree_starts[t] and tree_depths[t]
            // exist; the root offset is a valid pool index by construction.
            let root = *self.tree_starts.get_unchecked(t);
            let depth = *self.tree_depths.get_unchecked(t);
            let mut cur = [root; LANES];
            for _ in 0..depth {
                for (l, c) in cur.iter_mut().enumerate() {
                    let at = *c as usize;
                    // SAFETY: `at` starts at a tree root and only ever moves
                    // through `lo`/`hi`, which the builder fills with
                    // absolute in-pool indices (leaves point at themselves),
                    // so every node-array read below is in bounds. `feature`
                    // is < n_features for splits and 0 for leaves, so the
                    // caller-guaranteed `fetch` contract covers the gather.
                    let f = *self.feature.get_unchecked(at) as usize;
                    let thr = *self.threshold.get_unchecked(at);
                    let lo = *self.lo.get_unchecked(at);
                    let hi = *self.hi.get_unchecked(at);
                    let v = fetch(l, f);
                    *c = if v <= thr { lo } else { hi };
                }
            }
            for l in 0..LANES {
                // SAFETY: cursors are in-pool (argument above).
                acc[l] += *self.value.get_unchecked(cur[l] as usize);
            }
        }
        let n_trees = self.n_trees() as f32;
        for l in 0..LANES {
            out[l] = acc[l] / n_trees;
        }
    }

    /// Score a contiguous run of borrowed rows into `out` (single thread).
    /// Full lane blocks go through the interleaved kernel; the tail walks
    /// levels row by row. Callers must have length-checked every row.
    fn score_rows_range(&self, rows: &[&[f32]], out: &mut [f32]) {
        debug_assert_eq!(rows.len(), out.len());
        let n = rows.len();
        let full = n - n % LANES;
        for base in (0..full).step_by(LANES) {
            let block: &[&[f32]] = &rows[base..base + LANES];
            // SAFETY: every row's length was asserted equal to n_features
            // by the public entry point, and `f < n_features` per the
            // kernel's contract, so the gather below is in bounds.
            unsafe {
                self.score_block(
                    |l, f| *block.get_unchecked(l).get_unchecked(f),
                    &mut out[base..base + LANES],
                );
            }
        }
        for i in full..n {
            out[i] = self.score(rows[i]);
        }
    }

    /// Score a contiguous run of column-major rows `[base, base+len)` into
    /// `out` (single thread). Callers must have checked that every column
    /// slice is at least `base + len` long.
    fn score_columns_range(&self, cols: &[&[f32]], base: usize, out: &mut [f32]) {
        let n = out.len();
        let full = n - n % LANES;
        for start in (0..full).step_by(LANES) {
            let row0 = base + start;
            // SAFETY: `f < n_features == cols.len()` per the kernel's
            // contract, and `row0 + l < base + n <= cols[f].len()` was
            // checked by the public entry point.
            unsafe {
                self.score_block(
                    |l, f| *cols.get_unchecked(f).get_unchecked(row0 + l),
                    &mut out[start..start + LANES],
                );
            }
        }
        let mut row = vec![0.0f32; self.n_features];
        for i in full..n {
            for (f, c) in cols.iter().enumerate() {
                row[f] = c[base + i];
            }
            out[i] = self.score(&row);
        }
    }

    /// Batch-score borrowed rows with an explicit worker count. Rows are
    /// split into contiguous chunks, one per worker, each writing its own
    /// disjoint slice of the output — per-row scores are independent, so
    /// the result is bit-identical for every `n_threads` (the bench pins
    /// this to 1 for per-thread numbers and to the core count for totals).
    pub fn score_rows_threaded(&self, rows: &[&[f32]], n_threads: usize) -> Vec<f32> {
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), self.n_features, "row {i}: feature dimension");
        }
        let mut out = vec![0.0f32; rows.len()];
        let workers = n_threads.max(1).min(rows.len().div_ceil(LANES).max(1));
        if workers == 1 {
            self.score_rows_range(rows, &mut out);
            return out;
        }
        // Chunks are multiples of LANES so only the final worker has a tail.
        let per = rows.len().div_ceil(workers).div_ceil(LANES) * LANES;
        std::thread::scope(|s| {
            for (chunk_rows, chunk_out) in rows.chunks(per).zip(out.chunks_mut(per)) {
                s.spawn(move || self.score_rows_range(chunk_rows, chunk_out));
            }
        });
        out
    }

    /// Batch-score column-major storage with an explicit worker count (see
    /// [`Self::score_rows_threaded`] for the determinism argument).
    pub fn score_columns_threaded(&self, cols: &[&[f32]], n_threads: usize) -> Vec<f32> {
        assert_eq!(cols.len(), self.n_features, "feature dimension mismatch");
        let n = cols.first().map_or(0, |c| c.len());
        for c in cols {
            assert_eq!(c.len(), n, "ragged feature columns");
        }
        let mut out = vec![0.0f32; n];
        let workers = n_threads.max(1).min(n.div_ceil(LANES).max(1));
        if workers == 1 {
            self.score_columns_range(cols, 0, &mut out);
            return out;
        }
        let per = n.div_ceil(workers).div_ceil(LANES) * LANES;
        std::thread::scope(|s| {
            for (i, chunk_out) in out.chunks_mut(per).enumerate() {
                s.spawn(move || self.score_columns_range(cols, i * per, chunk_out));
            }
        });
        out
    }

    /// Batch-score borrowed rows, fanning out over the available cores for
    /// large batches (small ones stay on the calling thread).
    pub fn score_rows(&self, rows: &[&[f32]]) -> Vec<f32> {
        self.score_rows_threaded(rows, auto_threads(rows.len()))
    }

    /// Batch-score the rows of a [`Matrix`].
    pub fn score_matrix(&self, rows: &Matrix) -> Vec<f32> {
        let refs: Vec<&[f32]> = rows.rows().collect();
        self.score_rows(&refs)
    }

    /// Batch-score column-major storage (one slice per feature, equal
    /// lengths) — the telemetry-store path, no row materialization.
    pub fn score_columns(&self, cols: &[&[f32]]) -> Vec<f32> {
        let n = cols.first().map_or(0, |c| c.len());
        self.score_columns_threaded(cols, auto_threads(n))
    }
}

/// Worker count for an auto-fanned batch: one per `MIN_ROWS_PER_THREAD`
/// rows, capped at the available cores. Thread count never changes scores
/// (disjoint output slices, row-independent work), only wall-clock.
fn auto_threads(n_rows: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    cores.min(n_rows / MIN_ROWS_PER_THREAD).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frozen::{FrozenBuilder, FrozenForest, SourceNode};

    /// Tree 0: split on f1 at 0.5 (left leaf 0.25 / right split on f0 at
    /// 0.3 → leaves 0.5, 0.75); tree 1: lone leaf 1.0. Depths differ so
    /// self-looping is exercised.
    fn forest() -> FrozenForest {
        let mut b = FrozenBuilder::new(3);
        b.add_tree(0, &mut |i| match i {
            0 => SourceNode::Split {
                feature: 1,
                threshold: 0.5,
                left: 1,
                right: 2,
            },
            1 => SourceNode::Leaf { value: 0.25 },
            2 => SourceNode::Split {
                feature: 0,
                threshold: 0.3,
                left: 3,
                right: 4,
            },
            3 => SourceNode::Leaf { value: 0.5 },
            _ => SourceNode::Leaf { value: 0.75 },
        });
        b.add_tree(0, &mut |_| SourceNode::Leaf { value: 1.0 });
        b.finish(vec![1.0, 2.0, 0.0])
    }

    #[test]
    fn layout_counts_agree_with_preorder() {
        let f = forest();
        let lv = f.level();
        assert_eq!(lv.n_trees(), f.n_trees());
        assert_eq!(lv.n_nodes(), f.n_nodes());
        assert_eq!(lv.n_leaves(), f.n_leaves());
        assert_eq!(lv.n_features(), f.n_features());
        assert_eq!(lv.max_depth(), f.max_depth());
        assert_eq!(lv.depth_histogram(), f.depth_histogram());
    }

    #[test]
    fn single_row_walk_matches_preorder_bitwise() {
        let f = forest();
        let lv = f.level();
        for x in [
            [0.0f32, 0.2, 0.0],
            [0.0, 0.9, 0.0],
            [0.9, 0.9, 0.0],
            [f32::NAN, 0.2, 0.0],
            [0.2, f32::NAN, 0.0],
            [f32::INFINITY, f32::NEG_INFINITY, 1e30],
        ] {
            assert_eq!(lv.score(&x).to_bits(), f.score(&x).to_bits(), "{x:?}");
        }
    }

    #[test]
    fn nan_routes_right_like_the_live_walkers() {
        let f = forest();
        // NaN on the split feature must take the `hi` edge (v <= thr is
        // false), exactly like the preorder `else` branch.
        let nan_row = [0.0f32, f32::NAN, 0.0];
        let hi_row = [0.0f32, 0.9, 0.0]; // routes right at the root too
        assert_eq!(
            f.level().score(&nan_row).to_bits(),
            f.level().score(&hi_row).to_bits()
        );
    }

    #[test]
    fn block_kernel_matches_single_row_at_every_batch_size() {
        let f = forest();
        let lv = f.level();
        // Deterministic pseudo-rows including NaN and out-of-range values.
        let make_row = |i: usize| -> Vec<f32> {
            let v = |k: usize| ((i * 31 + k * 17) % 13) as f32 / 6.0 - 0.4;
            match i % 7 {
                3 => vec![f32::NAN, v(1), v(2)],
                5 => vec![v(0), f32::INFINITY, -1e30],
                _ => vec![v(0), v(1), v(2)],
            }
        };
        for n in [0, 1, LANES - 1, LANES, LANES + 1, 3 * LANES + 5] {
            let rows: Vec<Vec<f32>> = (0..n).map(make_row).collect();
            let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
            let got = lv.score_rows(&refs);
            assert_eq!(got.len(), n);
            for (i, r) in refs.iter().enumerate() {
                assert_eq!(got[i].to_bits(), f.score(r).to_bits(), "n={n} row {i}");
            }
            // Column-major path over the same rows.
            let cols: Vec<Vec<f32>> = (0..3)
                .map(|c| rows.iter().map(|r| r[c]).collect())
                .collect();
            let col_refs: Vec<&[f32]> = cols.iter().map(|c| c.as_slice()).collect();
            let by_col = lv.score_columns(&col_refs);
            for (i, &s) in by_col.iter().enumerate() {
                assert_eq!(s.to_bits(), got[i].to_bits(), "columns n={n} row {i}");
            }
        }
    }

    #[test]
    fn thread_count_never_changes_scores() {
        let f = forest();
        let lv = f.level();
        let rows: Vec<Vec<f32>> = (0..5 * LANES + 3)
            .map(|i| vec![(i % 5) as f32 * 0.2, (i % 7) as f32 * 0.15, 0.0])
            .collect();
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let serial = lv.score_rows_threaded(&refs, 1);
        for threads in [2, 3, 8] {
            assert_eq!(lv.score_rows_threaded(&refs, threads), serial);
        }
        let cols: Vec<Vec<f32>> = (0..3)
            .map(|c| rows.iter().map(|r| r[c]).collect())
            .collect();
        let col_refs: Vec<&[f32]> = cols.iter().map(|c| c.as_slice()).collect();
        let col_serial = lv.score_columns_threaded(&col_refs, 1);
        assert_eq!(col_serial, serial);
        for threads in [2, 5] {
            assert_eq!(lv.score_columns_threaded(&col_refs, threads), col_serial);
        }
    }

    #[test]
    fn memory_accounting_covers_all_arrays() {
        let f = forest();
        let lv = f.level();
        // 6 nodes · (2 + 4 + 4 + 4 + 4) bytes + 3 starts · 4 + 2 depths · 4.
        assert_eq!(lv.memory_bytes(), 6 * 18 + 12 + 8);
    }
}
