//! The frozen-forest scoring layer: one flat, cache-friendly representation
//! shared by every scoring consumer (serve snapshots, the eval harnesses,
//! the CLI).
//!
//! Live trees are built for *growth*: arena nodes are enum-tagged, online
//! leaves drag candidate-test pools of up to `N = 5 000` streaming
//! statistics, and the online ensemble re-derives its mature-tree pool on
//! every call. None of that is needed to *score* — the deployable hot path
//! of Algorithm 2, which touches every arriving SMART snapshot. `freeze()`
//! compiles any tree model ([`crate::DecisionTree`], [`crate::RandomForest`],
//! and the online forest in `orfpred-core`) into a [`FrozenForest`]:
//!
//! * **struct-of-arrays** — parallel `feature: u16` / `threshold: f32` /
//!   `skip: u32` arrays, no enum tags, no per-leaf pools;
//! * **preorder layout** — every tree is re-emitted in preorder, so a
//!   node's left child is always the next array index and only the right
//!   child (`skip`) is stored; descending left is a cache-line walk;
//! * **contiguous per-forest storage** — all trees share one node pool,
//!   delimited by `tree_starts`;
//! * **bit-identical scores** — leaf values and the tree summation order
//!   are captured exactly as the live `score()` computes them, so freezing
//!   never changes a prediction (enforced by `tests/frozen_equiv.rs`).
//!
//! Per-feature importances are preserved at freeze time (normalized, as the
//! live `importances()` accessors report them) — the paper's
//! interpretability hook survives compilation.

use crate::level::LevelForest;
use orfpred_util::Matrix;

/// Sentinel in the `feature` array marking a leaf; valid split features are
/// strictly below it (growers bound `n_features ≤ u16::MAX`).
pub(crate) const LEAF: u16 = u16::MAX;

/// One resolved node of a source tree, handed to [`FrozenBuilder::add_tree`]
/// by a model's `freeze()` implementation.
pub enum SourceNode {
    /// An internal decision node: `x[feature] <= threshold` routes left.
    Split {
        /// Feature index tested.
        feature: u16,
        /// Decision threshold.
        threshold: f32,
        /// Source-arena index of the left child.
        left: u32,
        /// Source-arena index of the right child.
        right: u32,
    },
    /// A leaf with its final score contribution (positive-class fraction).
    Leaf {
        /// The value `score()` returns when a row reaches this leaf.
        value: f32,
    },
}

/// Incremental constructor for a [`FrozenForest`]: each source tree is
/// re-emitted in preorder through a node resolver.
pub struct FrozenBuilder {
    feature: Vec<u16>,
    threshold: Vec<f32>,
    skip: Vec<u32>,
    tree_starts: Vec<u32>,
    n_features: usize,
}

impl FrozenBuilder {
    /// Start a forest over `n_features` inputs.
    pub fn new(n_features: usize) -> Self {
        assert!(
            n_features > 0 && n_features <= LEAF as usize,
            "feature count {n_features} does not fit the packed u16 layout"
        );
        Self {
            feature: Vec::new(),
            threshold: Vec::new(),
            skip: Vec::new(),
            tree_starts: vec![0],
            n_features,
        }
    }

    /// Append one tree, walking it from `root` via `resolve` (which maps a
    /// source-arena index to its node). Trees are scored in insertion order,
    /// so callers must add them in the same order the live ensemble sums.
    pub fn add_tree(&mut self, root: u32, resolve: &mut dyn FnMut(u32) -> SourceNode) {
        self.emit(root, resolve);
        self.tree_starts.push(self.feature.len() as u32);
    }

    fn emit(&mut self, src: u32, resolve: &mut dyn FnMut(u32) -> SourceNode) {
        match resolve(src) {
            SourceNode::Leaf { value } => {
                self.feature.push(LEAF);
                self.threshold.push(value);
                self.skip.push(0);
            }
            SourceNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                assert!(
                    (feature as usize) < self.n_features,
                    "split feature {feature} out of range"
                );
                let at = self.feature.len();
                self.feature.push(feature);
                self.threshold.push(threshold);
                self.skip.push(0); // patched once the left subtree is laid out
                self.emit(left, resolve);
                self.skip[at] = self.feature.len() as u32;
                self.emit(right, resolve);
            }
        }
    }

    /// Seal the forest. `importances` are raw per-feature accumulated gains
    /// (summed over however many trees the caller chose); they are
    /// normalized here exactly as the live `importances()` accessors do.
    pub fn finish(self, mut importances: Vec<f64>) -> FrozenForest {
        assert_eq!(importances.len(), self.n_features);
        assert!(
            self.tree_starts.len() > 1,
            "a frozen forest needs at least one tree"
        );
        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            for v in &mut importances {
                *v /= total;
            }
        }
        // Compile the breadth-first twin once at freeze time: every batch
        // entry point below routes through its interleaved kernels, while
        // the preorder arrays keep serving the single-row live path.
        let level = LevelForest::from_preorder(
            &self.feature,
            &self.threshold,
            &self.skip,
            &self.tree_starts,
            self.n_features,
        );
        FrozenForest {
            feature: self.feature,
            threshold: self.threshold,
            skip: self.skip,
            tree_starts: self.tree_starts,
            n_features: self.n_features,
            importances,
            level,
        }
    }
}

/// An immutable, flat forest — the single scoring representation used by
/// serve snapshots, the eval batch paths, and the CLI.
///
/// Build one with `freeze()` on [`crate::DecisionTree`],
/// [`crate::RandomForest`], or the online tree/forest in `orfpred-core`.
#[derive(Clone, Debug)]
pub struct FrozenForest {
    /// Split feature per node; [`LEAF`] marks a leaf.
    feature: Vec<u16>,
    /// Split threshold per internal node; the leaf *value* per leaf.
    threshold: Vec<f32>,
    /// Right-child index per internal node (left child is `i + 1`).
    skip: Vec<u32>,
    /// Node-pool offsets: tree `t` occupies `tree_starts[t]..tree_starts[t+1]`.
    tree_starts: Vec<u32>,
    n_features: usize,
    /// Normalized per-feature importances captured at freeze time.
    importances: Vec<f64>,
    /// The breadth-first twin of the same trees — the batch kernels
    /// (`score_batch` / `score_rows` / `score_columns`) run on this layout.
    level: LevelForest,
}

impl FrozenForest {
    /// Walk one tree from its pool offset. The left child is the next node,
    /// so runs of left descents stay within a cache line.
    ///
    /// # Safety
    ///
    /// Requires `start` to be a `tree_starts` entry below the node count and
    /// `x.len() == self.n_features`. In-bounds access then follows from the
    /// builder's invariants: the three node arrays are pushed in lockstep
    /// (equal lengths); every split asserts `feature < n_features` at emit;
    /// preorder layout puts a split's left subtree at `at + 1` and patches
    /// `skip[at]` to its right subtree's first node, both inside the pool;
    /// and every descent strictly increases `at` toward a subtree's final
    /// node, which is a leaf — so the loop terminates without running off
    /// the arrays.
    // SAFETY: sound to *define* under the documented preconditions — every
    // `get_unchecked` below stays in bounds because the builder pushes the
    // three node arrays in lockstep, asserts `feature < n_features` at
    // emit, and patches `skip` to in-pool preorder offsets, while `at`
    // strictly increases toward a terminating leaf (see `# Safety` above
    // for what callers must uphold).
    #[inline]
    unsafe fn score_tree(&self, start: usize, x: &[f32]) -> f32 {
        let mut at = start;
        loop {
            let f = *self.feature.get_unchecked(at);
            let thr = *self.threshold.get_unchecked(at);
            if f == LEAF {
                return thr;
            }
            at = if *x.get_unchecked(f as usize) <= thr {
                at + 1
            } else {
                *self.skip.get_unchecked(at) as usize
            };
        }
    }

    /// Ensemble score of one (scaled) row: mean leaf value over the trees,
    /// summed in tree order — bit-identical to the live ensembles.
    pub fn score(&self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.n_features, "feature dimension mismatch");
        let mut sum = 0.0f32;
        for t in 0..self.n_trees() {
            // SAFETY: `x` is dimension-checked above and `tree_starts[t]`
            // for t < n_trees is a valid pool offset by construction.
            sum += unsafe { self.score_tree(self.tree_starts[t] as usize, x) };
        }
        sum / self.n_trees() as f32
    }

    /// Batch prediction over the rows of a [`Matrix`]: the breadth-first
    /// interleaved kernel ([`LevelForest`]), lane blocks advancing level by
    /// level with large batches fanned over the available cores. Every row
    /// scores bit-identically to [`FrozenForest::score`].
    pub fn score_batch(&self, rows: &Matrix) -> Vec<f32> {
        self.level.score_matrix(rows)
    }

    /// Batch prediction over borrowed rows (same kernel as
    /// [`Self::score_batch`]).
    pub fn score_rows(&self, rows: &[&[f32]]) -> Vec<f32> {
        self.level.score_rows(rows)
    }

    /// Batch prediction over column-major storage (one slice per feature,
    /// equal lengths) — the telemetry-store replay path, which scores
    /// decoded segments without materializing row vectors. The gather reads
    /// `cols[f][i]` instead of `row[f]`; routing, tree order, and summation
    /// are unchanged, so results are bit-identical to the row paths.
    pub fn score_columns(&self, cols: &[&[f32]]) -> Vec<f32> {
        self.level.score_columns(cols)
    }

    /// The breadth-first layout compiled at freeze time (explicit-thread
    /// batch entry points and layout inspection live there).
    pub fn level(&self) -> &LevelForest {
        &self.level
    }

    /// Hard prediction at vote threshold `tau`.
    pub fn predict(&self, x: &[f32], tau: f32) -> bool {
        self.score(x) >= tau
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.tree_starts.len() - 1
    }

    /// Total nodes across all trees.
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Total leaves across all trees.
    pub fn n_leaves(&self) -> usize {
        self.feature.iter().filter(|&&f| f == LEAF).count()
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Node count of each tree, in scoring order.
    pub fn tree_node_counts(&self) -> Vec<usize> {
        self.tree_starts
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .collect()
    }

    /// Leaf-depth histogram over the whole forest: `hist[d]` = number of
    /// leaves at depth `d` (root = 0).
    pub fn depth_histogram(&self) -> Vec<u64> {
        let mut hist: Vec<u64> = Vec::new();
        let mut depth = vec![0u32; self.feature.len()];
        for w in self.tree_starts.windows(2) {
            let (s, e) = (w[0] as usize, w[1] as usize);
            depth[s] = 0;
            // Preorder layout ⇒ both children of node i sit above i, so one
            // forward sweep settles every depth before it is read.
            for i in s..e {
                if self.feature[i] == LEAF {
                    let d = depth[i] as usize;
                    if hist.len() <= d {
                        hist.resize(d + 1, 0);
                    }
                    hist[d] += 1;
                } else {
                    depth[i + 1] = depth[i] + 1;
                    depth[self.skip[i] as usize] = depth[i] + 1;
                }
            }
        }
        hist
    }

    /// Deepest leaf in the forest.
    pub fn max_depth(&self) -> usize {
        self.depth_histogram().len().saturating_sub(1)
    }

    /// Heap footprint of the packed arrays, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.feature.len() * std::mem::size_of::<u16>()
            + self.threshold.len() * std::mem::size_of::<f32>()
            + self.skip.len() * std::mem::size_of::<u32>()
            + self.tree_starts.len() * std::mem::size_of::<u32>()
            + self.importances.len() * std::mem::size_of::<f64>()
    }

    /// Normalized per-feature importances captured at freeze time (sum to 1
    /// unless the source never split).
    pub fn importances(&self) -> &[f64] {
        &self.importances
    }

    /// The `k` most important features as `(feature, weight)` pairs,
    /// heaviest first; features with zero importance are omitted.
    pub fn top_importances(&self, k: usize) -> Vec<(usize, f64)> {
        let mut ranked: Vec<(usize, f64)> = self
            .importances
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, w)| w > 0.0)
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-build: tree 0 = stump splitting on feature 1 at 0.5
    /// (left leaf 0.25, right leaf 0.75); tree 1 = single leaf 1.0.
    fn two_tree_forest() -> FrozenForest {
        let mut b = FrozenBuilder::new(3);
        b.add_tree(0, &mut |i| match i {
            0 => SourceNode::Split {
                feature: 1,
                threshold: 0.5,
                left: 1,
                right: 2,
            },
            1 => SourceNode::Leaf { value: 0.25 },
            _ => SourceNode::Leaf { value: 0.75 },
        });
        b.add_tree(0, &mut |_| SourceNode::Leaf { value: 1.0 });
        b.finish(vec![0.0, 2.0, 0.0])
    }

    #[test]
    fn hand_built_forest_scores_and_counts() {
        let f = two_tree_forest();
        assert_eq!(f.n_trees(), 2);
        assert_eq!(f.n_nodes(), 4);
        assert_eq!(f.n_leaves(), 3);
        assert_eq!(f.tree_node_counts(), vec![3, 1]);
        assert_eq!(f.score(&[0.0, 0.2, 0.0]), (0.25 + 1.0) / 2.0);
        assert_eq!(f.score(&[0.0, 0.9, 0.0]), (0.75 + 1.0) / 2.0);
        assert!(f.predict(&[0.0, 0.9, 0.0], 0.8));
        assert!(!f.predict(&[0.0, 0.2, 0.0], 0.8));
    }

    #[test]
    fn importances_are_normalized_at_finish() {
        let f = two_tree_forest();
        assert_eq!(f.importances(), &[0.0, 1.0, 0.0]);
        assert_eq!(f.top_importances(5), vec![(1, 1.0)]);
    }

    #[test]
    fn depth_histogram_and_memory_accounting() {
        let f = two_tree_forest();
        // Tree 0: two leaves at depth 1; tree 1: one leaf at depth 0.
        assert_eq!(f.depth_histogram(), vec![1, 2]);
        assert_eq!(f.max_depth(), 1);
        // 4 nodes · (2 + 4 + 4) bytes + 3 starts · 4 + 3 importances · 8.
        assert_eq!(f.memory_bytes(), 4 * 10 + 12 + 24);
    }

    #[test]
    fn batch_scoring_matches_single_row() {
        let f = two_tree_forest();
        let mut m = Matrix::new(3);
        for v in [0.0f32, 0.4, 0.6, 1.0] {
            m.push_row(&[0.0, v, 0.0]);
        }
        let batch = f.score_batch(&m);
        for (i, &s) in batch.iter().enumerate() {
            assert_eq!(s, f.score(m.row(i)), "row {i}");
        }
        let rows: Vec<&[f32]> = (0..m.n_rows()).map(|i| m.row(i)).collect();
        assert_eq!(f.score_rows(&rows), batch);
    }

    #[test]
    fn columnar_scoring_matches_row_scoring() {
        let f = two_tree_forest();
        let rows = [
            [0.0f32, 0.0, 0.7],
            [0.3, 0.4, 0.1],
            [0.9, 0.6, 0.2],
            [0.1, 1.0, 0.5],
        ];
        let cols: Vec<Vec<f32>> = (0..3)
            .map(|c| rows.iter().map(|r| r[c]).collect())
            .collect();
        let col_refs: Vec<&[f32]> = cols.iter().map(|c| c.as_slice()).collect();
        let by_col = f.score_columns(&col_refs);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(by_col[i].to_bits(), f.score(r).to_bits(), "row {i}");
        }
        let empty: Vec<&[f32]> = vec![&[], &[], &[]];
        assert!(f.score_columns(&empty).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn empty_forest_is_rejected() {
        let _ = FrozenBuilder::new(2).finish(vec![0.0, 0.0]);
    }
}
