//! Offline tree learners: the baselines the paper compares ORF against.
//!
//! * [`cart::DecisionTree`] — CART with Gini impurity, exact threshold
//!   search, optional per-node random feature subsets (for forests),
//!   optional best-first growth with a split cap (mirroring Matlab
//!   `fitctree` with `MaxNumSplits`, the paper's DT baseline), and class
//!   weights;
//! * [`forest::RandomForest`] — bootstrap-aggregated CART trees trained in
//!   parallel with rayon (the paper's offline RF);
//! * [`sampling`] — the `NegSampleRatio` (λ) downsampling of Eq. 4 used to
//!   balance offline training sets;
//! * [`threshold`] — the vendor-style static SMART threshold detector
//!   (the 3–10 % FDR strawman of §2);
//! * [`frozen`] — the flat [`frozen::FrozenForest`] scoring representation
//!   every tree model (offline and online) compiles into via `freeze()`;
//! * [`level`] — the breadth-first [`level::LevelForest`] twin compiled
//!   alongside it, whose interleaved lane kernels serve every batch
//!   scoring path (eval sweeps, CLI score/eval, store replay).

#![warn(missing_docs)]

pub mod cart;
pub mod forest;
pub mod frozen;
pub mod gini;
pub mod level;
pub mod sampling;
pub mod threshold;

pub use cart::{CartConfig, DecisionTree};
pub use forest::{ForestConfig, RandomForest};
pub use frozen::{FrozenBuilder, FrozenForest, SourceNode};
pub use level::LevelForest;
pub use sampling::downsample_negatives;
