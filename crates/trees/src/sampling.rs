//! `NegSampleRatio` downsampling (Eq. 4 of the paper).
//!
//! Offline training sets are violently imbalanced (healthy samples outnumber
//! positives by ~1:700). The paper balances them by keeping **all** positive
//! samples plus a random subset of negatives of size `λ · |positives|`
//! (`λ = |Dnc| / |Dp|`, Table 3 sweeps λ ∈ {1..5, Max}).

use orfpred_util::Xoshiro256pp;

/// Keep all positives and a uniform random subset of `λ · n_pos` negatives.
///
/// `lambda = None` means "Max" in the paper's notation: no balancing, every
/// sample kept. Returned indices are sorted.
pub fn downsample_negatives(y: &[bool], lambda: Option<f64>, rng: &mut Xoshiro256pp) -> Vec<usize> {
    let Some(lambda) = lambda else {
        return (0..y.len()).collect();
    };
    assert!(lambda > 0.0, "lambda must be positive (use None for Max)");
    let positives: Vec<usize> = (0..y.len()).filter(|&i| y[i]).collect();
    let negatives: Vec<usize> = (0..y.len()).filter(|&i| !y[i]).collect();
    let want = ((positives.len() as f64 * lambda).round() as usize).min(negatives.len());
    let chosen = rng.sample_indices(negatives.len(), want);
    let mut keep: Vec<usize> = positives;
    keep.extend(chosen.into_iter().map(|k| negatives[k]));
    keep.sort_unstable();
    keep
}

/// Realized negative:positive ratio of a label subset — for assertions and
/// reporting.
pub fn class_ratio(y: &[bool], idx: &[usize]) -> f64 {
    let pos = idx.iter().filter(|&&i| y[i]).count();
    let neg = idx.len() - pos;
    if pos == 0 {
        f64::INFINITY
    } else {
        neg as f64 / pos as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n_pos: usize, n_neg: usize) -> Vec<bool> {
        let mut y = vec![true; n_pos];
        y.extend(vec![false; n_neg]);
        y
    }

    #[test]
    fn keeps_all_positives_and_requested_ratio() {
        let y = labels(100, 10_000);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let idx = downsample_negatives(&y, Some(3.0), &mut rng);
        let pos = idx.iter().filter(|&&i| y[i]).count();
        assert_eq!(pos, 100, "all positives kept");
        assert_eq!(idx.len(), 100 + 300);
        assert!((class_ratio(&y, &idx) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn max_keeps_everything() {
        let y = labels(10, 500);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let idx = downsample_negatives(&y, None, &mut rng);
        assert_eq!(idx.len(), 510);
    }

    #[test]
    fn lambda_larger_than_available_negatives_saturates() {
        let y = labels(100, 150);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let idx = downsample_negatives(&y, Some(5.0), &mut rng);
        assert_eq!(idx.len(), 250, "cannot sample more negatives than exist");
    }

    #[test]
    fn indices_are_sorted_and_unique() {
        let y = labels(50, 1_000);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let idx = downsample_negatives(&y, Some(2.0), &mut rng);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn deterministic_in_seed() {
        let y = labels(20, 500);
        let a = downsample_negatives(&y, Some(1.0), &mut Xoshiro256pp::seed_from_u64(9));
        let b = downsample_negatives(&y, Some(1.0), &mut Xoshiro256pp::seed_from_u64(9));
        let c = downsample_negatives(&y, Some(1.0), &mut Xoshiro256pp::seed_from_u64(10));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn class_ratio_of_all_negative_subset_is_infinite() {
        let y = labels(0, 10);
        assert!(class_ratio(&y, &[0, 1, 2]).is_infinite());
    }
}
