//! Offline Random Forest (Breiman 2001) — the paper's strongest offline
//! baseline and the convergence target for ORF in Figures 2–3.
//!
//! Bootstrap replicates + per-node random feature subsets; trees are grown
//! in parallel with rayon (per-tree RNG streams keep the result identical
//! regardless of thread count).

use crate::cart::{CartConfig, DecisionTree};
use orfpred_util::{Matrix, Xoshiro256pp};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Forest hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees (the paper uses 30).
    pub n_trees: usize,
    /// Per-tree CART settings. If `cart.mtry` is `None`, √d is used — the
    /// conventional classification default.
    pub cart: CartConfig,
    /// Draw a bootstrap replicate per tree (true = standard bagging).
    pub bootstrap: bool,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 30,
            cart: CartConfig::default(),
            bootstrap: true,
        }
    }
}

/// A fitted random forest.
///
/// ```
/// use orfpred_trees::{ForestConfig, RandomForest};
/// use orfpred_util::Matrix;
///
/// // y = (x0 > 0.5)
/// let mut x = Matrix::new(1);
/// let mut y = Vec::new();
/// for i in 0..200 {
///     let v = i as f32 / 200.0;
///     x.push_row(&[v]);
///     y.push(v > 0.5);
/// }
/// let forest = RandomForest::fit(&x, &y, &ForestConfig::default(), 42);
/// assert!(forest.score(&[0.9]) > 0.9);
/// assert!(forest.score(&[0.1]) < 0.1);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_features: usize,
}

impl RandomForest {
    /// Fit on all rows of `x`. Deterministic in `seed` (independent of the
    /// rayon thread count: each tree owns the stream `seed ⊕ tree_index`).
    pub fn fit(x: &Matrix, y: &[bool], cfg: &ForestConfig, seed: u64) -> Self {
        assert_eq!(x.n_rows(), y.len());
        assert!(x.n_rows() > 0, "cannot fit a forest on zero samples");
        assert!(cfg.n_trees > 0, "forest needs at least one tree");
        let mut cart = cfg.cart.clone();
        if cart.mtry.is_none() {
            cart.mtry = Some((x.n_cols() as f64).sqrt().ceil() as usize);
        }
        let master = Xoshiro256pp::seed_from_u64(seed);
        let n = x.n_rows();
        let trees: Vec<DecisionTree> = (0..cfg.n_trees)
            .into_par_iter()
            .map(|t| {
                let mut rng = master.split(t as u64);
                let idx: Vec<u32> = if cfg.bootstrap {
                    (0..n).map(|_| rng.index(n) as u32).collect()
                } else {
                    (0..n as u32).collect()
                };
                DecisionTree::fit_on(x, y, &idx, &cart, &mut rng)
            })
            .collect();
        Self {
            trees,
            n_features: x.n_cols(),
        }
    }

    /// Mean leaf posterior over the trees — a score in `[0, 1]`.
    pub fn score(&self, row: &[f32]) -> f32 {
        let sum: f32 = self.trees.iter().map(|t| t.score(row)).sum();
        sum / self.trees.len() as f32
    }

    /// Score many rows in parallel.
    pub fn score_batch(&self, rows: &Matrix) -> Vec<f32> {
        (0..rows.n_rows())
            .into_par_iter()
            .map(|i| self.score(rows.row(i)))
            .collect()
    }

    /// Hard prediction at vote threshold `tau`.
    pub fn predict(&self, row: &[f32], tau: f32) -> bool {
        self.score(row) >= tau
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Normalized mean-decrease-in-impurity feature importances
    /// (sums to 1 unless no split was ever made).
    pub fn importances(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_features];
        for t in &self.trees {
            t.add_importances(&mut acc);
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for v in &mut acc {
                *v /= total;
            }
        }
        acc
    }

    /// Compile the forest into the flat [`crate::FrozenForest`] scoring
    /// representation. Trees are emitted in ensemble order and importances
    /// captured, so frozen scores and [`FrozenForest::importances`] are
    /// bit-identical to [`Self::score`] / [`Self::importances`].
    ///
    /// [`FrozenForest::importances`]: crate::FrozenForest::importances
    pub fn freeze(&self) -> crate::FrozenForest {
        let mut b = crate::frozen::FrozenBuilder::new(self.n_features);
        for t in &self.trees {
            t.freeze_into(&mut b);
        }
        let mut acc = vec![0.0; self.n_features];
        for t in &self.trees {
            t.add_importances(&mut acc);
        }
        b.finish(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_data(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
        // Positive iff inside a centered disc — not axis-separable, so the
        // ensemble has to combine many axis-aligned splits.
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut x = Matrix::new(2);
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.next_f32() * 2.0 - 1.0;
            let b = rng.next_f32() * 2.0 - 1.0;
            x.push_row(&[a, b]);
            y.push(a * a + b * b < 0.4);
        }
        (x, y)
    }

    #[test]
    fn forest_learns_nonlinear_boundary() {
        let (x, y) = ring_data(2_000, 1);
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default(), 42);
        let (xt, yt) = ring_data(500, 2);
        let correct = (0..xt.n_rows())
            .filter(|&i| forest.predict(xt.row(i), 0.5) == yt[i])
            .count();
        let acc = correct as f64 / yt.len() as f64;
        assert!(acc > 0.93, "test accuracy {acc}");
    }

    #[test]
    fn fit_is_deterministic_in_seed_across_thread_counts() {
        let (x, y) = ring_data(500, 3);
        let f1 = RandomForest::fit(&x, &y, &ForestConfig::default(), 7);
        let f2 = RandomForest::fit(&x, &y, &ForestConfig::default(), 7);
        let (xt, _) = ring_data(100, 4);
        for i in 0..xt.n_rows() {
            assert_eq!(f1.score(xt.row(i)), f2.score(xt.row(i)));
        }
        let single = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let f3 = single.install(|| RandomForest::fit(&x, &y, &ForestConfig::default(), 7));
        for i in 0..xt.n_rows() {
            assert_eq!(f1.score(xt.row(i)), f3.score(xt.row(i)));
        }
    }

    #[test]
    fn scores_are_probabilities() {
        let (x, y) = ring_data(500, 5);
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default(), 1);
        for i in 0..x.n_rows() {
            let s = forest.score(x.row(i));
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn score_batch_matches_scalar_scores() {
        let (x, y) = ring_data(300, 6);
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default(), 2);
        let batch = forest.score_batch(&x);
        for (i, &b) in batch.iter().enumerate() {
            assert_eq!(b, forest.score(x.row(i)));
        }
    }

    #[test]
    fn importances_normalize_and_find_signal() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let mut x = Matrix::new(3);
        let mut y = Vec::new();
        for _ in 0..1_000 {
            let row = [rng.next_f32(), rng.next_f32(), rng.next_f32()];
            y.push(row[1] > 0.6);
            x.push_row(&row);
        }
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default(), 3);
        let imp = forest.importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[1] > 0.8, "importances {imp:?}");
    }

    #[test]
    fn frozen_forest_matches_live_scores_and_importances() {
        let (x, y) = ring_data(500, 11);
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default(), 5);
        let frozen = forest.freeze();
        assert_eq!(frozen.n_trees(), forest.n_trees());
        assert_eq!(frozen.importances(), &forest.importances()[..]);
        for i in 0..x.n_rows() {
            assert_eq!(
                frozen.score(x.row(i)).to_bits(),
                forest.score(x.row(i)).to_bits(),
                "row {i}"
            );
        }
        let batch = frozen.score_batch(&x);
        assert_eq!(batch, forest.score_batch(&x));
    }

    #[test]
    fn serde_round_trip_preserves_scores() {
        let (x, y) = ring_data(300, 10);
        let f = RandomForest::fit(&x, &y, &ForestConfig::default(), 4);
        let blob = serde_json::to_string(&f).unwrap();
        let g: RandomForest = serde_json::from_str(&blob).unwrap();
        for i in 0..50 {
            assert_eq!(f.score(x.row(i)), g.score(x.row(i)));
        }
    }

    #[test]
    fn more_trees_reduce_score_variance() {
        let (x, y) = ring_data(1_000, 9);
        let small = RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                n_trees: 3,
                ..ForestConfig::default()
            },
            1,
        );
        let big = RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                n_trees: 60,
                ..ForestConfig::default()
            },
            1,
        );
        assert_eq!(small.n_trees(), 3);
        assert_eq!(big.n_trees(), 60);
        // On boundary points the small forest's scores are coarse
        // (multiples of 1/3); the big forest's are finer.
        let s = big.score(&[0.63, 0.0]);
        assert!((0.0..=1.0).contains(&s));
    }
}
