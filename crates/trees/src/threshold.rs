//! The vendor-style static SMART threshold detector.
//!
//! §2 of the paper: drive firmware raises a warning when any SMART
//! attribute's normalized value crosses its manufacturer-set threshold.
//! Thresholds are chosen very conservatively to avoid false alarms, which is
//! why the mechanism only reaches 3–10 % FDR. This module reproduces that
//! baseline so the repro harness can show the gap machine learning closes.

use orfpred_smart::attrs::{feature_index, FeatureKind};
use serde::{Deserialize, Serialize};

/// One rule: alarm when the feature value is `<=` the threshold.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ThresholdRule {
    /// Feature column (into the 48-column snapshot).
    pub feature: usize,
    /// Alarm when `value <= threshold`.
    pub threshold: f32,
}

/// A set of static threshold rules over *unscaled* snapshots.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ThresholdModel {
    rules: Vec<ThresholdRule>,
}

impl ThresholdModel {
    /// Build from explicit rules.
    pub fn new(rules: Vec<ThresholdRule>) -> Self {
        Self { rules }
    }

    /// Manufacturer-like conservative defaults on normalized values:
    /// thresholds sit far below where healthy disks ever go, so alarms fire
    /// only for catastrophic SMART values — trading detection for near-zero
    /// false alarms, exactly the §2 behaviour.
    pub fn conservative() -> Self {
        let norm = |id: u16| feature_index(id, FeatureKind::Normalized).expect("catalog id");
        Self::new(vec![
            ThresholdRule {
                feature: norm(5),
                threshold: 36.0,
            },
            ThresholdRule {
                feature: norm(187),
                threshold: 40.0,
            },
            ThresholdRule {
                feature: norm(197),
                threshold: 30.0,
            },
            ThresholdRule {
                feature: norm(198),
                threshold: 30.0,
            },
            ThresholdRule {
                feature: norm(10),
                threshold: 50.0,
            },
        ])
    }

    /// True when any rule fires on the (unscaled) snapshot row.
    pub fn predict(&self, row: &[f32]) -> bool {
        self.rules.iter().any(|r| row[r.feature] <= r.threshold)
    }

    /// Access the rules.
    pub fn rules(&self) -> &[ThresholdRule] {
        &self.rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_smart::attrs::N_FEATURES;

    #[test]
    fn healthy_snapshot_raises_no_alarm() {
        let model = ThresholdModel::conservative();
        let mut row = [100.0f32; N_FEATURES];
        // Raw columns irrelevant to the conservative rules.
        for i in (1..N_FEATURES).step_by(2) {
            row[i] = 0.0;
        }
        assert!(!model.predict(&row));
    }

    #[test]
    fn catastrophic_norm_fires() {
        let model = ThresholdModel::conservative();
        let mut row = [100.0f32; N_FEATURES];
        let col = feature_index(5, FeatureKind::Normalized).unwrap();
        row[col] = 10.0;
        assert!(model.predict(&row));
    }

    #[test]
    fn boundary_is_inclusive() {
        let model = ThresholdModel::new(vec![ThresholdRule {
            feature: 0,
            threshold: 5.0,
        }]);
        assert!(model.predict(&[5.0]));
        assert!(!model.predict(&[5.1]));
    }

    #[test]
    fn empty_rule_set_never_fires() {
        let model = ThresholdModel::new(Vec::new());
        assert!(!model.predict(&[0.0; 4]));
    }
}
