//! CART decision trees with exact split search.
//!
//! One grower covers both uses in the paper:
//!
//! * **forest member**: unlimited best-first growth with a per-node random
//!   feature subset (`mtry`) — because split choice at a node is independent
//!   of growth order, uncapped best-first produces exactly the tree a
//!   recursive grower would;
//! * **DT baseline**: capped growth (`max_splits = 100`) with class weights,
//!   mirroring Matlab `fitctree(SplitCriterion="gdi", MaxNumSplits=100)`
//!   used in §4.4 — here the best-first order *matters* and allocates the
//!   split budget to the highest-gain frontier leaves, as Matlab does.

use crate::gini::{split_gain, ClassCounts};
use orfpred_util::{Matrix, Xoshiro256pp};
use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// Hyper-parameters for one tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CartConfig {
    /// Maximum tree depth (root = 0).
    pub max_depth: usize,
    /// Minimum samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Minimum samples a node needs to be considered for splitting.
    pub min_samples_split: usize,
    /// Number of random features examined per node; `None` = all features.
    pub mtry: Option<usize>,
    /// Cap on the number of splits (best-first order); `None` = unlimited.
    pub max_splits: Option<usize>,
    /// Weight applied to positive samples (class imbalance control for the
    /// DT baseline).
    pub pos_weight: f64,
    /// Minimum information gain a split must achieve.
    pub min_gain: f64,
}

impl Default for CartConfig {
    fn default() -> Self {
        Self {
            max_depth: 30,
            min_samples_leaf: 1,
            min_samples_split: 2,
            mtry: None,
            max_splits: None,
            pos_weight: 1.0,
            // Zero allows tie splits: an impure node splits even when no
            // single test improves Gini (the XOR case), enabling deeper
            // splits to finish the job — matching scikit-learn/Matlab.
            min_gain: 0.0,
        }
    }
}

/// A fitted node.
#[derive(Clone, Debug, Serialize, Deserialize)]
enum Node {
    Split {
        feature: u32,
        threshold: f32,
        left: u32,
        right: u32,
    },
    Leaf {
        /// Weighted fraction of positive samples.
        pos_frac: f32,
    },
}

/// A fitted CART tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
    /// Per-feature accumulated weighted impurity decrease.
    importances: Vec<f64>,
    n_splits: usize,
}

/// Best split found for a frontier leaf during growth.
struct Candidate {
    /// Weighted gain `w_node * gain` — the best-first priority, matching
    /// how a split budget should be spent for overall impurity reduction.
    priority: f64,
    node: u32,
    feature: u32,
    threshold: f32,
    depth: usize,
    /// Samples at the node (indices into the training matrix).
    idx: Vec<u32>,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .partial_cmp(&other.priority)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

impl DecisionTree {
    /// Fit a tree on rows `idx` of `x` with boolean labels `y`.
    ///
    /// `rng` drives the per-node feature subsets; pass any stream when
    /// `mtry == None` (it is then unused).
    pub fn fit_on(
        x: &Matrix,
        y: &[bool],
        idx: &[u32],
        cfg: &CartConfig,
        rng: &mut Xoshiro256pp,
    ) -> Self {
        assert_eq!(x.n_rows(), y.len(), "labels must match rows");
        assert!(!idx.is_empty(), "cannot fit a tree on zero samples");
        let mut tree = Self {
            nodes: Vec::new(),
            n_features: x.n_cols(),
            importances: vec![0.0; x.n_cols()],
            n_splits: 0,
        };

        let weight = |i: u32| -> f64 {
            if y[i as usize] {
                cfg.pos_weight
            } else {
                1.0
            }
        };
        let mut root_counts = ClassCounts::new();
        for &i in idx {
            root_counts.add(y[i as usize], weight(i));
        }
        tree.nodes.push(Node::Leaf {
            pos_frac: root_counts.pos_fraction() as f32,
        });

        let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
        if let Some(c) = tree.best_split(x, y, idx.to_vec(), root_counts, 0, 0, cfg, rng) {
            heap.push(c);
        }

        while let Some(cand) = heap.pop() {
            if cfg.max_splits.is_some_and(|cap| tree.n_splits >= cap) {
                break;
            }
            // Partition the node's samples by the chosen test.
            let (mut left_idx, mut right_idx) = (Vec::new(), Vec::new());
            let mut lc = ClassCounts::new();
            let mut rc = ClassCounts::new();
            for &i in &cand.idx {
                if x.get(i as usize, cand.feature as usize) <= cand.threshold {
                    lc.add(y[i as usize], weight(i));
                    left_idx.push(i);
                } else {
                    rc.add(y[i as usize], weight(i));
                    right_idx.push(i);
                }
            }
            debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());

            let left_id = tree.nodes.len() as u32;
            tree.nodes.push(Node::Leaf {
                pos_frac: lc.pos_fraction() as f32,
            });
            let right_id = tree.nodes.len() as u32;
            tree.nodes.push(Node::Leaf {
                pos_frac: rc.pos_fraction() as f32,
            });
            tree.nodes[cand.node as usize] = Node::Split {
                feature: cand.feature,
                threshold: cand.threshold,
                left: left_id,
                right: right_id,
            };
            tree.n_splits += 1;
            tree.importances[cand.feature as usize] += cand.priority.max(0.0);

            let depth = cand.depth + 1;
            if let Some(c) = tree.best_split(x, y, left_idx, lc, left_id, depth, cfg, rng) {
                heap.push(c);
            }
            if let Some(c) = tree.best_split(x, y, right_idx, rc, right_id, depth, cfg, rng) {
                heap.push(c);
            }
        }
        tree
    }

    /// Fit on all rows.
    pub fn fit(x: &Matrix, y: &[bool], cfg: &CartConfig, rng: &mut Xoshiro256pp) -> Self {
        let idx: Vec<u32> = (0..x.n_rows() as u32).collect();
        Self::fit_on(x, y, &idx, cfg, rng)
    }

    /// Exact best split over the (possibly random) feature subset; `None`
    /// if the node should stay a leaf.
    #[allow(clippy::too_many_arguments)]
    fn best_split(
        &self,
        x: &Matrix,
        y: &[bool],
        idx: Vec<u32>,
        counts: ClassCounts,
        node: u32,
        depth: usize,
        cfg: &CartConfig,
        rng: &mut Xoshiro256pp,
    ) -> Option<Candidate> {
        if depth >= cfg.max_depth
            || idx.len() < cfg.min_samples_split
            || counts.pos == 0.0
            || counts.neg == 0.0
        {
            return None;
        }
        let d = x.n_cols();
        let features: Vec<usize> = match cfg.mtry {
            Some(m) if m < d => rng.sample_indices(d, m),
            _ => (0..d).collect(),
        };

        // Sort (value, label-weight) per feature and scan prefix counts.
        // Ties on gain (including the all-zero-gain XOR case) are broken
        // toward the most balanced split, which keeps depth logarithmic.
        let mut best: Option<(f64, usize, u32, f32)> = None; // (gain, balance, feature, threshold)
        let mut vals: Vec<(f32, bool, f64)> = Vec::with_capacity(idx.len());
        for &f in &features {
            vals.clear();
            for &i in &idx {
                let yi = y[i as usize];
                let w = if yi { cfg.pos_weight } else { 1.0 };
                vals.push((x.get(i as usize, f), yi, w));
            }
            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN feature value"));
            let mut left = ClassCounts::new();
            let mut right = counts;
            for k in 0..vals.len() - 1 {
                let (v, yi, w) = vals[k];
                left.add(yi, w);
                right.remove(yi, w);
                // A valid threshold must separate distinct values.
                if v == vals[k + 1].0 {
                    continue;
                }
                if k + 1 < cfg.min_samples_leaf || vals.len() - k - 1 < cfg.min_samples_leaf {
                    continue;
                }
                let g = split_gain(&left, &right);
                let balance = (k + 1).min(vals.len() - k - 1);
                let better = match best {
                    None => g >= cfg.min_gain,
                    Some((bg, bb, _, _)) => g > bg || (g == bg && balance > bb),
                };
                if better && g >= cfg.min_gain {
                    // Midpoint threshold, like scikit-learn.
                    let thr = 0.5 * (v + vals[k + 1].0);
                    best = Some((g, balance, f as u32, thr));
                }
            }
        }
        best.map(|(gain, _balance, feature, threshold)| Candidate {
            priority: gain * counts.total(),
            node,
            feature,
            threshold,
            depth,
            idx,
        })
    }

    /// Probability-like score: the positive fraction of the reached leaf.
    pub fn score(&self, row: &[f32]) -> f32 {
        debug_assert_eq!(row.len(), self.n_features);
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { pos_frac } => return *pos_frac,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Hard prediction at a score threshold.
    pub fn predict(&self, row: &[f32], tau: f32) -> bool {
        self.score(row) >= tau
    }

    /// Number of splits performed.
    pub fn n_splits(&self) -> usize {
        self.n_splits
    }

    /// Number of nodes (splits + leaves).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Accumulate this tree's importances (weighted impurity decrease) into
    /// `acc`; callers normalize.
    pub fn add_importances(&self, acc: &mut [f64]) {
        assert_eq!(acc.len(), self.n_features);
        for (a, &v) in acc.iter_mut().zip(&self.importances) {
            *a += v;
        }
    }

    /// Re-emit this tree into a frozen-forest builder (one `add_tree` call).
    pub(crate) fn freeze_into(&self, b: &mut crate::frozen::FrozenBuilder) {
        use crate::frozen::SourceNode;
        b.add_tree(0, &mut |i| match self.nodes[i as usize] {
            Node::Leaf { pos_frac } => SourceNode::Leaf { value: pos_frac },
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => SourceNode::Split {
                feature: u16::try_from(feature)
                    .expect("split feature index exceeds the packed u16 layout"),
                threshold,
                left,
                right,
            },
        });
    }

    /// Compile this tree into the flat scoring representation (a one-tree
    /// [`crate::FrozenForest`]); scores are bit-identical to [`Self::score`].
    pub fn freeze(&self) -> crate::FrozenForest {
        let mut b = crate::frozen::FrozenBuilder::new(self.n_features);
        self.freeze_into(&mut b);
        let mut imp = vec![0.0; self.n_features];
        self.add_importances(&mut imp);
        b.finish(imp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<bool>) {
        // XOR needs two levels of splits — a sanity check that recursion
        // and partitioning work.
        let mut x = Matrix::new(2);
        let mut y = Vec::new();
        for i in 0..200 {
            let a = f32::from(u8::from(i % 2 == 0));
            let b = f32::from(u8::from((i / 2) % 2 == 0));
            // Jitter so duplicates do not collapse into one point.
            let eps = (i as f32) * 1e-4;
            x.push_row(&[a + eps, b - eps]);
            y.push((a > 0.5) ^ (b > 0.5));
        }
        (x, y)
    }

    #[test]
    fn learns_xor_exactly_with_enough_depth() {
        // Greedy Gini CART on XOR degenerates into single-sample peeling
        // (each peel has positive gain, the balanced split has zero), so an
        // exact fit needs depth up to n. The protective default depth is
        // intentionally smaller; raise it here to verify the mechanism.
        let (x, y) = xor_data();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let cfg = CartConfig {
            max_depth: 512,
            ..CartConfig::default()
        };
        let tree = DecisionTree::fit(&x, &y, &cfg, &mut rng);
        for (i, &label) in y.iter().enumerate() {
            assert_eq!(tree.predict(x.row(i), 0.5), label, "row {i}");
        }
    }

    #[test]
    fn pure_node_stays_a_leaf() {
        let mut x = Matrix::new(1);
        let mut y = Vec::new();
        for i in 0..50 {
            x.push_row(&[i as f32]);
            y.push(true);
        }
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let tree = DecisionTree::fit(&x, &y, &CartConfig::default(), &mut rng);
        assert_eq!(tree.n_splits(), 0);
        assert_eq!(tree.score(&[3.0]), 1.0);
    }

    #[test]
    fn max_splits_caps_growth_best_first() {
        let (x, y) = xor_data();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let cfg = CartConfig {
            max_splits: Some(1),
            ..CartConfig::default()
        };
        let tree = DecisionTree::fit(&x, &y, &cfg, &mut rng);
        assert_eq!(tree.n_splits(), 1);
        assert_eq!(tree.n_nodes(), 3);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let mut x = Matrix::new(1);
        let mut y = Vec::new();
        for i in 0..20 {
            x.push_row(&[i as f32]);
            y.push(i >= 19); // single positive at the end
        }
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let cfg = CartConfig {
            min_samples_leaf: 15,
            ..CartConfig::default()
        };
        let tree = DecisionTree::fit(&x, &y, &cfg, &mut rng);
        // Both children of any split on 20 samples would need ≥ 15 samples —
        // impossible, so the tree must stay a stump.
        assert_eq!(tree.n_splits(), 0);
        // With a permissive leaf size the same data does split.
        let loose = DecisionTree::fit(
            &x,
            &y,
            &CartConfig {
                min_samples_leaf: 1,
                ..CartConfig::default()
            },
            &mut rng,
        );
        assert!(loose.n_splits() > 0);
    }

    #[test]
    fn pos_weight_shifts_leaf_scores() {
        let mut x = Matrix::new(1);
        let mut y = Vec::new();
        for i in 0..10 {
            x.push_row(&[0.0]);
            y.push(i == 0); // 1 positive, 9 negatives, inseparable
        }
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let plain = DecisionTree::fit(&x, &y, &CartConfig::default(), &mut rng);
        let weighted = DecisionTree::fit(
            &x,
            &y,
            &CartConfig {
                pos_weight: 9.0,
                ..CartConfig::default()
            },
            &mut rng,
        );
        assert!((plain.score(&[0.0]) - 0.1).abs() < 1e-6);
        assert!((weighted.score(&[0.0]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn importances_concentrate_on_informative_feature() {
        // Feature 1 decides the label, feature 0 is noise.
        let mut x = Matrix::new(2);
        let mut y = Vec::new();
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        for _ in 0..400 {
            let noise = rng.next_f32();
            let signal = rng.next_f32();
            x.push_row(&[noise, signal]);
            y.push(signal > 0.5);
        }
        let tree = DecisionTree::fit(&x, &y, &CartConfig::default(), &mut rng);
        let mut imp = vec![0.0; 2];
        tree.add_importances(&mut imp);
        assert!(
            imp[1] > 10.0 * imp[0],
            "signal {} should dwarf noise {}",
            imp[1],
            imp[0]
        );
    }

    #[test]
    fn mtry_one_still_learns_axis_aligned_signal() {
        let mut x = Matrix::new(4);
        let mut y = Vec::new();
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..500 {
            let row = [
                rng.next_f32(),
                rng.next_f32(),
                rng.next_f32(),
                rng.next_f32(),
            ];
            y.push(row[2] > 0.5);
            x.push_row(&row);
        }
        let cfg = CartConfig {
            mtry: Some(1),
            ..CartConfig::default()
        };
        let tree = DecisionTree::fit(&x, &y, &cfg, &mut rng);
        let correct = (0..x.n_rows())
            .filter(|&i| tree.predict(x.row(i), 0.5) == y[i])
            .count();
        assert!(correct as f64 / y.len() as f64 > 0.95, "correct {correct}");
    }

    #[test]
    fn frozen_tree_matches_live_scores_bitwise() {
        let (x, y) = xor_data();
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let cfg = CartConfig {
            max_depth: 512,
            ..CartConfig::default()
        };
        let tree = DecisionTree::fit(&x, &y, &cfg, &mut rng);
        let frozen = tree.freeze();
        assert_eq!(frozen.n_trees(), 1);
        assert_eq!(frozen.n_nodes(), tree.n_nodes());
        for i in 0..x.n_rows() {
            assert_eq!(
                frozen.score(x.row(i)).to_bits(),
                tree.score(x.row(i)).to_bits(),
                "row {i}"
            );
        }
    }

    #[test]
    fn fit_on_subset_ignores_other_rows() {
        let mut x = Matrix::new(1);
        let y = vec![false, true, false, true];
        for v in [0.0f32, 1.0, 2.0, 3.0] {
            x.push_row(&[v]);
        }
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        // Only rows 0 and 1: threshold must fall between 0 and 1.
        let tree = DecisionTree::fit_on(&x, &y, &[0, 1], &CartConfig::default(), &mut rng);
        assert_eq!(tree.n_splits(), 1);
        assert!(!tree.predict(&[0.0], 0.5));
        assert!(tree.predict(&[1.0], 0.5));
        assert!(tree.predict(&[3.0], 0.5));
    }
}
