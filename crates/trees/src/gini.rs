//! Gini impurity (Eq. 1–2 of the paper) over weighted binary class counts.
//!
//! Shared by the offline CART (this crate) and the online trees
//! (`orfpred-core`): both score candidate splits by the same weighted
//! information gain, so the maths lives in one place.

use serde::{Deserialize, Serialize};

/// Weighted counts of the two classes at a node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Total weight of negative (healthy) samples.
    pub neg: f64,
    /// Total weight of positive (about-to-fail) samples.
    pub pos: f64,
}

impl ClassCounts {
    /// Empty counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add weight `w` of class `positive`.
    #[inline]
    pub fn add(&mut self, positive: bool, w: f64) {
        if positive {
            self.pos += w;
        } else {
            self.neg += w;
        }
    }

    /// Remove weight `w` of class `positive`.
    #[inline]
    pub fn remove(&mut self, positive: bool, w: f64) {
        if positive {
            self.pos -= w;
        } else {
            self.neg -= w;
        }
    }

    /// Total weight.
    #[inline]
    pub fn total(&self) -> f64 {
        self.neg + self.pos
    }

    /// Fraction of positive weight (0 when empty).
    #[inline]
    pub fn pos_fraction(&self) -> f64 {
        let t = self.total();
        if t > 0.0 {
            self.pos / t
        } else {
            0.0
        }
    }

    /// Gini impurity `p0(1-p0) + p1(1-p1) = 2 p (1-p)`, in `[0, 0.5]`
    /// (Eq. 1 of the paper).
    #[inline]
    pub fn gini(&self) -> f64 {
        let t = self.total();
        if t <= 0.0 {
            return 0.0;
        }
        2.0 * (self.pos / t) * (self.neg / t)
    }

    /// Merge two counts.
    #[inline]
    pub fn merged(&self, other: &ClassCounts) -> ClassCounts {
        ClassCounts {
            neg: self.neg + other.neg,
            pos: self.pos + other.pos,
        }
    }
}

/// Weighted information gain of a split (Eq. 2 of the paper):
/// `G(D) − |Dl|/|D|·G(Dl) − |Dr|/|D|·G(Dr)`.
///
/// `left` and `right` must partition the parent. Non-negative by concavity
/// of the Gini index.
#[inline]
pub fn split_gain(left: &ClassCounts, right: &ClassCounts) -> f64 {
    let parent = left.merged(right);
    let t = parent.total();
    if t <= 0.0 {
        return 0.0;
    }
    let gain =
        parent.gini() - (left.total() / t) * left.gini() - (right.total() / t) * right.gini();
    // Floating-point rounding can produce tiny negatives; clamp so callers
    // can rely on `gain >= 0`.
    gain.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(neg: f64, pos: f64) -> ClassCounts {
        ClassCounts { neg, pos }
    }

    #[test]
    fn gini_range_and_extremes() {
        assert_eq!(counts(10.0, 0.0).gini(), 0.0, "pure node");
        assert_eq!(counts(0.0, 10.0).gini(), 0.0, "pure node");
        assert!(
            (counts(5.0, 5.0).gini() - 0.5).abs() < 1e-12,
            "max impurity"
        );
        assert_eq!(counts(0.0, 0.0).gini(), 0.0, "empty node");
    }

    #[test]
    fn gini_is_symmetric_in_classes() {
        let a = counts(3.0, 7.0).gini();
        let b = counts(7.0, 3.0).gini();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn perfect_split_gains_parent_impurity() {
        let l = counts(10.0, 0.0);
        let r = counts(0.0, 10.0);
        let parent = l.merged(&r);
        assert!((split_gain(&l, &r) - parent.gini()).abs() < 1e-12);
    }

    #[test]
    fn useless_split_gains_nothing() {
        // Children with identical class proportions to the parent.
        let l = counts(6.0, 4.0);
        let r = counts(3.0, 2.0);
        assert!(split_gain(&l, &r).abs() < 1e-12);
    }

    #[test]
    fn gain_is_never_negative() {
        for neg_l in 0..10 {
            for pos_l in 0..10 {
                for neg_r in 0..10 {
                    for pos_r in 0..10 {
                        let g = split_gain(
                            &counts(f64::from(neg_l), f64::from(pos_l)),
                            &counts(f64::from(neg_r), f64::from(pos_r)),
                        );
                        assert!(g >= 0.0, "negative gain {g}");
                    }
                }
            }
        }
    }

    #[test]
    fn add_remove_round_trips() {
        let mut c = ClassCounts::new();
        c.add(true, 2.0);
        c.add(false, 3.0);
        c.remove(true, 2.0);
        assert_eq!(c, counts(3.0, 0.0));
        assert_eq!(c.pos_fraction(), 0.0);
        c.add(true, 3.0);
        assert!((c.pos_fraction() - 0.5).abs() < 1e-12);
    }
}
