//! Sequential Minimal Optimization for C-SVC.

use crate::kernel::Kernel;
use orfpred_util::Matrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// SVM hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Penalty for positive-class violations (LIBSVM `C · w₊`).
    pub c_pos: f64,
    /// Penalty for negative-class violations.
    pub c_neg: f64,
    /// Kernel.
    pub kernel: Kernel,
    /// KKT violation tolerance (LIBSVM default 1e-3).
    pub tol: f64,
    /// Hard cap on SMO iterations.
    pub max_iter: usize,
    /// Kernel-row cache capacity (rows).
    pub cache_rows: usize,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            c_pos: 1.0,
            c_neg: 1.0,
            kernel: Kernel::Rbf { gamma: 1.0 },
            tol: 1e-3,
            max_iter: 200_000,
            cache_rows: 1_024,
        }
    }
}

/// A trained C-SVC model (stores support vectors only).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Svm {
    support: Matrix,
    /// `αᵢ yᵢ` per support vector.
    alpha_y: Vec<f64>,
    bias: f64,
    kernel: Kernel,
    iterations: usize,
}

/// LRU-ish kernel row cache (simple generation-stamped map — eviction
/// quality matters less than avoiding the O(n²) matrix).
struct RowCache<'a> {
    x: &'a Matrix,
    kernel: Kernel,
    rows: HashMap<usize, (u64, Vec<f32>)>,
    clock: u64,
    capacity: usize,
}

impl<'a> RowCache<'a> {
    fn new(x: &'a Matrix, kernel: Kernel, capacity: usize) -> Self {
        Self {
            x,
            kernel,
            rows: HashMap::with_capacity(capacity.min(4_096)),
            clock: 0,
            capacity: capacity.max(2),
        }
    }

    /// Kernel row `K(i, ·)`; computed in parallel on a miss.
    fn row(&mut self, i: usize) -> &[f32] {
        self.clock += 1;
        let clock = self.clock;
        if self.rows.len() >= self.capacity && !self.rows.contains_key(&i) {
            // Evict the least recently used entry.
            if let Some((&victim, _)) = self.rows.iter().min_by_key(|(_, (t, _))| *t) {
                self.rows.remove(&victim);
            }
        }
        let x = self.x;
        let kernel = self.kernel;
        let entry = self.rows.entry(i).or_insert_with(|| {
            let xi = x.row(i);
            let row: Vec<f32> = (0..x.n_rows())
                .into_par_iter()
                .map(|j| kernel.eval(xi, x.row(j)) as f32)
                .collect();
            (clock, row)
        });
        entry.0 = clock;
        &entry.1
    }
}

impl Svm {
    /// Train on rows of `x` with boolean labels (`true` = positive class).
    ///
    /// Requires at least one sample of each class.
    pub fn fit(x: &Matrix, y: &[bool], cfg: &SvmConfig) -> Self {
        assert_eq!(x.n_rows(), y.len());
        let n = x.n_rows();
        assert!(
            y.iter().any(|&b| b) && y.iter().any(|&b| !b),
            "C-SVC needs both classes present"
        );
        let ys: Vec<f64> = y.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let cs: Vec<f64> = y
            .iter()
            .map(|&b| if b { cfg.c_pos } else { cfg.c_neg })
            .collect();
        let mut alpha = vec![0.0f64; n];
        // Gradient of the dual objective: G = Qα − e; starts at −e.
        let mut grad = vec![-1.0f64; n];
        let mut cache = RowCache::new(x, cfg.kernel, cfg.cache_rows);

        let mut iterations = 0usize;
        let bias;
        loop {
            // Working-set selection: maximal violating pair.
            // I_up:  α_i < C_i if y_i = +1, α_i > 0 if y_i = −1
            // I_low: α_i > 0 if y_i = +1, α_i < C_i if y_i = −1
            let mut i_up = usize::MAX;
            let mut m_up = f64::NEG_INFINITY; // max over I_up of −y G
            let mut i_low = usize::MAX;
            let mut m_low = f64::INFINITY; // min over I_low of −y G
            for t in 0..n {
                let yg = -ys[t] * grad[t];
                let in_up = (ys[t] > 0.0 && alpha[t] < cs[t]) || (ys[t] < 0.0 && alpha[t] > 0.0);
                let in_low = (ys[t] > 0.0 && alpha[t] > 0.0) || (ys[t] < 0.0 && alpha[t] < cs[t]);
                if in_up && yg > m_up {
                    m_up = yg;
                    i_up = t;
                }
                if in_low && yg < m_low {
                    m_low = yg;
                    i_low = t;
                }
            }
            if i_up == usize::MAX || i_low == usize::MAX || m_up - m_low < cfg.tol {
                bias = (m_up + m_low) / 2.0;
                break;
            }
            if iterations >= cfg.max_iter {
                bias = (m_up + m_low) / 2.0;
                break;
            }
            iterations += 1;

            let (i, j) = (i_up, i_low);
            let ki: Vec<f32> = cache.row(i).to_vec();
            let kj_jj = cache.row(j)[j];
            let kii = f64::from(ki[i]);
            let kjj = f64::from(kj_jj);
            let kij = f64::from(ki[j]);
            let eta = (kii + kjj - 2.0 * kij).max(1e-12);

            // Two-variable analytic step (equality constraint preserved).
            let yi = ys[i];
            let yj = ys[j];
            let delta = (m_up - m_low) / eta; // step along the violating direction
            let mut ai_new = alpha[i] + yi * delta;
            // Clip to the box, respecting yᵀα = const.
            let sum = yi * alpha[i] + yj * alpha[j];
            ai_new = ai_new.clamp(0.0, cs[i]);
            let mut aj_new = yj * (sum - yi * ai_new);
            if aj_new < 0.0 {
                aj_new = 0.0;
                ai_new = (yi * (sum - yj * aj_new)).clamp(0.0, cs[i]);
            } else if aj_new > cs[j] {
                aj_new = cs[j];
                ai_new = (yi * (sum - yj * aj_new)).clamp(0.0, cs[i]);
            }

            let dai = ai_new - alpha[i];
            let daj = aj_new - alpha[j];
            if dai.abs() < 1e-14 && daj.abs() < 1e-14 {
                // Numerically stuck; accept the current iterate.
                bias = (m_up + m_low) / 2.0;
                break;
            }
            alpha[i] = ai_new;
            alpha[j] = aj_new;

            // Gradient update: G_t += y_t y_i K_ti Δα_i + y_t y_j K_tj Δα_j.
            let kjrow: Vec<f32> = cache.row(j).to_vec();
            grad.par_iter_mut().enumerate().for_each(|(t, g)| {
                *g += ys[t] * (yi * dai * f64::from(ki[t]) + yj * daj * f64::from(kjrow[t]));
            });
        }

        // Keep support vectors only.
        let mut support = Matrix::new(x.n_cols());
        let mut alpha_y = Vec::new();
        for t in 0..n {
            if alpha[t] > 1e-12 {
                support.push_row(x.row(t));
                alpha_y.push(alpha[t] * ys[t]);
            }
        }
        Self {
            support,
            alpha_y,
            bias,
            kernel: cfg.kernel,
            iterations,
        }
    }

    /// Decision value `f(x) = Σ αᵢ yᵢ K(xᵢ, x) + b`; positive ⇒ positive
    /// class.
    pub fn decision(&self, row: &[f32]) -> f64 {
        let sum: f64 = self
            .alpha_y
            .iter()
            .enumerate()
            .map(|(t, &ay)| ay * self.kernel.eval(self.support.row(t), row))
            .sum();
        sum + self.bias
    }

    /// Decision values for many rows, in parallel.
    pub fn decision_batch(&self, rows: &Matrix) -> Vec<f64> {
        (0..rows.n_rows())
            .into_par_iter()
            .map(|i| self.decision(rows.row(i)))
            .collect()
    }

    /// Hard prediction with a tunable offset (`thr = 0` is the SVM's own
    /// boundary; larger values trade FDR for fewer false alarms).
    pub fn predict(&self, row: &[f32], thr: f64) -> bool {
        self.decision(row) >= thr
    }

    /// Number of support vectors kept.
    pub fn n_support(&self) -> usize {
        self.alpha_y.len()
    }

    /// SMO iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Bias term `b`.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_util::Xoshiro256pp;

    fn linear_data(n: usize, seed: u64, margin: f32) -> (Matrix, Vec<bool>) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut x = Matrix::new(2);
        let mut y = Vec::new();
        for _ in 0..n {
            let pos = rng.bernoulli(0.5);
            let base = if pos { 1.0 + margin } else { -1.0 - margin };
            x.push_row(&[base + rng.next_f32() - 0.5, rng.next_f32() * 2.0 - 1.0]);
            y.push(pos);
        }
        (x, y)
    }

    #[test]
    fn separates_linear_data_with_linear_kernel() {
        let (x, y) = linear_data(200, 1, 0.5);
        let cfg = SvmConfig {
            kernel: Kernel::Linear,
            c_pos: 10.0,
            c_neg: 10.0,
            ..SvmConfig::default()
        };
        let svm = Svm::fit(&x, &y, &cfg);
        let errors = (0..x.n_rows())
            .filter(|&i| svm.predict(x.row(i), 0.0) != y[i])
            .count();
        assert_eq!(errors, 0, "separable data must be fit exactly");
        assert!(svm.n_support() < x.n_rows(), "solution should be sparse");
    }

    #[test]
    fn two_point_problem_has_midpoint_boundary() {
        let mut x = Matrix::new(1);
        x.push_row(&[0.0]);
        x.push_row(&[2.0]);
        let y = vec![false, true];
        let cfg = SvmConfig {
            kernel: Kernel::Linear,
            c_pos: 100.0,
            c_neg: 100.0,
            ..SvmConfig::default()
        };
        let svm = Svm::fit(&x, &y, &cfg);
        // Max-margin boundary is x = 1 → f(1) = 0, f(0) = −1, f(2) = +1.
        assert!(
            svm.decision(&[1.0]).abs() < 0.05,
            "f(1)={}",
            svm.decision(&[1.0])
        );
        assert!((svm.decision(&[2.0]) - 1.0).abs() < 0.05);
        assert!((svm.decision(&[0.0]) + 1.0).abs() < 0.05);
    }

    #[test]
    fn rbf_learns_ring() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut x = Matrix::new(2);
        let mut y = Vec::new();
        for _ in 0..400 {
            let a = rng.next_f32() * 2.0 - 1.0;
            let b = rng.next_f32() * 2.0 - 1.0;
            x.push_row(&[a, b]);
            y.push(a * a + b * b < 0.4);
        }
        let cfg = SvmConfig {
            kernel: Kernel::Rbf { gamma: 4.0 },
            c_pos: 10.0,
            c_neg: 10.0,
            ..SvmConfig::default()
        };
        let svm = Svm::fit(&x, &y, &cfg);
        let correct = (0..x.n_rows())
            .filter(|&i| svm.predict(x.row(i), 0.0) == y[i])
            .count();
        let acc = correct as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn class_weights_shift_the_boundary() {
        // Overlapping classes; upweighting positives should catch more of
        // them at threshold 0.
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut x = Matrix::new(1);
        let mut y = Vec::new();
        for _ in 0..300 {
            let pos = rng.bernoulli(0.2);
            let v = if pos {
                rng.next_f32() * 2.0 // [0, 2)
            } else {
                rng.next_f32() * 2.0 - 1.0 // [-1, 1)
            };
            x.push_row(&[v]);
            y.push(pos);
        }
        let plain = Svm::fit(
            &x,
            &y,
            &SvmConfig {
                kernel: Kernel::Linear,
                ..SvmConfig::default()
            },
        );
        let weighted = Svm::fit(
            &x,
            &y,
            &SvmConfig {
                kernel: Kernel::Linear,
                c_pos: 8.0,
                ..SvmConfig::default()
            },
        );
        let recall = |m: &Svm| {
            let tp = (0..x.n_rows())
                .filter(|&i| y[i] && m.predict(x.row(i), 0.0))
                .count();
            tp as f64 / y.iter().filter(|&&b| b).count() as f64
        };
        assert!(
            recall(&weighted) >= recall(&plain),
            "weighted recall {} < plain {}",
            recall(&weighted),
            recall(&plain)
        );
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = linear_data(150, 9, 0.2);
        let cfg = SvmConfig {
            kernel: Kernel::Rbf { gamma: 1.0 },
            ..SvmConfig::default()
        };
        let a = Svm::fit(&x, &y, &cfg);
        let b = Svm::fit(&x, &y, &cfg);
        assert_eq!(a.n_support(), b.n_support());
        assert_eq!(a.decision(x.row(0)), b.decision(x.row(0)));
    }

    #[test]
    fn dual_feasibility_holds() {
        // yᵀα = 0 is implied by Σ αᵢyᵢ = −(sum of alpha_y) = 0.
        let (x, y) = linear_data(100, 11, 0.3);
        let svm = Svm::fit(
            &x,
            &y,
            &SvmConfig {
                kernel: Kernel::Linear,
                ..SvmConfig::default()
            },
        );
        let sum: f64 = svm.alpha_y.iter().sum();
        assert!(sum.abs() < 1e-9, "equality constraint violated: {sum}");
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn rejects_single_class_input() {
        let mut x = Matrix::new(1);
        x.push_row(&[0.0]);
        x.push_row(&[1.0]);
        Svm::fit(&x, &[true, true], &SvmConfig::default());
    }
}
