//! Kernel functions.

use serde::{Deserialize, Serialize};

/// Supported kernels.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// `K(u, v) = exp(-γ ‖u − v‖²)` — the paper's choice.
    Rbf {
        /// Width parameter γ.
        gamma: f64,
    },
    /// `K(u, v) = ⟨u, v⟩`.
    Linear,
}

impl Kernel {
    /// Evaluate the kernel on two feature vectors.
    #[inline]
    pub fn eval(&self, u: &[f32], v: &[f32]) -> f64 {
        debug_assert_eq!(u.len(), v.len());
        match *self {
            Kernel::Rbf { gamma } => {
                let mut d2 = 0.0f64;
                for (&a, &b) in u.iter().zip(v) {
                    let d = f64::from(a) - f64::from(b);
                    d2 += d * d;
                }
                (-gamma * d2).exp()
            }
            Kernel::Linear => u
                .iter()
                .zip(v)
                .map(|(&a, &b)| f64::from(a) * f64::from(b))
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbf_is_one_on_identical_points_and_decays() {
        let k = Kernel::Rbf { gamma: 0.5 };
        let u = [1.0f32, 2.0, 3.0];
        assert!((k.eval(&u, &u) - 1.0).abs() < 1e-12);
        let v = [1.0f32, 2.0, 4.0];
        assert!((k.eval(&u, &v) - (-0.5f64).exp()).abs() < 1e-12);
        let far = [100.0f32, 2.0, 3.0];
        assert!(k.eval(&u, &far) < 1e-12);
    }

    #[test]
    fn rbf_is_symmetric_and_bounded() {
        let k = Kernel::Rbf { gamma: 2.0 };
        let u = [0.1f32, 0.9];
        let v = [0.7f32, 0.3];
        assert_eq!(k.eval(&u, &v), k.eval(&v, &u));
        let val = k.eval(&u, &v);
        assert!(val > 0.0 && val <= 1.0);
    }

    #[test]
    fn linear_is_dot_product() {
        let k = Kernel::Linear;
        assert_eq!(k.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(k.eval(&[0.0, 0.0], &[3.0, 4.0]), 0.0);
    }
}
