//! C-SVC support vector machine trained with SMO — the paper's SVM baseline
//! (§4.4 uses LIBSVM with `svm_type = C-SVC`, `kernel_type = RBF`).
//!
//! From-scratch implementation of the dual problem
//! `min ½ αᵀQα − eᵀα  s.t.  0 ≤ αᵢ ≤ Cᵢ, yᵀα = 0` with:
//!
//! * maximal-violating-pair working-set selection (LIBSVM's first-order
//!   rule) and the analytic two-variable update,
//! * per-class penalties `C⁺`/`C⁻` (LIBSVM `-w1/-w-1`) for imbalance,
//! * an LRU kernel-row cache so the n×n kernel matrix is never materialised,
//! * parallel (rayon) kernel-row computation — the hot loop.

#![warn(missing_docs)]

pub mod kernel;
pub mod smo;

pub use kernel::Kernel;
pub use smo::{Svm, SvmConfig};
