//! Offline stand-in for `criterion`: the macro and builder API surface this
//! workspace's benches use, backed by a plain wall-clock harness.
//!
//! Each benchmark runs a short warmup followed by `sample_size` timed
//! iterations and prints mean time per iteration (plus throughput when one
//! was declared). No statistics, plotting, or baseline storage — just
//! enough to keep `cargo bench` meaningful in a hermetic environment.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level harness handle passed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, None, |b| f(b));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare the amount of work per iteration, enabling rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the timed iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Close the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Work-per-iteration declaration for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a display label; mirrors criterion's `IntoBenchmarkId`.
pub trait IntoBenchmarkId {
    /// Produce the display label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing handle handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup iteration.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(", {:.3e} elem/s", n as f64 / per_iter),
        Throughput::Bytes(n) => format!(", {:.3e} B/s", n as f64 / per_iter),
    });
    println!(
        "bench {label}: {:.3} ms/iter over {} iters{}",
        per_iter * 1e3,
        b.iters,
        rate.unwrap_or_default()
    );
}

/// Define a benchmark group function, plain or `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grouped");
        g.throughput(Throughput::Elements(4));
        g.sample_size(5);
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("plain", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        benches();
    }
}
