//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde` facade's [`Value`] tree as JSON text.
//!
//! Guarantees the workspace relies on:
//!
//! * floats print with enough precision to round-trip exactly (Rust's
//!   shortest-representation `Display`), and integral floats keep a
//!   trailing `.0` so sign and type survive (`-0.0` stays a float);
//! * integers up to the full `u64` range are exact;
//! * output is deterministic — maps were already key-sorted by the facade.

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::io::{Read, Write};

/// JSON error: a message, optionally with the byte offset it occurred at.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl std::fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Self::new(e)
    }
}

// --------------------------------------------------------------- writing

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    let s = format!("{f}");
    out.push_str(&s);
    // Keep floats recognizably floats ("2" -> "2.0", "-0" -> "-0.0").
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

// --------------------------------------------------------------- parsing

/// A borrowed JSON value tree: the zero-copy twin of [`Value`].
///
/// Escape-free strings (the overwhelmingly common case on machine-written
/// protocol lines — every object key, every `type` tag) are `Cow::Borrowed`
/// slices of the input; only strings that actually contain escapes allocate.
/// This is the serving daemon's ingest hot path: parsing one event line
/// allocates nothing beyond the `Vec` spines of arrays and objects, where
/// the owned [`Value`] path used to allocate a `String` per field name and
/// per string value.
#[derive(Clone, Debug, PartialEq)]
pub enum ValueRef<'a> {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer number (no `.`/exponent in the source).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String; borrowed from the input unless it contained escapes.
    Str(Cow<'a, str>),
    /// Array of values.
    Arr(Vec<ValueRef<'a>>),
    /// Object as ordered key/value pairs (source order).
    Obj(Vec<(Cow<'a, str>, ValueRef<'a>)>),
}

impl ValueRef<'_> {
    /// Convert into the owned [`Value`] tree.
    pub fn into_owned(self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Bool(b) => Value::Bool(b),
            ValueRef::Int(i) => Value::Int(i),
            ValueRef::Float(f) => Value::Float(f),
            ValueRef::Str(s) => Value::Str(s.into_owned()),
            ValueRef::Arr(items) => {
                Value::Arr(items.into_iter().map(ValueRef::into_owned).collect())
            }
            ValueRef::Obj(fields) => Value::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.into_owned(), v.into_owned()))
                    .collect(),
            ),
        }
    }

    /// Look up a field of an object by name (`None` on non-objects too).
    pub fn get(&self, name: &str) -> Option<&Self> {
        match self {
            ValueRef::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl std::fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn expect_literal(&mut self, lit: &str, v: ValueRef<'a>) -> Result<ValueRef<'a>, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<ValueRef<'a>, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.expect_literal("null", ValueRef::Null),
            Some(b't') => self.expect_literal("true", ValueRef::Bool(true)),
            Some(b'f') => self.expect_literal("false", ValueRef::Bool(false)),
            Some(b'"') => self.parse_string().map(ValueRef::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(format!("unexpected byte `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<ValueRef<'a>, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(ValueRef::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(ValueRef::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<ValueRef<'a>, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(ValueRef::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(ValueRef::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    /// Parse one string token. The fast path scans for the closing quote
    /// and, when no `\` escape occurs, returns a borrowed slice of the
    /// input (the input is `&str`, so the slice between two ASCII quotes
    /// is valid UTF-8 by construction). Only strings that actually contain
    /// escapes take the allocating decode loop below.
    fn parse_string(&mut self) -> Result<Cow<'a, str>, Error> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let s = self
                        .src
                        .get(start..self.pos)
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    self.pos += 1;
                    return Ok(Cow::Borrowed(s));
                }
                b'\\' => break,
                _ => self.pos += 1,
            }
        }
        if self.peek().is_none() {
            return Err(self.err("unterminated string"));
        }
        // Slow path: seed the buffer with the escape-free prefix and decode
        // escape sequences from here on.
        let mut out = self
            .src
            .get(start..self.pos)
            .ok_or_else(|| self.err("invalid UTF-8"))?
            .to_string();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(Cow::Owned(out));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: expect a \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar. Validate a window
                    // of at most 4 bytes, never the whole remaining input —
                    // doing the latter per character is quadratic in the
                    // document size (minutes on a multi-MB model file).
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(window) {
                        Ok(s) => s.chars().next().unwrap(),
                        // A complete scalar followed by the start of another:
                        // decode the valid prefix.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .unwrap()
                                .chars()
                                .next()
                                .unwrap()
                        }
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<ValueRef<'a>, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(ValueRef::Float)
                .map_err(|_| self.err(format!("bad number `{text}`")))
        } else {
            match text.parse::<i128>() {
                Ok(i) => Ok(ValueRef::Int(i)),
                // Magnitude beyond i128 (never produced by us): degrade.
                Err(_) => text
                    .parse::<f64>()
                    .map(ValueRef::Float)
                    .map_err(|_| self.err(format!("bad number `{text}`"))),
            }
        }
    }
}

// ------------------------------------------------------------ public API

/// Parse a JSON string into a borrowed [`ValueRef`] tree.
///
/// Escape-free strings borrow from `s`; this is the allocation-light path
/// for protocol-line parsing where fields are inspected and dropped.
pub fn value_ref_from_str(s: &str) -> Result<ValueRef<'_>, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Parse a JSON string into a raw [`Value`] tree.
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    value_ref_from_str(s).map(ValueRef::into_owned)
}

/// Render a raw [`Value`] tree compactly.
pub fn value_to_string(v: &Value) -> String {
    let mut out = String::new();
    render(&mut out, v, None, 0);
    out
}

fn render(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, fv)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(out, fv, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value_to_string(&value.ser()))
}

/// Serialize to a pretty (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&mut out, &value.ser(), Some(2), 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize compactly into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Serialize prettily into a writer.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    Ok(T::de(&value_from_str(s)?)?)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(Error::new)?;
    from_str(s)
}

/// Deserialize by reading a whole stream.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Obj(vec![
            (
                "a".to_string(),
                Value::Arr(vec![Value::Int(1), Value::Null]),
            ),
            ("b".to_string(), Value::Str("x\"\\\n".to_string())),
            ("c".to_string(), Value::Float(0.1)),
            ("d".to_string(), Value::Bool(false)),
        ]);
        let s = value_to_string(&v);
        assert_eq!(value_from_str(&s).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0, 2.0] {
            let s = value_to_string(&Value::Float(f));
            let Value::Float(g) = value_from_str(&s).unwrap() else {
                panic!("float `{s}` must parse as float");
            };
            assert_eq!(f.to_bits(), g.to_bits(), "{f} -> {s} -> {g}");
        }
    }

    #[test]
    fn u64_max_round_trips() {
        let s = to_string(&u64::MAX).unwrap();
        assert_eq!(s, "18446744073709551615");
        assert_eq!(from_str::<u64>(&s).unwrap(), u64::MAX);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            from_str::<String>("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            "é😀"
        );
    }

    #[test]
    fn raw_multibyte_strings_parse() {
        // Exercises the bounded-window scalar decode: 2-, 3- and 4-byte
        // sequences, adjacent multi-byte chars (the window sees a valid
        // prefix plus the start of the next scalar), and one at end of input.
        assert_eq!(from_str::<String>("\"é日😀é\"").unwrap(), "é日😀é");
        assert_eq!(from_str::<String>("\"日本語\"").unwrap(), "日本語");
        // Multi-byte char right before end of input must not panic the
        // window slicing even when the string is unterminated.
        assert!(value_from_str("\"\u{e9}").is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(value_from_str("1 2").is_err());
        assert!(value_from_str("{\"a\":1}x").is_err());
    }

    #[test]
    fn escape_free_strings_borrow_from_input() {
        let line = r#"{"type":"sample","id":"disk-42","name":"日本語"}"#;
        let v = value_ref_from_str(line).unwrap();
        let ValueRef::Obj(fields) = &v else {
            panic!("object expected");
        };
        for (k, fv) in fields {
            assert!(
                matches!(k, Cow::Borrowed(_)),
                "key `{k}` must borrow from the input line"
            );
            let ValueRef::Str(s) = fv else {
                panic!("string field expected");
            };
            assert!(
                matches!(s, Cow::Borrowed(_)),
                "escape-free value `{s}` must borrow from the input line"
            );
        }
        assert_eq!(v.get("type"), Some(&ValueRef::Str(Cow::Borrowed("sample"))));
        assert_eq!(v.get("name"), Some(&ValueRef::Str(Cow::Borrowed("日本語"))));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escaped_strings_fall_back_to_owned() {
        let v = value_ref_from_str(r#""pre\nfix""#).unwrap();
        let ValueRef::Str(s) = &v else {
            panic!("string expected");
        };
        assert!(matches!(s, Cow::Owned(_)));
        assert_eq!(s.as_ref(), "pre\nfix");
    }

    #[test]
    fn value_ref_into_owned_matches_value_parse() {
        let line = r#"{"a":[1,2.5,null,true],"b":"x\ty","c":-7}"#;
        let owned = value_from_str(line).unwrap();
        let borrowed = value_ref_from_str(line).unwrap().into_owned();
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn pretty_output_is_reparsable() {
        let v = Value::Obj(vec![(
            "k".to_string(),
            Value::Arr(vec![Value::Int(1), Value::Int(2)]),
        )]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(value_from_str(&pretty).unwrap(), v);
    }
}
