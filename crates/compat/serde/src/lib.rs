//! Offline stand-in for the `serde` crate.
//!
//! The workspace builds hermetically (no crates.io), so this facade
//! replaces serde with the smallest data model that covers the repo's
//! needs: types convert to and from a JSON-shaped [`Value`] tree, and the
//! companion `serde_json` crate renders/parses that tree as JSON text.
//!
//! Differences from real serde that matter here:
//!
//! * [`Serialize::ser`]/[`Deserialize::de`] build a `Value` directly —
//!   there is no `Serializer`/visitor machinery;
//! * arrays of **any** length serialize (const generics), so no
//!   `serde(with = ...)` adapters are needed;
//! * maps serialize **sorted by key**, which makes every serialization in
//!   the workspace byte-deterministic — the serving checkpoint tests rely
//!   on this;
//! * a missing object field deserializes as [`Value::Null`], so `Option`
//!   fields added to a format are backward compatible with old files;
//! * non-finite floats serialize as `null` and come back as `NaN`
//!   (matching serde_json's lossy default).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, VecDeque};

/// JSON-shaped serialization tree.
///
/// Integers and floats are kept apart so `u64` RNG state round-trips
/// exactly; objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Integers (wide enough for `u64` exactly).
    Int(i128),
    /// Finite floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Arr(Vec<Value>),
    /// Objects as ordered key–value pairs.
    Obj(Vec<(String, Value)>),
}

/// Serialization / deserialization error: a plain message chain.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Construct an error from any displayable message.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Self { msg: m.to_string() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn ser(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the value tree.
    fn de(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- helpers

/// Look up `name` in an object and deserialize it; a missing field is
/// handed to `T` as `Null` (which `Option` maps to `None` — the versioned
/// format escape hatch), and only reported missing if `T` rejects `Null`.
pub fn get_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    let Value::Obj(fields) = v else {
        return Err(Error::msg(format!("expected object with field `{name}`")));
    };
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, fv)) => T::de(fv).map_err(|e| Error::msg(format!("field `{name}`: {e}"))),
        None => T::de(&Value::Null).map_err(|_| Error::msg(format!("missing field `{name}`"))),
    }
}

/// Deserialize element `i` of an array value.
pub fn get_index<T: Deserialize>(v: &Value, i: usize) -> Result<T, Error> {
    let Value::Arr(items) = v else {
        return Err(Error::msg("expected array"));
    };
    let item = items
        .get(i)
        .ok_or_else(|| Error::msg(format!("array too short: no element {i}")))?;
    T::de(item).map_err(|e| Error::msg(format!("element {i}: {e}")))
}

/// Split an externally-tagged enum value into `(variant, payload)`.
pub fn enum_parts(v: &Value) -> Result<(&str, Option<&Value>), Error> {
    match v {
        Value::Str(s) => Ok((s, None)),
        Value::Obj(fields) if fields.len() == 1 => Ok((&fields[0].0, Some(&fields[0].1))),
        _ => Err(Error::msg(
            "expected enum (a string or a single-key object)",
        )),
    }
}

// ------------------------------------------------------------ primitives

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value { Value::Int(*self as i128) }
        }
        impl Deserialize for $t {
            fn de(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        Error::msg(format!("{} out of range for {}", i, stringify!($t)))
                    }),
                    _ => Err(Error::msg(concat!("expected integer (", stringify!($t), ")"))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn ser(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::msg("expected number (f64)")),
        }
    }
}

impl Serialize for f32 {
    fn ser(&self) -> Value {
        f64::from(*self).ser()
    }
}

impl Deserialize for f32 {
    fn de(v: &Value) -> Result<Self, Error> {
        // f32 -> f64 -> f32 is exact, so narrowing loses nothing that the
        // serializer could have produced.
        f64::de(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn ser(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn ser(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn ser(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for String {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for char {
    fn ser(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl Serialize for Value {
    fn ser(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn de(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize> Serialize for Option<T> {
    fn ser(&self) -> Value {
        match self {
            Some(x) => x.ser(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::de(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::de).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn ser(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn de(v: &Value) -> Result<Self, Error> {
        Vec::<T>::de(v).map(VecDeque::from)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn de(v: &Value) -> Result<Self, Error> {
        T::de(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn de(v: &Value) -> Result<Self, Error> {
        Vec::<T>::de(v).map(Vec::into_boxed_slice)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn ser(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn de(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::de(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {got}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn ser(&self) -> Value {
                Value::Arr(vec![$(self.$i.ser()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn de(v: &Value) -> Result<Self, Error> {
                Ok(($(get_index::<$t>(v, $i)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ------------------------------------------------------------------ maps

/// Key types usable in serialized maps (JSON object keys are strings).
pub trait MapKey: Ord + Sized {
    /// Render the key.
    fn to_key(&self) -> String;
    /// Parse the key back.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::msg(format!("bad integer map key `{s}`")))
            }
        }
    )*};
}

impl_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn ser_map<'a, K: MapKey + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    let mut pairs: Vec<(&K, &V)> = entries.collect();
    // Deterministic output regardless of hash iteration order.
    pairs.sort_by(|a, b| a.0.cmp(b.0));
    Value::Obj(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_key(), v.ser()))
            .collect(),
    )
}

fn de_map_entries<K: MapKey, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    let Value::Obj(fields) = v else {
        return Err(Error::msg("expected object (map)"));
    };
    fields
        .iter()
        .map(|(k, fv)| Ok((K::from_key(k)?, V::de(fv)?)))
        .collect()
}

impl<K: MapKey + std::hash::Hash + Eq, V: Serialize> Serialize for HashMap<K, V> {
    fn ser(&self) -> Value {
        ser_map(self.iter())
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn de(v: &Value) -> Result<Self, Error> {
        de_map_entries(v).map(|e| e.into_iter().collect())
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn ser(&self) -> Value {
        ser_map(self.iter())
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn de(v: &Value) -> Result<Self, Error> {
        de_map_entries(v).map(|e| e.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_serialization_is_sorted() {
        let mut m = HashMap::new();
        m.insert(10u32, 1u8);
        m.insert(2u32, 2u8);
        m.insert(33u32, 3u8);
        let Value::Obj(fields) = m.ser() else {
            panic!("map must serialize to an object")
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["2", "10", "33"]);
    }

    #[test]
    fn option_treats_missing_field_as_none() {
        let obj = Value::Obj(vec![("present".to_string(), Value::Int(1))]);
        let present: Option<u32> = get_field(&obj, "present").unwrap();
        let absent: Option<u32> = get_field(&obj, "absent").unwrap();
        assert_eq!(present, Some(1));
        assert_eq!(absent, None);
        assert!(get_field::<u32>(&obj, "absent").is_err());
    }

    #[test]
    fn u64_round_trips_exactly() {
        let x = u64::MAX - 7;
        assert_eq!(u64::de(&x.ser()).unwrap(), x);
    }

    #[test]
    fn non_finite_floats_become_null_and_nan() {
        assert_eq!(f64::NAN.ser(), Value::Null);
        assert!(f64::de(&Value::Null).unwrap().is_nan());
    }
}
