//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` facade.
//!
//! This workspace builds in a hermetic environment with no crates.io
//! access, so the real serde/syn/quote stack is unavailable. The facade's
//! data model is a JSON-shaped `Value` tree, which lets the derive be a
//! small hand-rolled token parser instead of a full Rust grammar:
//!
//! * named/tuple/unit structs and enums with unit/tuple/struct variants,
//! * no generic types (none of the workspace's serialized types are),
//! * attributes (including `#[serde(...)]` and doc comments) are skipped.
//!
//! Representation matches serde's externally-tagged default closely
//! enough for this repo's formats: structs are JSON objects keyed by field
//! name, unit enum variants are strings, payload variants are single-key
//! objects `{"Variant": payload}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of a type's fields.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

/// Parsed derive input.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Skip `#[...]` attribute pairs and a `pub` / `pub(...)` visibility prefix
/// starting at `i`; returns the index of the first token after them.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn ident(tok: Option<&TokenTree>) -> Option<String> {
    match tok {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Advance past a type (or expression) until a top-level `,`, tracking
/// `<`/`>` nesting; bracketed constructs arrive as whole groups. Returns the
/// index of the `,` or `toks.len()`.
fn skip_to_comma(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle = 0i32;
    while i < toks.len() {
        if let TokenTree::Punct(p) = &toks[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parse `name: Type, ...` named fields out of a brace group.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = ident(toks.get(i)).unwrap_or_else(|| panic!("expected field name"));
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!("expected `:` after field `{name}`"),
        }
        fields.push(name);
        i = skip_to_comma(&toks, i) + 1;
    }
    fields
}

/// Count the comma-separated entries of a tuple field list.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut n = 0;
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        n += 1;
        i = skip_to_comma(&toks, i) + 1;
    }
    n
}

fn parse_variants(group: &proc_macro::Group) -> Vec<(String, Fields)> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = ident(toks.get(i)).unwrap_or_else(|| panic!("expected variant name"));
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        i = skip_to_comma(&toks, i) + 1;
        variants.push((name, fields));
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = ident(toks.get(i)).unwrap_or_else(|| panic!("expected `struct` or `enum`"));
    i += 1;
    let name = ident(toks.get(i)).unwrap_or_else(|| panic!("expected type name"));
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (offline facade) does not support generic type `{name}`");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = toks.get(i) else {
                panic!("expected enum body for `{name}`");
            };
            Item::Enum {
                name,
                variants: parse_variants(g),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Expression serializing `fields` given an access prefix (`&self.` for
/// structs, `` for bound match variables).
fn ser_fields_expr(fields: &Fields, access: &dyn Fn(usize, &str) -> String) -> String {
    match fields {
        Fields::Named(names) => {
            let mut s = String::from("{ let mut __f: Vec<(String, ::serde::Value)> = Vec::new(); ");
            for (i, n) in names.iter().enumerate() {
                s.push_str(&format!(
                    "__f.push((\"{n}\".to_string(), ::serde::Serialize::ser({})));",
                    access(i, n)
                ));
            }
            s.push_str(" ::serde::Value::Obj(__f) }");
            s
        }
        Fields::Tuple(1) => format!("::serde::Serialize::ser({})", access(0, "")),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::ser({})", access(i, "")))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    }
}

/// Expression deserializing `fields` from the `Value` named by `src` into a
/// constructor body (the part after `Self::Variant` / `Self`).
fn de_fields_expr(fields: &Fields, src: &str) -> String {
    match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|n| format!("{n}: ::serde::get_field({src}, \"{n}\")?"))
                .collect();
            format!("{{ {} }}", inits.join(", "))
        }
        Fields::Tuple(1) => format!("(::serde::Deserialize::de({src})?)"),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::get_index({src}, {i})?"))
                .collect();
            format!("({})", items.join(", "))
        }
        Fields::Unit => String::new(),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let expr = ser_fields_expr(&fields, &|i, n| {
                if n.is_empty() {
                    format!("&self.{i}")
                } else {
                    format!("&self.{n}")
                }
            });
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn ser(&self) -> ::serde::Value {{ {expr} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in &variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "Self::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__b{i}")).collect();
                        let expr = ser_fields_expr(fields, &|i, _| format!("__b{i}"));
                        arms.push_str(&format!(
                            "Self::{vname}({}) => ::serde::Value::Obj(vec![(\"{vname}\".to_string(), {expr})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let expr = ser_fields_expr(fields, &|_, n| n.to_string());
                        arms.push_str(&format!(
                            "Self::{vname} {{ {} }} => ::serde::Value::Obj(vec![(\"{vname}\".to_string(), {expr})]),\n",
                            names.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn ser(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    };
    body.parse().expect("serde_derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let ctor = match &fields {
                Fields::Unit => "Self".to_string(),
                _ => format!("Self {}", de_fields_expr(&fields, "__v")),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn de(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let _ = __v; ::std::result::Result::Ok({ctor})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in &variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok(Self::{vname}),\n"
                    )),
                    _ => {
                        let ctor = format!("Self::{vname} {}", de_fields_expr(fields, "__p"));
                        arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let __p = __payload.ok_or_else(|| ::serde::Error::msg(\
                                     \"variant `{vname}` of {name} expects a payload\"))?;\n\
                                 ::std::result::Result::Ok({ctor})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn de(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let (__tag, __payload) = ::serde::enum_parts(__v)?;\n\
                         let _ = &__payload;\n\
                         match __tag {{\n\
                             {arms}\n\
                             __other => ::std::result::Result::Err(::serde::Error::msg(format!(\
                                 \"unknown variant `{{}}` of {name}\", __other))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    body.parse().expect("serde_derive generated invalid Rust")
}
