//! Offline stand-in for `rayon`: the API surface this workspace uses,
//! executed sequentially on the calling thread.
//!
//! The workspace's parallel sections are all data-parallel map/for-each
//! loops whose results are order-independent or re-collected in order, so
//! sequential execution is observably identical (and deterministic).

/// `use rayon::prelude::*;` — the adapter traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefMutIterator, ParallelSlice};
}

/// "Parallel" conversion: hands back the ordinary sequential iterator.
pub trait IntoParallelIterator {
    /// The iterator type produced.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type.
    type Item;
    /// Convert into the (sequential) iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Mutable-reference flavour (`collection.par_iter_mut()`).
pub trait IntoParallelRefMutIterator<'a> {
    /// The iterator type produced.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type.
    type Item;
    /// Iterate over mutable references, sequentially.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = std::slice::IterMut<'a, T>;
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.iter_mut()
    }
}

impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = std::slice::IterMut<'a, T>;
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.iter_mut()
    }
}

/// Slice adapters (`slice.par_iter()` / `slice.par_iter_mut()`).
pub trait ParallelSlice<T> {
    /// Iterate over shared references, sequentially.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

impl<T> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

/// Builder for a [`ThreadPool`]; thread-count hints are accepted and ignored.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    _num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepted for API compatibility; execution stays sequential.
    pub fn num_threads(mut self, n: usize) -> Self {
        self._num_threads = n;
        self
    }

    /// Build the (no-op) pool. Never fails.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {})
    }
}

/// A no-op pool: `install` simply runs the closure on the current thread.
pub struct ThreadPool {}

impl ThreadPool {
    /// Run `op` "inside" the pool (i.e. right here).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }
}

/// Error type for [`ThreadPoolBuilder::build`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error (unreachable in the offline stand-in)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_serial() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        assert_eq!(v.par_iter().sum::<i32>(), 10);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }

    #[test]
    fn pool_installs_inline() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 7), 7);
    }
}
