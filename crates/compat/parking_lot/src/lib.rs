//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives and
//! strips lock poisoning, matching parking_lot's non-poisoning API shape
//! for the subset this workspace uses.

use std::sync::{self, PoisonError};

/// Guard for a shared [`RwLock`] read lock.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for an exclusive [`RwLock`] write lock.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard for a [`Mutex`] lock.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Reader-writer lock with parking_lot's infallible (non-poisoning) API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Mutex with parking_lot's infallible (non-poisoning) API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
