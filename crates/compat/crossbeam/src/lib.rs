//! Offline stand-in for `crossbeam`: the `channel` module this workspace
//! uses, implemented over `std::sync::mpsc`.
//!
//! `bounded(cap)` maps to `sync_channel(cap)`, so senders block when the
//! queue is full — the backpressure semantics the serving engine relies on.

/// Multi-producer channels with blocking bounded variants.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sender half of a bounded channel (blocks on full queue).
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }

    /// Create an unbounded channel (non-blocking sends). The sender type
    /// differs from [`Sender`], as in real crossbeam code that mixes both.
    pub fn unbounded<T>() -> (std::sync::mpsc::Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_channel_round_trip() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(tx.try_send(3).is_err(), "capacity 2 must reject a third");
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn unbounded_channel_round_trip() {
        let (tx, rx) = channel::unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().sum::<i32>(), 4950);
    }
}
