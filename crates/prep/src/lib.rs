//! Deterministic online preprocessing between ingest and the labeller.
//!
//! Production SMART telemetry is never as clean as a simulator stream:
//! samples arrive with missing or implausible attribute values, collectors
//! re-deliver old days, sensors stick and repeat the same row for weeks,
//! and failure tickets are sometimes raised for disks that keep serving.
//! Feeding such a stream straight into Algorithm 2's labeller poisons the
//! W-day queues with garbage rows and flushes *wrong* positives into the
//! online forest.
//!
//! [`Preprocessor`] is a small deterministic state machine that sits in
//! front of [`orfpred_core`](../orfpred_core/index.html)'s
//! `OnlineLabeller` on **every** ingest path — CSV replay, store replay,
//! and the daemon wire protocol — and applies, per event, in a fixed
//! order:
//!
//! 1. **survival re-check** — a `Failure` event is held for
//!    [`PrepConfig::recheck_days`] stream days before being committed; if
//!    the disk reports a sample while held, the failure is cancelled as a
//!    flipped label (noisy-label tolerance for Algorithm 2 positives),
//! 2. **duplicate / out-of-order day handling** — re-delivered or stale
//!    days for a disk are dropped,
//! 3. **missing / out-of-range imputation** — non-finite or implausible
//!    attribute values are replaced by the disk's last good value
//!    (falling back to the fleet-wide last good value, then `0.0`),
//! 4. **stuck-at detection** — after [`PrepConfig::stuck_run`] consecutive
//!    bit-identical rows from one disk, further repeats are dropped.
//!
//! Every rule keeps a counter in [`PrepCounters`], reported in the same
//! style as `orfpred data verify`. The **default configuration is a
//! strict no-op**: on a clean stream the output events, their order, and
//! all downstream state are bit-identical to a pipeline without the
//! stage. All internal state is ordered (`BTreeMap`) and serializable, so
//! a serve-engine checkpoint can freeze and resume the stage mid-stream.

#![warn(missing_docs)]

use orfpred_smart::gen::FleetEvent;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration for the online preprocessing stage.
///
/// The default is a strict no-op: no value bounds, stuck-at detection off,
/// survival re-check off. Clean streams pass through bit-exactly.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PrepConfig {
    /// Smallest plausible attribute value; anything below is treated as
    /// missing and imputed. `None` leaves the low side unbounded.
    pub min_value: Option<f32>,
    /// Largest plausible attribute value; anything above is treated as
    /// missing and imputed. `None` leaves the high side unbounded.
    pub max_value: Option<f32>,
    /// Drop a disk's sample once its full attribute row has repeated
    /// bit-identically this many times in a row. `0` disables stuck-at
    /// detection. `stuck_run: 3` passes the first repeat pair through and
    /// drops from the third identical row onward.
    pub stuck_run: u16,
    /// Hold each `Failure` event until the stream day reaches
    /// `failure day + recheck_days` before committing it downstream. A
    /// sample from the held disk in the meantime cancels the failure as a
    /// flipped label. `0` disables the re-check (failures pass through
    /// immediately).
    pub recheck_days: u16,
}

impl PrepConfig {
    /// A production-shaped configuration with every rule armed: attribute
    /// values must be non-negative, four identical rows mark a stuck
    /// sensor, and failures are re-checked for two days. Used by the
    /// dirty-fleet test scenarios; tune per deployment in real use.
    pub fn tolerant() -> Self {
        Self {
            min_value: Some(0.0),
            max_value: None,
            stuck_run: 4,
            recheck_days: 2,
        }
    }
}

/// Per-rule event counters, one `u64` per repair action.
///
/// `*_in` / `*_out` track stream totals; the difference is accounted for
/// exactly by the drop/hold counters in between.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrepCounters {
    /// Sample events offered to the stage.
    pub samples_in: u64,
    /// Sample events emitted downstream.
    pub samples_out: u64,
    /// Failure events offered to the stage.
    pub failures_in: u64,
    /// Failure events emitted downstream.
    pub failures_out: u64,
    /// Attribute values imputed because they were NaN or infinite.
    pub values_imputed: u64,
    /// Attribute values imputed because they fell outside the configured
    /// plausibility bounds.
    pub values_out_of_range: u64,
    /// Samples dropped because the disk already reported that day.
    pub duplicate_days: u64,
    /// Samples dropped because they were older than the disk's newest day.
    pub out_of_order_days: u64,
    /// Samples dropped by stuck-at detection.
    pub stuck_dropped: u64,
    /// Failure events dropped because the disk already had one held.
    pub duplicate_failures: u64,
    /// Failure events held for a survival re-check.
    pub failures_held: u64,
    /// Held failures committed after surviving the re-check window.
    pub failures_released: u64,
    /// Held failures cancelled because the disk reported again.
    pub failures_cancelled: u64,
}

impl PrepCounters {
    /// True when any repair rule fired (imputation, drop, hold or cancel).
    pub fn any_repairs(&self) -> bool {
        self.values_imputed
            + self.values_out_of_range
            + self.duplicate_days
            + self.out_of_order_days
            + self.stuck_dropped
            + self.duplicate_failures
            + self.failures_held
            + self.failures_cancelled
            > 0
    }

    /// Render an `orfpred data verify`-style report block.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("prep: stream totals\n");
        s.push_str(&format!(
            "  samples   in {:>10}  out {:>10}\n",
            self.samples_in, self.samples_out
        ));
        s.push_str(&format!(
            "  failures  in {:>10}  out {:>10}\n",
            self.failures_in, self.failures_out
        ));
        s.push_str("prep: repairs\n");
        for (name, n) in [
            ("values imputed (non-finite)", self.values_imputed),
            ("values imputed (out of range)", self.values_out_of_range),
            ("duplicate days dropped", self.duplicate_days),
            ("out-of-order days dropped", self.out_of_order_days),
            ("stuck-at rows dropped", self.stuck_dropped),
            ("duplicate failures dropped", self.duplicate_failures),
            ("failures held for re-check", self.failures_held),
            ("failures released", self.failures_released),
            (
                "failures cancelled (flipped label)",
                self.failures_cancelled,
            ),
        ] {
            s.push_str(&format!("  {name:<34} {n:>10}\n"));
        }
        s
    }
}

/// Per-disk preprocessing state.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct DiskPrep {
    /// Newest day this disk has reported (after repairs).
    last_day: u16,
    /// The disk's last emitted (repaired) attribute row.
    last_row: Vec<f32>,
    /// Consecutive bit-identical repeats of `last_row` seen so far.
    run_len: u16,
}

/// The online preprocessing stage. See the crate docs for the rule set.
///
/// Feed events with [`Preprocessor::observe`]; each call appends zero or
/// more repaired events to the caller's buffer (held failures released by
/// the advancing stream day come out *before* the sample that advanced
/// it). Call [`Preprocessor::finish`] at end of stream to flush held
/// failures.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Preprocessor {
    cfg: PrepConfig,
    /// Per-disk state, ordered for deterministic iteration and serde.
    disks: BTreeMap<u32, DiskPrep>,
    /// Fleet-wide last good value per column (imputation fallback for a
    /// disk's first sample).
    col_last: Vec<f32>,
    /// Whether `col_last` has ever been written for the column.
    col_seen: Vec<bool>,
    /// Held failures: disk id → failure day.
    pending: BTreeMap<u32, u16>,
    /// Highest sample/failure day observed so far ("stream day").
    watermark: u16,
    counters: PrepCounters,
}

impl Preprocessor {
    /// Create a stage with the given configuration.
    pub fn new(cfg: &PrepConfig) -> Self {
        Self {
            cfg: cfg.clone(),
            disks: BTreeMap::new(),
            // Sized lazily from the first row: the stage is width-agnostic
            // and serves any `DomainSchema` layout.
            col_last: Vec::new(),
            col_seen: Vec::new(),
            pending: BTreeMap::new(),
            watermark: 0,
            counters: PrepCounters::default(),
        }
    }

    /// The stage configuration.
    pub fn config(&self) -> &PrepConfig {
        &self.cfg
    }

    /// Per-rule counters accumulated so far.
    pub fn counters(&self) -> &PrepCounters {
        &self.counters
    }

    /// Number of failures currently held for a survival re-check.
    pub fn n_pending_failures(&self) -> usize {
        self.pending.len()
    }

    /// Process one raw event, appending the resulting downstream events to
    /// `out` (possibly none). Held failures whose re-check window expired
    /// are released first, in `(day, disk_id)` order.
    pub fn observe(&mut self, event: &FleetEvent, out: &mut Vec<FleetEvent>) {
        match event {
            FleetEvent::Sample(dd) => self.observe_sample(dd, out),
            FleetEvent::Failure { disk_id, day } => self.observe_failure(*disk_id, *day, out),
        }
    }

    /// Flush every held failure (end of stream), in `(day, disk_id)` order.
    pub fn finish(&mut self, out: &mut Vec<FleetEvent>) {
        self.watermark = u16::MAX;
        self.release_due(out);
    }

    fn observe_sample(&mut self, dd: &orfpred_smart::record::DiskDay, out: &mut Vec<FleetEvent>) {
        self.counters.samples_in += 1;

        // The disk is evidently alive: cancel a held failure before the
        // day-advance releases anything.
        if self.pending.remove(&dd.disk_id).is_some() {
            self.counters.failures_cancelled += 1;
        }
        self.watermark = self.watermark.max(dd.day);
        self.release_due(out);

        let prev = self.disks.get(&dd.disk_id).cloned();
        if let Some(st) = &prev {
            if dd.day == st.last_day {
                self.counters.duplicate_days += 1;
                return;
            }
            if dd.day < st.last_day {
                self.counters.out_of_order_days += 1;
                return;
            }
        }

        let mut repaired = dd.clone();
        if self.col_last.len() < repaired.features.len() {
            self.col_last.resize(repaired.features.len(), 0.0);
            self.col_seen.resize(repaired.features.len(), false);
        }
        self.repair_row(&mut repaired.features, prev.as_ref());

        // Stuck-at: count consecutive bit-identical repaired rows.
        let mut run_len = 0;
        if let Some(st) = &prev {
            if rows_identical(&st.last_row, &repaired.features) {
                run_len = st.run_len.saturating_add(1);
            }
        }
        self.disks.insert(
            dd.disk_id,
            DiskPrep {
                last_day: repaired.day,
                last_row: repaired.features.clone(),
                run_len,
            },
        );
        if self.cfg.stuck_run > 0 && run_len >= self.cfg.stuck_run {
            self.counters.stuck_dropped += 1;
            return;
        }

        for (last, (seen, v)) in self
            .col_last
            .iter_mut()
            .zip(self.col_seen.iter_mut().zip(repaired.features.iter()))
        {
            *last = *v;
            *seen = true;
        }
        self.counters.samples_out += 1;
        out.push(FleetEvent::Sample(repaired));
    }

    fn observe_failure(&mut self, disk_id: u32, day: u16, out: &mut Vec<FleetEvent>) {
        self.counters.failures_in += 1;
        self.watermark = self.watermark.max(day);
        self.release_due(out);

        if self.pending.contains_key(&disk_id) {
            self.counters.duplicate_failures += 1;
            return;
        }
        if self.cfg.recheck_days == 0 {
            self.counters.failures_out += 1;
            out.push(FleetEvent::Failure { disk_id, day });
        } else {
            self.counters.failures_held += 1;
            self.pending.insert(disk_id, day);
        }
    }

    /// Release held failures whose re-check window has expired, ordered by
    /// `(day, disk_id)` so the output is independent of arrival order.
    fn release_due(&mut self, out: &mut Vec<FleetEvent>) {
        if self.pending.is_empty() {
            return;
        }
        let horizon = u32::from(self.watermark);
        let mut due: Vec<(u16, u32)> = self
            .pending
            .iter()
            .filter(|&(_, &day)| u32::from(day) + u32::from(self.cfg.recheck_days) <= horizon)
            .map(|(&disk, &day)| (day, disk))
            .collect();
        due.sort_unstable();
        for (day, disk_id) in due {
            self.pending.remove(&disk_id);
            self.counters.failures_released += 1;
            self.counters.failures_out += 1;
            out.push(FleetEvent::Failure { disk_id, day });
        }
    }

    /// Impute non-finite and out-of-range values in place: the disk's last
    /// good value, else the fleet-wide last good value, else `0.0`.
    fn repair_row(&mut self, row: &mut [f32], prev: Option<&DiskPrep>) {
        for (c, v) in row.iter_mut().enumerate() {
            let bad = if !v.is_finite() {
                self.counters.values_imputed += 1;
                true
            } else if self.cfg.min_value.is_some_and(|lo| *v < lo)
                || self.cfg.max_value.is_some_and(|hi| *v > hi)
            {
                self.counters.values_out_of_range += 1;
                true
            } else {
                false
            };
            if bad {
                *v = prev
                    .and_then(|st| st.last_row.get(c))
                    .copied()
                    .or_else(|| {
                        if self.col_seen.get(c).copied().unwrap_or(false) {
                            self.col_last.get(c).copied()
                        } else {
                            None
                        }
                    })
                    .unwrap_or(0.0);
            }
        }
    }
}

/// Bitwise row equality — NaN-free by construction (rows are repaired
/// before they are stored), but bit comparison keeps it total anyway.
fn rows_identical(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_smart::record::DiskDay;
    use orfpred_smart::N_FEATURES;

    fn sample(disk_id: u32, day: u16, fill: f32) -> FleetEvent {
        FleetEvent::Sample(DiskDay {
            disk_id,
            day,
            features: vec![fill; N_FEATURES],
        })
    }

    fn run(prep: &mut Preprocessor, events: &[FleetEvent]) -> Vec<FleetEvent> {
        let mut out = Vec::new();
        for e in events {
            prep.observe(e, &mut out);
        }
        out
    }

    fn fmt(events: &[FleetEvent]) -> Vec<String> {
        events.iter().map(|e| format!("{e:?}")).collect()
    }

    #[test]
    fn default_config_is_a_bit_exact_passthrough() {
        let events = vec![
            sample(1, 0, 5.0),
            sample(2, 0, 7.0),
            sample(1, 1, 5.0), // identical row repeat: fine with stuck_run=0
            FleetEvent::Failure { disk_id: 2, day: 1 },
            sample(1, 2, 9.0),
        ];
        let mut prep = Preprocessor::new(&PrepConfig::default());
        let out = run(&mut prep, &events);
        assert_eq!(fmt(&out), fmt(&events));
        assert!(!prep.counters().any_repairs());
        assert_eq!(prep.counters().samples_in, 4);
        assert_eq!(prep.counters().samples_out, 4);
        assert_eq!(prep.counters().failures_in, 1);
        assert_eq!(prep.counters().failures_out, 1);
        let mut tail = Vec::new();
        prep.finish(&mut tail);
        assert!(tail.is_empty());
    }

    #[test]
    fn duplicate_and_out_of_order_days_are_dropped() {
        let events = vec![
            sample(1, 3, 1.0),
            sample(1, 3, 2.0), // duplicate day
            sample(1, 2, 3.0), // out of order
            sample(1, 4, 4.0),
        ];
        let mut prep = Preprocessor::new(&PrepConfig::default());
        let out = run(&mut prep, &events);
        assert_eq!(fmt(&out), fmt(&[sample(1, 3, 1.0), sample(1, 4, 4.0)]));
        assert_eq!(prep.counters().duplicate_days, 1);
        assert_eq!(prep.counters().out_of_order_days, 1);
    }

    #[test]
    fn non_finite_values_are_imputed_from_history() {
        let mut first = DiskDay {
            disk_id: 1,
            day: 0,
            features: vec![2.0; N_FEATURES],
        };
        first.features[3] = f32::NAN; // no history at all → 0.0
        let mut second = DiskDay {
            disk_id: 1,
            day: 1,
            features: vec![4.0; N_FEATURES],
        };
        second.features[5] = f32::INFINITY; // disk history → 2.0

        let mut prep = Preprocessor::new(&PrepConfig::default());
        let out = run(
            &mut prep,
            &[FleetEvent::Sample(first), FleetEvent::Sample(second)],
        );
        let rows: Vec<Vec<f32>> = out
            .iter()
            .map(|e| match e {
                FleetEvent::Sample(dd) => dd.features.clone(),
                _ => panic!("expected samples"),
            })
            .collect();
        assert_eq!(rows[0][3], 0.0);
        assert_eq!(rows[1][5], 2.0);
        assert_eq!(prep.counters().values_imputed, 2);
    }

    #[test]
    fn fleet_wide_fallback_covers_a_new_disks_first_sample() {
        let mut bad = DiskDay {
            disk_id: 9,
            day: 1,
            features: vec![1.0; N_FEATURES],
        };
        bad.features[0] = f32::NAN;
        let mut prep = Preprocessor::new(&PrepConfig::default());
        let out = run(&mut prep, &[sample(1, 0, 6.0), FleetEvent::Sample(bad)]);
        match &out[1] {
            FleetEvent::Sample(dd) => assert_eq!(dd.features[0], 6.0),
            other => panic!("expected sample, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_values_are_imputed_under_bounds() {
        let cfg = PrepConfig {
            min_value: Some(0.0),
            max_value: Some(100.0),
            ..PrepConfig::default()
        };
        let mut dd = DiskDay {
            disk_id: 1,
            day: 1,
            features: vec![50.0; N_FEATURES],
        };
        dd.features[2] = -3.0;
        dd.features[4] = 1e9;
        let mut prep = Preprocessor::new(&cfg);
        let out = run(&mut prep, &[sample(1, 0, 40.0), FleetEvent::Sample(dd)]);
        match &out[1] {
            FleetEvent::Sample(dd) => {
                assert_eq!(dd.features[2], 40.0);
                assert_eq!(dd.features[4], 40.0);
            }
            other => panic!("expected sample, got {other:?}"),
        }
        assert_eq!(prep.counters().values_out_of_range, 2);
        assert_eq!(prep.counters().values_imputed, 0);
    }

    #[test]
    fn stuck_sensor_rows_are_dropped_after_the_run_threshold() {
        let cfg = PrepConfig {
            stuck_run: 2,
            ..PrepConfig::default()
        };
        let mut prep = Preprocessor::new(&cfg);
        let events: Vec<FleetEvent> = (0..6).map(|d| sample(1, d, 3.0)).collect();
        let out = run(&mut prep, &events);
        // day 0 fresh, day 1 first repeat (run 1 < 2) passes, days 2-5 dropped.
        assert_eq!(out.len(), 2);
        assert_eq!(prep.counters().stuck_dropped, 4);
        // A changed row resets the run.
        let mut out2 = Vec::new();
        prep.observe(&sample(1, 6, 4.0), &mut out2);
        assert_eq!(out2.len(), 1);
    }

    #[test]
    fn survival_recheck_holds_releases_and_cancels_failures() {
        let cfg = PrepConfig {
            recheck_days: 2,
            ..PrepConfig::default()
        };
        let mut prep = Preprocessor::new(&cfg);
        let mut out = Vec::new();

        // Disk 1 fails on day 5; the failure is held.
        prep.observe(&FleetEvent::Failure { disk_id: 1, day: 5 }, &mut out);
        assert!(out.is_empty());
        assert_eq!(prep.n_pending_failures(), 1);

        // Disk 2 keeps the stream moving; day 7 reaches the horizon and
        // the held failure is released *before* the sample.
        prep.observe(&sample(2, 6, 1.0), &mut out);
        assert_eq!(out.len(), 1);
        prep.observe(&sample(2, 7, 1.0), &mut out);
        assert_eq!(
            fmt(&out[1..]),
            fmt(&[
                FleetEvent::Failure { disk_id: 1, day: 5 },
                sample(2, 7, 1.0)
            ])
        );
        assert_eq!(prep.counters().failures_released, 1);

        // Disk 2 "fails", then reports again before the horizon: cancelled.
        prep.observe(&FleetEvent::Failure { disk_id: 2, day: 8 }, &mut out);
        prep.observe(&sample(2, 9, 1.0), &mut out);
        assert_eq!(prep.counters().failures_cancelled, 1);
        assert_eq!(prep.n_pending_failures(), 0);

        // A held duplicate failure is dropped.
        prep.observe(&FleetEvent::Failure { disk_id: 3, day: 9 }, &mut out);
        prep.observe(&FleetEvent::Failure { disk_id: 3, day: 9 }, &mut out);
        assert_eq!(prep.counters().duplicate_failures, 1);

        // finish() flushes whatever is still held.
        let mut tail = Vec::new();
        prep.finish(&mut tail);
        assert_eq!(
            fmt(&tail),
            fmt(&[FleetEvent::Failure { disk_id: 3, day: 9 }])
        );
    }

    #[test]
    fn released_failures_come_out_in_day_then_disk_order() {
        let cfg = PrepConfig {
            recheck_days: 1,
            ..PrepConfig::default()
        };
        let mut prep = Preprocessor::new(&cfg);
        let mut out = Vec::new();
        prep.observe(&FleetEvent::Failure { disk_id: 7, day: 3 }, &mut out);
        prep.observe(&FleetEvent::Failure { disk_id: 2, day: 3 }, &mut out);
        prep.observe(&FleetEvent::Failure { disk_id: 5, day: 2 }, &mut out);
        assert!(out.is_empty());
        prep.observe(&sample(9, 10, 1.0), &mut out);
        assert_eq!(
            fmt(&out),
            fmt(&[
                FleetEvent::Failure { disk_id: 5, day: 2 },
                FleetEvent::Failure { disk_id: 2, day: 3 },
                FleetEvent::Failure { disk_id: 7, day: 3 },
                sample(9, 10, 1.0),
            ])
        );
    }

    #[test]
    fn state_survives_a_serde_roundtrip() {
        let mut prep = Preprocessor::new(&PrepConfig::tolerant());
        let mut out = Vec::new();
        prep.observe(&sample(1, 0, 5.0), &mut out);
        prep.observe(&FleetEvent::Failure { disk_id: 1, day: 1 }, &mut out);
        prep.observe(&sample(2, 1, 6.0), &mut out);

        let json = serde_json::to_string(&prep).expect("serialize");
        let mut restored: Preprocessor = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(restored.counters(), prep.counters());
        assert_eq!(restored.n_pending_failures(), prep.n_pending_failures());

        // Both copies must agree on the rest of the stream.
        let more = [sample(2, 5, 6.5), sample(3, 6, 7.0)];
        let a = run(&mut prep, &more);
        let b = run(&mut restored, &more);
        assert_eq!(fmt(&a), fmt(&b));
    }

    #[test]
    fn report_renders_every_rule_line() {
        let prep = Preprocessor::new(&PrepConfig::default());
        let report = prep.counters().render();
        for needle in [
            "samples",
            "failures",
            "values imputed",
            "duplicate days",
            "out-of-order days",
            "stuck-at rows",
            "failures held",
            "failures cancelled",
        ] {
            assert!(report.contains(needle), "missing `{needle}` in:\n{report}");
        }
    }
}
