//! `orfpred` — the operational command-line interface.
//!
//! ```text
//! orfpred simulate --out fleet.csv [--dataset sta|stb] [--scale tiny|small] [--seed N]
//! orfpred schema   [--domain smart|smart-windowed|mce]
//! orfpred data     record --out store/ (--csv fleet.csv | [--dataset sta|stb] [--scale Z] [--seed N])
//!                  [--domain smart|smart-windowed|mce] [--segment-rows R] [--lenient]
//! orfpred data     info   --store store/ [--top K]
//! orfpred data     verify --store store/ [--domain NAME]
//! orfpred train    (--csv fleet.csv | --store store/) --model model.json [--online] [--lambda R] [--seed N]
//! orfpred score    (--csv fleet.csv | --store store/) --model model.json [--tau T] [--top K]
//! orfpred eval     (--csv fleet.csv | --store store/) --model model.json [--target-far F]
//! orfpred inspect  (--csv fleet.csv | --store store/)
//! orfpred model    inspect --model model.json [--top K]
//! orfpred drift    (--csv fleet.csv | --store store/) [--top N]
//! orfpred assess   (--csv fleet.csv | --store store/) [--seed N]
//! orfpred serve    [--shards N] [--listen ADDR] [--checkpoint PATH] [--store DIR]
//!                  [--threshold T] [--window W] [--seed N]
//!                  [--prep] [--stuck-run K] [--recheck-days D] [--max-value X]
//!                  [--drift-policy no-update|replace|accumulate]
//!                  [--drift-z Z] [--drift-window W] [--drift-check-every E]
//!                  [--tenant SPEC]...
//! ```
//!
//! * `simulate` writes a Backblaze-format CSV from the fleet simulator —
//!   handy for demos and for testing downstream tooling;
//! * `schema` prints a telemetry domain's full column layout (base and
//!   windowed derived features) and the fingerprint that stores and
//!   checkpoints pin; `--domain mce` selects the correctable-memory-error
//!   domain, `--domain smart-windowed` the SMART catalog with the 5-day
//!   delta/mean/std plan;
//! * `data record` captures a fleet (simulated, or parsed from a CSV) into
//!   a checksummed columnar telemetry store; `data info` prints its
//!   anatomy (segments, rows, date range, per-column compression);
//!   `data verify` decodes every segment and checks every CRC and
//!   ordering invariant;
//! * commands that read telemetry accept `--csv FILE` or `--store DIR`
//!   interchangeably; `--lenient` makes CSV parsing skip malformed rows
//!   (reporting how many) instead of failing;
//! * `train` fits either the offline Random Forest (default) or the Online
//!   Random Forest (`--online`, trained by chronological replay) on the
//!   7-day labelling of the CSV, and saves a self-contained JSON model
//!   (scaler + forest);
//! * `score` prints the per-disk maximum risk score (descending), i.e. the
//!   disks an operator should migrate first;
//! * `eval` computes per-disk FDR/FAR at a FAR-pinned operating point plus
//!   AUC on a held-out 30 % disk split;
//! * `inspect` prints dataset statistics;
//! * `model inspect` compiles a saved model to the frozen scoring layout
//!   and prints its anatomy: node counts, depth histogram, memory
//!   footprint, and the top-k feature importances;
//! * `drift` measures healthy-population distribution shift between the
//!   first and last month — the early warning that an offline model is
//!   aging;
//! * `assess` trains a multi-level health assessor and triages every disk's
//!   latest snapshot into act-now / schedule / healthy bands;
//! * `serve` runs the sharded online serving engine on stdin/stdout (and
//!   optionally a TCP listener) — the same daemon as the `orfpredd`
//!   binary; see `README.md` ("Serving") for the line protocol. `--prep`
//!   arms the telemetry repair stage (imputation, range/stuck-at checks,
//!   duplicate handling, failure re-checks; the extra knobs tune it), and
//!   `--drift-policy` closes the loop: a detected distribution shift in
//!   the released healthy population triggers the chosen long-term update
//!   policy live, republishing the model through the snapshot path. One or
//!   more `--tenant name[,key=value]...` flags switch to the multi-tenant
//!   fleet daemon instead (per-tenant engines, request routing by the
//!   `"tenant"` field, the ORFB binary wire protocol, live resharding);
//!   see `README.md` ("Serving a fleet of models").

use std::io::BufReader;
use std::process::ExitCode;

mod model;

use model::SavedModel;
use orfpred_smart::csv::read_dataset_with;
use orfpred_smart::gen::{FleetConfig, FleetSim, MceFleetConfig, MceSim, ScalePreset};
use orfpred_smart::record::Dataset;
use orfpred_smart::{ColumnRole, DomainSchema};

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(2)
}

/// Minimal flag parser: `--key value` pairs plus boolean switches.
struct Args {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Args {
    fn parse(argv: &[String], switch_names: &[&str]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument '{a}'"));
            };
            if switch_names.contains(&name) {
                switches.push(name.to_string());
            } else {
                i += 1;
                let value = argv
                    .get(i)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                pairs.push((name.to_string(), value.clone()));
            }
            i += 1;
        }
        Ok(Self { pairs, switches })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every value a repeatable flag was given, in order (`--tenant A
    /// --tenant B`).
    fn get_all(&self, name: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad value '{v}'")),
        }
    }
}

fn load_csv(path: &str, lenient: bool) -> Result<Dataset, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let (ds, stats) = read_dataset_with(BufReader::new(file), lenient)
        .map_err(|e| format!("parse {path}: {e}"))?;
    if stats.rows_skipped > 0 {
        eprintln!(
            "warning: skipped {} of {} malformed rows in {path}",
            stats.rows_skipped,
            stats.rows_read + stats.rows_skipped
        );
        for (line, why) in &stats.skip_examples {
            eprintln!("  line {line}: {why}");
        }
    }
    Ok(ds)
}

/// Load telemetry from `--store DIR` (columnar store, verified by CRC on
/// decode) or `--csv FILE` (Backblaze-format; `--lenient` skips malformed
/// rows with a warning instead of failing).
fn load_input(args: &Args) -> Result<Dataset, String> {
    match (args.get("store"), args.get("csv")) {
        (Some(_), Some(_)) => Err("give --csv or --store, not both".into()),
        (Some(dir), None) => {
            let store =
                orfpred_store::Store::open(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
            store.dataset().map_err(|e| e.to_string())
        }
        (None, Some(path)) => load_csv(path, args.has("lenient")),
        (None, None) => Err("--csv FILE or --store DIR is required".into()),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!(
            "usage: orfpred <simulate|schema|data|train|score|eval|inspect|model|drift|assess> [options]\n\
             run `orfpred <command> --help` conventions: see crate docs"
        );
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "simulate" => simulate(&argv[1..]),
        "schema" => schema_cmd(&argv[1..]),
        "data" => data_cmd(&argv[1..]),
        "train" => train(&argv[1..]),
        "score" => score(&argv[1..]),
        "eval" => evaluate(&argv[1..]),
        "inspect" => inspect(&argv[1..]),
        "model" => model_cmd(&argv[1..]),
        "drift" => drift(&argv[1..]),
        "assess" => assess(&argv[1..]),
        "serve" => serve(&argv[1..]),
        // Hidden: replay a testkit fault scenario by seed (the reproduction
        // command the fault suites print on failure). Not in the usage
        // line on purpose — it is a debugging door, not an operator tool.
        "faultsim" => faultsim(&argv[1..]),
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

/// Fleet-simulator parameters shared by `simulate` and `data record`:
/// `--dataset sta|stb`, `--scale tiny|small|medium`, `--seed N`.
fn fleet_from_args(args: &Args) -> Result<FleetConfig, String> {
    let seed: u64 = args.parse_num("seed", 42)?;
    let scale = scale_from_args(args)?;
    match args.get("dataset").unwrap_or("sta") {
        "sta" => Ok(FleetConfig::sta(scale, seed)),
        "stb" => Ok(FleetConfig::stb(scale, seed)),
        other => Err(format!("unknown dataset '{other}' (sta|stb)")),
    }
}

fn scale_from_args(args: &Args) -> Result<ScalePreset, String> {
    match args.get("scale").unwrap_or("tiny") {
        "tiny" => Ok(ScalePreset::Tiny),
        "small" => Ok(ScalePreset::Small),
        "medium" => Ok(ScalePreset::Medium),
        other => Err(format!("unknown scale '{other}'")),
    }
}

/// `--domain smart|smart-windowed|mce` (default `smart`).
fn domain_from_args(args: &Args) -> Result<DomainSchema, String> {
    let name = args.get("domain").unwrap_or("smart");
    DomainSchema::for_domain(name)
        .ok_or_else(|| format!("unknown domain '{name}' (smart|smart-windowed|mce)"))
}

fn simulate(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let out = args.require("out")?;
    if let Some(d) = args.get("domain") {
        if d != "smart" {
            return Err(format!(
                "the Backblaze CSV format is SMART-only; record the '{d}' domain into a \
                 columnar store with `orfpred data record --domain {d}` instead"
            ));
        }
    }
    let cfg = fleet_from_args(&args)?;
    let ds = FleetSim::collect(&cfg);
    let file = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    let mut writer = std::io::BufWriter::new(file);
    orfpred_smart::csv::write_dataset(&ds, &mut writer).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} snapshots from {} disks ({} failed) to {out}",
        ds.n_records(),
        ds.disks.len(),
        ds.n_failed()
    );
    Ok(())
}

fn data_cmd(argv: &[String]) -> Result<(), String> {
    match argv.first().map(String::as_str) {
        Some("record") => data_record(&argv[1..]),
        Some("info") => data_info(&argv[1..]),
        Some("verify") => data_verify(&argv[1..]),
        Some(other) => Err(format!(
            "unknown data action '{other}' (record|info|verify)"
        )),
        None => Err("usage: orfpred data <record|info|verify> [options]".into()),
    }
}

/// `orfpred data record --out DIR ...`: capture telemetry into a columnar
/// store — either from a CSV (`--csv`, optionally `--lenient`) or straight
/// from the fleet simulator (`--dataset`/`--scale`/`--seed`).
fn data_record(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["lenient"])?;
    let out = args.require("out")?;
    let schema = domain_from_args(&args)?;
    let cfg = orfpred_store::StoreConfig {
        segment_rows: args.parse_num("segment-rows", orfpred_store::DEFAULT_SEGMENT_ROWS)?,
        schema: schema.clone(),
        ..Default::default()
    };
    let meta = if let Some(path) = args.get("csv") {
        if schema.name != "smart" {
            return Err(format!(
                "--csv carries Backblaze SMART rows; it cannot be recorded under the \
                 '{}' domain",
                schema.name
            ));
        }
        let ds = load_csv(path, args.has("lenient"))?;
        orfpred_store::record_dataset(std::path::Path::new(out), &ds, cfg)
    } else if schema.name == "mce" {
        let seed: u64 = args.parse_num("seed", 42)?;
        let mce = MceFleetConfig::preset(scale_from_args(&args)?, seed);
        let ds = MceSim::collect(&mce);
        orfpred_store::record_dataset(std::path::Path::new(out), &ds, cfg)
    } else {
        let fleet = fleet_from_args(&args)?;
        orfpred_store::record_fleet(std::path::Path::new(out), &fleet, cfg)
    }
    .map_err(|e| e.to_string())?;
    eprintln!(
        "recorded {} rows into {} segments at {out} (domain {}, fingerprint {:016x})",
        meta.total_rows,
        meta.segments.len(),
        schema.name,
        schema.fingerprint()
    );
    Ok(())
}

/// `orfpred data info --store DIR [--top K]`: print the store's anatomy
/// from footers alone — no row decoding, so it is instant on large stores.
fn data_info(argv: &[String]) -> Result<(), String> {
    use orfpred_smart::csv::date_string;
    let args = Args::parse(argv, &[])?;
    let dir = args.require("store")?;
    let top: usize = args.parse_num("top", 12)?;
    let store = orfpred_store::Store::open(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
    let info = store.info().map_err(|e| e.to_string())?;

    println!(
        "model {} | {} disks ({} failed) | {} rows in {} segments (≤ {} rows each)",
        info.model, info.n_disks, info.n_failed, info.rows, info.segments, info.segment_rows
    );
    let schema = store.schema();
    println!(
        "domain {} | {} attributes → {} base features | fingerprint {:016x}",
        schema.name,
        schema.n_attributes(),
        schema.n_base_features(),
        info.schema_fp
    );
    match (info.first_day, info.last_day) {
        (Some(a), Some(b)) => println!(
            "days {a}..{b} ({} to {}) of a {}-day window",
            date_string(a),
            date_string(b),
            info.duration_days
        ),
        _ => println!("no rows recorded ({}-day window)", info.duration_days),
    }
    let ratio = info.logical_bytes as f64 / (info.disk_bytes.max(1)) as f64;
    println!(
        "{} bytes on disk vs {} logical — {ratio:.1}x compression \
         (disk-id dictionaries {}, day columns {})",
        info.disk_bytes, info.logical_bytes, info.disk_id_bytes, info.day_bytes
    );

    let mut cols = info.columns.clone();
    cols.sort_by(|a, b| {
        b.encoded_bytes
            .cmp(&a.encoded_bytes)
            .then(a.name.cmp(&b.name))
    });
    println!(
        "top {} columns by encoded size ({} total):",
        top.min(cols.len()),
        cols.len()
    );
    println!(
        "{:>22} {:>12} {:>8} {:>9} {:>9}",
        "column", "bytes", "B/row", "int segs", "raw segs"
    );
    for c in cols.iter().take(top) {
        println!(
            "{:>22} {:>12} {:>8.3} {:>9} {:>9}",
            c.name,
            c.encoded_bytes,
            c.encoded_bytes as f64 / info.rows.max(1) as f64,
            c.int_segments,
            c.raw_segments
        );
    }
    Ok(())
}

/// `orfpred data verify --store DIR [--domain NAME]`: decode every
/// segment, check every CRC and ordering invariant; with `--domain`, also
/// check the store was recorded under that telemetry domain (a mismatch is
/// the store's typed `Corrupt` error, not a silent width pun). Exit status
/// is the answer.
fn data_verify(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let dir = args.require("store")?;
    let store = orfpred_store::Store::open(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
    if args.get("domain").is_some() {
        let want = domain_from_args(&args)?;
        store.verify_domain(&want).map_err(|e| e.to_string())?;
    }
    let report = store.verify().map_err(|e| e.to_string())?;
    let schema = store.schema();
    println!(
        "ok: {} segments, {} rows, {} encoded bytes verified \
         (domain {}, {} attributes, fingerprint {:016x})",
        report.segments,
        report.rows,
        report.bytes,
        schema.name,
        schema.n_attributes(),
        schema.fingerprint()
    );
    Ok(())
}

/// `orfpred schema [--domain smart|smart-windowed|mce]`: print a domain's
/// column layout — every base and derived feature column with its role —
/// plus the fingerprint that stores and checkpoints pin.
fn schema_cmd(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let schema = domain_from_args(&args)?;
    schema.validate()?;
    println!(
        "domain {} | {} attributes | {} base + {} derived = {} feature columns",
        schema.name,
        schema.n_attributes(),
        schema.n_base_features(),
        schema.derived.n_derived(),
        schema.n_features()
    );
    println!("fingerprint {:016x}", schema.fingerprint());
    if schema.derived.is_empty() {
        println!("derived plan: empty (window stage is a no-op)");
    } else {
        println!(
            "derived plan: {}-day window over {} base column(s)",
            schema.derived.window_days,
            schema.derived.cols.len()
        );
    }
    println!("{:>5} {:>28} {:>12} notes", "col", "feature", "kind");
    for col in 0..schema.n_features() {
        let (kind, notes) = match schema.column_role(col) {
            ColumnRole::Base(ai, k) => {
                let a = &schema.attributes[ai];
                let mut notes = format!("id {}", a.id);
                if a.cumulative {
                    notes.push_str(", cumulative");
                }
                (format!("{k:?}").to_lowercase(), notes)
            }
            ColumnRole::Derived(base, stat) => (
                stat.suffix().to_string(),
                format!("from col {base} ({})", schema.feature_name(base)),
            ),
        };
        println!(
            "{col:>5} {:>28} {kind:>12} {notes}",
            schema.feature_name(col)
        );
    }
    Ok(())
}

fn train(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["online", "lenient"])?;
    let model_path = args.require("model")?;
    let seed: u64 = args.parse_num("seed", 42)?;
    let lambda: f64 = args.parse_num("lambda", 3.0)?;
    let ds = load_input(&args)?;
    let saved = if args.has("online") {
        SavedModel::train_online(&ds, seed)?
    } else {
        SavedModel::train_offline(&ds, Some(lambda), seed)?
    };
    saved.save(model_path)?;
    eprintln!("saved {} model to {model_path}", saved.kind());
    Ok(())
}

fn score(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["lenient"])?;
    let ds = load_input(&args)?;
    let saved = SavedModel::load(args.require("model")?)?;
    let tau: f32 = args.parse_num("tau", 0.5)?;
    let top: usize = args.parse_num("top", 20)?;

    // Per-disk max score over the most recent week of samples — "who is at
    // risk right now". The saved model is compiled once into the frozen
    // layout and each disk's recent rows go through the batch kernel.
    let frozen = saved.freeze();
    let by_disk = ds.records_by_disk();
    let mut risks: Vec<(f32, u32)> = ds
        .disks
        .iter()
        .map(|d| {
            let recent = d.last_day.saturating_sub(7);
            let rows: Vec<&[f32]> = by_disk[d.disk_id as usize]
                .iter()
                .map(|&pos| &ds.records[pos])
                .filter(|r| r.day >= recent)
                .map(|r| r.features.as_slice())
                .collect();
            let best = frozen
                .score_rows(&rows)
                .into_iter()
                .fold(f32::NEG_INFINITY, f32::max);
            (best, d.disk_id)
        })
        .collect();
    risks.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    println!("{:>10} {:>10} {:>8}", "disk", "risk", "alarm");
    for &(risk, disk) in risks.iter().take(top) {
        println!(
            "{:>10} {:>10.3} {:>8}",
            format!("S{disk:08}"),
            risk,
            if risk >= tau { "YES" } else { "" }
        );
    }
    let alarms = risks.iter().filter(|&&(r, _)| r >= tau).count();
    eprintln!("{alarms} of {} disks above τ = {tau}", risks.len());
    Ok(())
}

fn evaluate(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["lenient"])?;
    let ds = load_input(&args)?;
    let saved = SavedModel::load(args.require("model")?)?;
    let target_far: f64 = args.parse_num("target-far", 0.01)?;
    let seed: u64 = args.parse_num("seed", 42)?;

    let mut rng = orfpred_util::Xoshiro256pp::seed_from_u64(seed);
    let split = orfpred_eval::split::DiskSplit::stratified(&ds, 0.7, &mut rng);
    let frozen = saved.freeze();
    // Pre-score every record through the frozen batch kernel (bit-identical
    // to per-row `score`); the metrics pass then indexes by position.
    let rows: Vec<&[f32]> = ds.records.iter().map(|r| r.features.as_slice()).collect();
    let scores = frozen.score_rows(&rows);
    let scored = orfpred_eval::metrics::scored_disks_with(
        &ds,
        &split.test,
        &|pos, _| scores[pos],
        7,
        0,
        ds.duration_days.saturating_add(1),
    );
    let op = scored.tune_for_far(target_far);
    let (n_failed, n_good) = scored.counts();
    println!(
        "held-out disks: {n_failed} failed / {n_good} good\n\
         AUC: {:.4}\n\
         at FAR ≤ {:.2}%: FDR {:.2}%  FAR {:.2}%  (τ = {:.3})",
        scored.auc(),
        target_far * 100.0,
        op.fdr * 100.0,
        op.far * 100.0,
        op.tau
    );
    Ok(())
}

fn drift(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["lenient"])?;
    let ds = load_input(&args)?;
    let top: usize = args.parse_num("top", 12)?;
    let cols: Vec<usize> = (0..orfpred_smart::attrs::N_FEATURES).collect();
    let report = orfpred_smart::drift::measure_drift(
        &ds,
        &orfpred_smart::DomainSchema::smart(),
        &cols,
        30,
        5_000,
    );
    print!("{}", report.render(top));
    Ok(())
}

fn assess(argv: &[String]) -> Result<(), String> {
    use orfpred_eval::health::{HealthAssessor, HealthLevel};
    let args = Args::parse(argv, &["lenient"])?;
    let ds = load_input(&args)?;
    let seed: u64 = args.parse_num("seed", 42)?;
    let mut rng = orfpred_util::Xoshiro256pp::seed_from_u64(seed);
    let split = orfpred_eval::split::DiskSplit::stratified(&ds, 0.7, &mut rng);
    let forest = orfpred_trees::ForestConfig::default();
    let assessor = HealthAssessor::fit(
        &ds,
        &split.is_train,
        &orfpred_smart::attrs::table2_feature_columns(),
        &forest,
        &mut rng,
    )
    .ok_or("not enough failure data to train the assessor")?;
    let report = assessor.evaluate(&ds, &split.is_train);
    eprintln!(
        "band accuracy on held-out failed-disk samples: {:.1}% over {} samples",
        report.acc_failed * 100.0,
        report.n_samples
    );
    // Triage every disk's latest snapshot.
    let by_disk = ds.records_by_disk();
    let mut critical = Vec::new();
    let mut warning = 0usize;
    let mut healthy = 0usize;
    for d in &ds.disks {
        let Some(&last) = by_disk[d.disk_id as usize].last() else {
            continue;
        };
        match assessor.assess(&ds.records[last].features) {
            HealthLevel::Critical => critical.push(d.disk_id),
            HealthLevel::Warning => warning += 1,
            HealthLevel::Healthy => healthy += 1,
        }
    }
    println!(
        "{} disks: {} act-now / {warning} schedule / {healthy} healthy",
        ds.disks.len(),
        critical.len()
    );
    for d in critical.iter().take(50) {
        println!("  S{d:08}  migrate immediately");
    }
    Ok(())
}

fn serve(argv: &[String]) -> Result<(), String> {
    use orfpred_core::{AdaptConfig, OnlinePredictorConfig, UpdatePolicy};
    use orfpred_serve::{DaemonConfig, ServeConfig};

    let args = Args::parse(argv, &["prep"])?;

    // One or more --tenant specs select the multi-tenant fleet daemon;
    // the single-tenant tuning flags below are ignored in that mode (each
    // tenant carries its own knobs in its spec).
    let tenant_specs = args.get_all("tenant");
    if !tenant_specs.is_empty() {
        let mut tenants = Vec::new();
        for spec in tenant_specs {
            tenants.push(orfpred_fleet::parse_tenant_spec(spec)?);
        }
        let mut cfg = orfpred_fleet::FleetDaemonConfig::new(tenants);
        cfg.listen = args.get("listen").map(str::to_string);
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let fins = orfpred_fleet::run(&cfg, stdin.lock(), stdout.lock())?;
        eprintln!("serve: clean shutdown, {} tenants", fins.len());
        for f in &fins {
            eprintln!(
                "serve: tenant `{}`: {} events, {} alarms, {} drift events, {} rebuilds, {} reshards",
                f.tenant,
                f.counters.events,
                f.counters.alarms,
                f.counters.drift_events,
                f.counters.model_rebuilds,
                f.counters.reshards,
            );
        }
        return Ok(());
    }

    let mut predictor = OnlinePredictorConfig::new(
        orfpred_smart::attrs::table2_feature_columns(),
        args.parse_num("seed", 42u64)?,
    );
    predictor.alarm_threshold = args.parse_num("threshold", predictor.alarm_threshold)?;
    predictor.window_days = args.parse_num("window", predictor.window_days)?;
    predictor.orf.n_trees = args.parse_num("trees", predictor.orf.n_trees)?;
    // Telemetry repair stage: --prep arms the tolerant profile; any of the
    // tuning knobs implies it.
    if args.has("prep")
        || args.get("stuck-run").is_some()
        || args.get("recheck-days").is_some()
        || args.get("max-value").is_some()
    {
        let mut prep = orfpred_prep::PrepConfig::tolerant();
        prep.stuck_run = args.parse_num("stuck-run", prep.stuck_run)?;
        prep.recheck_days = args.parse_num("recheck-days", prep.recheck_days)?;
        if let Some(v) = args.get("max-value") {
            prep.max_value = Some(
                v.parse()
                    .map_err(|_| format!("--max-value: bad value '{v}'"))?,
            );
        }
        predictor.prep = Some(prep);
    }
    // Closed-loop adaptation: a detected shift in the released healthy
    // population triggers the chosen long-term update policy live.
    if let Some(name) = args.get("drift-policy") {
        let policy = match name {
            "no-update" => UpdatePolicy::NoUpdate,
            "replace" => UpdatePolicy::Replace,
            "accumulate" => UpdatePolicy::Accumulate,
            other => {
                return Err(format!(
                    "--drift-policy: unknown policy '{other}' (no-update|replace|accumulate)"
                ))
            }
        };
        let mut adapt = AdaptConfig::new(policy, predictor.feature_cols.clone());
        adapt.detector.z_threshold = args.parse_num("drift-z", adapt.detector.z_threshold)?;
        adapt.detector.window = args.parse_num("drift-window", adapt.detector.window)?;
        adapt.detector.check_every =
            args.parse_num("drift-check-every", adapt.detector.check_every)?;
        predictor.adapt = Some(adapt);
    }
    let mut serve = ServeConfig::new(predictor);
    serve.n_shards = args.parse_num("shards", serve.n_shards)?;
    serve.queue_capacity = args.parse_num("queue-capacity", serve.queue_capacity)?;
    serve.snapshot_every = args.parse_num("snapshot-every", serve.snapshot_every)?;
    if serve.n_shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let cfg = DaemonConfig {
        serve,
        listen: args.get("listen").map(str::to_string),
        checkpoint_path: args.get("checkpoint").map(std::path::PathBuf::from),
        catchup_store: args.get("store").map(std::path::PathBuf::from),
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let finished = orfpred_serve::daemon::run(&cfg, stdin.lock(), stdout.lock())?;
    eprintln!(
        "serve: clean shutdown, {} alarms in stream",
        finished.alarms.len()
    );
    // lint: allow(checkpoint_coverage, reason="read-only peek at two optional reports for shutdown logging; restore completeness is enforced at Engine::restore")
    let orfpred_serve::Checkpoint::Online { prep, adapt, .. } = &finished.checkpoint;
    if let Some(p) = prep {
        eprintln!("{}", p.counters().render());
    }
    if let Some(ad) = adapt {
        eprintln!(
            "serve: {} drift events, {} model rebuilds",
            ad.drift_events(),
            ad.rebuilds()
        );
    }
    Ok(())
}

/// `orfpred faultsim --seed N [--size Z] [--cases K]`: run the seeded
/// fault-injection scenario(s) and verify the differential oracle — the
/// exact derivation `tests/fault_sim.rs` uses, so a seed printed by a
/// failing property test reproduces here byte for byte.
fn faultsim(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let seed: u64 = args.parse_num("seed", 1)?;
    let size: u32 = args.parse_num("size", 80)?;
    let cases: u64 = args.parse_num("cases", 1)?;
    for k in 0..cases.max(1) {
        let s = seed + k;
        let report = orfpred_testkit::run_scenario(s, size)
            .map_err(|e| format!("faultsim seed {s} size {size}: ORACLE VIOLATION: {e}"))?;
        println!(
            "faultsim seed {s} size {size}: OK — {} actions ({} events), {} alarms, \
             {} recoveries, {} checkpoint failures, {} checkpoints",
            report.n_actions,
            report.n_events,
            report.alarms,
            report.recoveries,
            report.checkpoint_failures,
            report.checkpoints_taken
        );
        for fault in &report.faults_fired {
            println!("  fault fired: {fault}");
        }
        for fault in &report.faults_planned {
            println!("  planned: {fault}");
        }
    }
    Ok(())
}

fn model_cmd(argv: &[String]) -> Result<(), String> {
    match argv.first().map(String::as_str) {
        Some("inspect") => model_inspect(&argv[1..]),
        Some(other) => Err(format!("unknown model action '{other}' (inspect)")),
        None => Err("usage: orfpred model inspect --model model.json [--top K]".into()),
    }
}

/// `orfpred model inspect --model model.json [--top K]`: compile the saved
/// model to the frozen layout and print its anatomy.
fn model_inspect(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &[])?;
    let saved = SavedModel::load(args.require("model")?)?;
    let top: usize = args.parse_num("top", 10)?;
    // Footprint of the live representation before compiling: the ORF
    // carries its per-leaf candidate-test pools (the dominant cost the
    // frozen layout sheds); the offline RF has none.
    let live_pool_bytes = match &saved {
        SavedModel::Online { forest, .. } => Some(forest.test_pool_bytes()),
        SavedModel::Offline { .. } => None,
    };
    let frozen = saved.freeze();
    let f = frozen.forest();

    println!("{}", frozen.kind());
    println!(
        "trees: {}   nodes: {}   leaves: {}   features: {}",
        f.n_trees(),
        f.n_nodes(),
        f.n_leaves(),
        f.n_features()
    );
    let counts = f.tree_node_counts();
    let (min, max) = (
        counts.iter().min().copied().unwrap_or(0),
        counts.iter().max().copied().unwrap_or(0),
    );
    println!(
        "nodes per tree: min {min} / mean {:.0} / max {max}",
        f.n_nodes() as f64 / f.n_trees() as f64
    );
    println!("max depth: {}", f.max_depth());
    println!("depth histogram (leaves at each depth):");
    let hist = f.depth_histogram();
    let widest = hist.iter().copied().max().unwrap_or(1).max(1);
    for (d, &n) in hist.iter().enumerate() {
        let bar = "#".repeat(((n * 40).div_ceil(widest)) as usize);
        println!("  {d:>3} | {n:>8} {bar}");
    }
    match live_pool_bytes {
        Some(pool) => println!(
            "frozen footprint: {} bytes ({} per tree); live candidate-test pools were {} bytes",
            f.memory_bytes(),
            f.memory_bytes() / f.n_trees(),
            pool
        ),
        None => println!(
            "frozen footprint: {} bytes ({} per tree)",
            f.memory_bytes(),
            f.memory_bytes() / f.n_trees()
        ),
    }
    // The breadth-first batch twin must describe the same forest: its
    // counts and depth histogram are derived from a different node layout,
    // so any disagreement flags a compilation bug.
    let lv = f.level();
    assert_eq!(lv.n_trees(), f.n_trees(), "level layout tree count");
    assert_eq!(lv.n_nodes(), f.n_nodes(), "level layout node count");
    assert_eq!(lv.n_leaves(), f.n_leaves(), "level layout leaf count");
    assert_eq!(lv.max_depth(), f.max_depth(), "level layout max depth");
    assert_eq!(
        lv.depth_histogram(),
        hist,
        "level layout depth histogram diverged from preorder"
    );
    println!(
        "batch (level-order) twin: {} bytes ({} per tree), layout verified against preorder",
        lv.memory_bytes(),
        lv.memory_bytes() / lv.n_trees()
    );
    let ranked = f.top_importances(top);
    if !ranked.is_empty() {
        println!("top {} feature importances:", ranked.len());
        // Models in this repo train on the Table 2 column selection, so a
        // matching width lets us name each feature; otherwise print indices.
        let cols = orfpred_smart::attrs::table2_feature_columns();
        for (idx, w) in ranked {
            let name = if f.n_features() == cols.len() {
                orfpred_smart::attrs::feature_name(cols[idx])
            } else {
                format!("feature_{idx}")
            };
            println!("  {name:>22}  {:.4}", w);
        }
    }
    Ok(())
}

fn inspect(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, &["lenient"])?;
    let ds = load_input(&args)?;
    let s = orfpred_smart::summary::summarize(&ds, 30);
    println!(
        "model {} | {} disks ({} failed) | {} snapshots over {} days",
        s.model,
        s.n_good + s.n_failed,
        s.n_failed,
        s.n_samples,
        ds.duration_days
    );
    println!(
        "labelled (7-day window): {} positive / {} negative (1:{:.0})",
        s.n_positive, s.n_negative, s.imbalance
    );
    println!("population by month: {:?}", s.population_by_month);
    println!("failures  by month: {:?}", s.failures_by_month);
    Ok(())
}
