//! Self-contained on-disk model format: the scaler and forest bundled into
//! one JSON document, so a model file scores raw Backblaze rows with no
//! side-channel configuration.

use orfpred_core::{OnlineRandomForest, OrfConfig};
use orfpred_eval::prep::{build_matrix, stream_orf, training_labels};
use orfpred_smart::attrs::table2_feature_columns;
use orfpred_smart::record::Dataset;
use orfpred_smart::scale::{MinMaxScaler, OnlineMinMax};
use orfpred_trees::{ForestConfig, RandomForest};
use orfpred_util::Xoshiro256pp;
use serde::{Deserialize, Serialize};

/// A trained model plus the preprocessing it expects.
#[derive(Serialize, Deserialize)]
pub enum SavedModel {
    /// Offline Random Forest + offline scaler.
    Offline {
        scaler: MinMaxScaler,
        forest: RandomForest,
    },
    /// Online Random Forest + the streaming scaler state it ended with.
    Online {
        scaler: OnlineMinMax,
        forest: OnlineRandomForest,
    },
}

impl SavedModel {
    /// Train the offline RF on the dataset's 7-day labelling.
    pub fn train_offline(ds: &Dataset, lambda: Option<f64>, seed: u64) -> Result<Self, String> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let all = vec![true; ds.disks.len()];
        let labels = training_labels(ds, &all, ds.duration_days, 7);
        let tm = build_matrix(ds, &labels, &table2_feature_columns(), lambda, &mut rng)
            .ok_or("dataset has no positive samples — cannot train")?;
        let forest = RandomForest::fit(&tm.x, &tm.y, &ForestConfig::default(), rng.next_u64());
        Ok(SavedModel::Offline {
            scaler: tm.scaler,
            forest,
        })
    }

    /// Train the ORF by chronological replay of the labelled samples.
    pub fn train_online(ds: &Dataset, seed: u64) -> Result<Self, String> {
        let all = vec![true; ds.disks.len()];
        let labels = training_labels(ds, &all, ds.duration_days, 7);
        if !labels.iter().any(|l| l.positive) {
            return Err("dataset has no positive samples — cannot train".into());
        }
        let (forest, scaler) = stream_orf(
            ds,
            &labels,
            &table2_feature_columns(),
            &OrfConfig::default(),
            seed,
        );
        Ok(SavedModel::Online { scaler, forest })
    }

    /// Risk score of a raw 48-column snapshot.
    pub fn score(&self, features: &[f32]) -> f32 {
        match self {
            SavedModel::Offline { scaler, forest } => forest.score(&scaler.transform(features)),
            SavedModel::Online { scaler, forest } => forest.score(&scaler.transform(features)),
        }
    }

    /// Human-readable kind.
    pub fn kind(&self) -> &'static str {
        match self {
            SavedModel::Offline { .. } => "offline random forest",
            SavedModel::Online { .. } => "online random forest",
        }
    }

    /// Serialize to a JSON file.
    pub fn save(&self, path: &str) -> Result<(), String> {
        let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        serde_json::to_writer(std::io::BufWriter::new(file), self)
            .map_err(|e| format!("serialize model: {e}"))
    }

    /// Load from a JSON file.
    pub fn load(path: &str) -> Result<Self, String> {
        let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        serde_json::from_reader(std::io::BufReader::new(file))
            .map_err(|e| format!("parse model {path}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_smart::gen::{FleetConfig, FleetSim, ScalePreset};

    fn dataset() -> Dataset {
        let mut cfg = FleetConfig::sta(ScalePreset::Tiny, 31);
        cfg.n_good = 60;
        cfg.n_failed = 12;
        cfg.duration_days = 250;
        FleetSim::collect(&cfg)
    }

    #[test]
    fn offline_model_round_trips_through_disk() {
        let ds = dataset();
        let model = SavedModel::train_offline(&ds, Some(3.0), 1).unwrap();
        let dir = std::env::temp_dir().join("orfpred_cli_test_offline.json");
        let path = dir.to_str().unwrap();
        model.save(path).unwrap();
        let back = SavedModel::load(path).unwrap();
        for rec in ds.records.iter().take(100) {
            assert_eq!(model.score(&rec.features), back.score(&rec.features));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn online_model_trains_and_scores() {
        let ds = dataset();
        let model = SavedModel::train_online(&ds, 2).unwrap();
        assert_eq!(model.kind(), "online random forest");
        for rec in ds.records.iter().take(50) {
            let s = model.score(&rec.features);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn training_without_positives_errors() {
        let mut ds = dataset();
        for d in &mut ds.disks {
            d.failed = false;
            d.last_day = ds.duration_days;
        }
        // Records past each disk's (now extended) window are fine; rebuild
        // a consistent record set by keeping only day-0 samples.
        ds.records.retain(|r| r.day == 0);
        assert!(SavedModel::train_offline(&ds, Some(3.0), 1).is_err());
        assert!(SavedModel::train_online(&ds, 1).is_err());
    }
}
