//! Self-contained on-disk model format: the scaler and forest bundled into
//! one JSON document, so a model file scores raw Backblaze rows with no
//! side-channel configuration.
//!
//! The `Online` variant is versioned and shares its JSON shape with the
//! serving daemon's checkpoint format (`orfpred_serve::Checkpoint`): a
//! daemon checkpoint loads here for offline scoring, and a trained model
//! file boots a daemon. v1 files (scaler + forest only) predate the
//! serving fields, which are therefore all optional.

use orfpred_core::{OnlineLabeller, OnlineRandomForest, OrfConfig};
use orfpred_eval::prep::{build_matrix, stream_orf, training_labels};
use orfpred_smart::attrs::table2_feature_columns;
use orfpred_smart::record::Dataset;
use orfpred_smart::scale::{MinMaxScaler, OnlineMinMax};
use orfpred_trees::{ForestConfig, FrozenForest, RandomForest};
use orfpred_util::{Matrix, Xoshiro256pp};
use serde::{Deserialize, Serialize};

/// A trained model plus the preprocessing it expects.
// One SavedModel exists per process; the variant size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Serialize, Deserialize)]
pub enum SavedModel {
    /// Offline Random Forest + offline scaler.
    Offline {
        scaler: MinMaxScaler,
        forest: RandomForest,
    },
    /// Online Random Forest + the streaming scaler state it ended with,
    /// plus (v2, optional) the serving state needed to resume a daemon.
    Online {
        scaler: OnlineMinMax,
        forest: OnlineRandomForest,
        /// Schema version; `None` on v1 files.
        version: Option<u32>,
        /// Per-disk labelling queues (Algorithm 2 state); `None` on v1
        /// files and models trained offline from a finished CSV.
        labeller: Option<OnlineLabeller>,
        /// Alarm operating point the serving run used.
        alarm_threshold: Option<f32>,
        /// Alarms raised before the checkpoint.
        alarms_raised: Option<u64>,
        /// Next global sequence number of the serving stream.
        next_seq: Option<u64>,
    },
}

impl SavedModel {
    /// Train the offline RF on the dataset's 7-day labelling.
    pub fn train_offline(ds: &Dataset, lambda: Option<f64>, seed: u64) -> Result<Self, String> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let all = vec![true; ds.disks.len()];
        let labels = training_labels(ds, &all, ds.duration_days, 7);
        let tm = build_matrix(ds, &labels, &table2_feature_columns(), lambda, &mut rng)
            .ok_or("dataset has no positive samples — cannot train")?;
        let forest = RandomForest::fit(&tm.x, &tm.y, &ForestConfig::default(), rng.next_u64());
        Ok(SavedModel::Offline {
            scaler: tm.scaler,
            forest,
        })
    }

    /// Train the ORF by chronological replay of the labelled samples.
    pub fn train_online(ds: &Dataset, seed: u64) -> Result<Self, String> {
        let all = vec![true; ds.disks.len()];
        let labels = training_labels(ds, &all, ds.duration_days, 7);
        if !labels.iter().any(|l| l.positive) {
            return Err("dataset has no positive samples — cannot train".into());
        }
        let (forest, scaler) = stream_orf(
            ds,
            &labels,
            &table2_feature_columns(),
            &OrfConfig::default(),
            seed,
        );
        Ok(SavedModel::Online {
            scaler,
            forest,
            version: Some(orfpred_serve::CHECKPOINT_VERSION),
            labeller: None,
            alarm_threshold: None,
            alarms_raised: None,
            next_seq: None,
        })
    }

    /// Risk score of a raw 48-column snapshot via the live tree walk — the
    /// reference the frozen path is asserted bit-identical against. Every
    /// operational scoring path goes through [`Self::freeze`] instead.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn score(&self, features: &[f32]) -> f32 {
        match self {
            SavedModel::Offline { scaler, forest } => forest.score(&scaler.transform(features)),
            SavedModel::Online { scaler, forest, .. } => forest.score(&scaler.transform(features)),
        }
    }

    /// Human-readable kind.
    pub fn kind(&self) -> &'static str {
        match self {
            SavedModel::Offline { .. } => "offline random forest",
            SavedModel::Online { .. } => "online random forest",
        }
    }

    /// Serialize to a JSON file.
    pub fn save(&self, path: &str) -> Result<(), String> {
        let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        serde_json::to_writer(std::io::BufWriter::new(file), self)
            .map_err(|e| format!("serialize model: {e}"))
    }

    /// Load from a JSON file.
    pub fn load(path: &str) -> Result<Self, String> {
        let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        serde_json::from_reader(std::io::BufReader::new(file))
            .map_err(|e| format!("parse model {path}: {e}"))
    }

    /// Compile into the flat scoring representation; scores bit-identical
    /// to [`Self::score`] at the freeze point.
    pub fn freeze(&self) -> FrozenModel {
        match self {
            SavedModel::Offline { scaler, forest } => FrozenModel::Offline {
                scaler: scaler.clone(),
                forest: forest.freeze(),
            },
            SavedModel::Online { scaler, forest, .. } => FrozenModel::Online {
                scaler: scaler.clone(),
                forest: forest.freeze(),
            },
        }
    }
}

/// A [`SavedModel`] compiled for scoring: the flat frozen forest plus the
/// matching preprocessing. This is what every CLI scoring path runs.
pub enum FrozenModel {
    /// Frozen offline RF + offline scaler.
    Offline {
        /// Scaler fitted on the training rows.
        scaler: MinMaxScaler,
        /// Compiled forest.
        forest: FrozenForest,
    },
    /// Frozen ORF (mature pool at freeze time) + streaming scaler state.
    Online {
        /// Streaming scaler at the freeze point.
        scaler: OnlineMinMax,
        /// Compiled forest.
        forest: FrozenForest,
    },
}

impl FrozenModel {
    /// Batch-score raw rows: scale once, then run the frozen batch kernel
    /// (bit-identical to scaling and scoring each row individually).
    pub fn score_rows(&self, rows: &[&[f32]]) -> Vec<f32> {
        let mut scaled = Matrix::with_capacity(self.forest().n_features(), rows.len());
        match self {
            FrozenModel::Offline { scaler, .. } => {
                for r in rows {
                    scaled.push_row(&scaler.transform(r));
                }
            }
            FrozenModel::Online { scaler, .. } => {
                for r in rows {
                    scaled.push_row(&scaler.transform(r));
                }
            }
        }
        self.forest().score_batch(&scaled)
    }

    /// The compiled forest (inspection / batch paths).
    pub fn forest(&self) -> &FrozenForest {
        match self {
            FrozenModel::Offline { forest, .. } | FrozenModel::Online { forest, .. } => forest,
        }
    }

    /// Human-readable kind.
    pub fn kind(&self) -> &'static str {
        match self {
            FrozenModel::Offline { .. } => "offline random forest (frozen)",
            FrozenModel::Online { .. } => "online random forest (frozen)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_smart::gen::{FleetConfig, FleetSim, ScalePreset};

    fn dataset() -> Dataset {
        let mut cfg = FleetConfig::sta(ScalePreset::Tiny, 31);
        cfg.n_good = 60;
        cfg.n_failed = 12;
        cfg.duration_days = 250;
        FleetSim::collect(&cfg)
    }

    #[test]
    fn offline_model_round_trips_through_disk() {
        let ds = dataset();
        let model = SavedModel::train_offline(&ds, Some(3.0), 1).unwrap();
        let dir = std::env::temp_dir().join("orfpred_cli_test_offline.json");
        let path = dir.to_str().unwrap();
        model.save(path).unwrap();
        let back = SavedModel::load(path).unwrap();
        for rec in ds.records.iter().take(100) {
            assert_eq!(model.score(&rec.features), back.score(&rec.features));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn online_model_trains_and_scores() {
        let ds = dataset();
        let model = SavedModel::train_online(&ds, 2).unwrap();
        assert_eq!(model.kind(), "online random forest");
        for rec in ds.records.iter().take(50) {
            let s = model.score(&rec.features);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn v1_online_model_files_still_load() {
        let ds = dataset();
        let model = SavedModel::train_online(&ds, 2).unwrap();
        let SavedModel::Online { scaler, forest, .. } = model else {
            panic!("train_online yields Online");
        };
        // A v1 file as written before the serving fields existed.
        let v1 = format!(
            "{{\"Online\":{{\"scaler\":{},\"forest\":{}}}}}",
            serde_json::to_string(&scaler).unwrap(),
            serde_json::to_string(&forest).unwrap()
        );
        let dir = std::env::temp_dir().join("orfpred_cli_test_v1.json");
        std::fs::write(&dir, &v1).unwrap();
        let loaded = SavedModel::load(dir.to_str().unwrap()).unwrap();
        let SavedModel::Online {
            version,
            labeller,
            alarm_threshold,
            alarms_raised,
            next_seq,
            scaler: s2,
            forest: f2,
        } = loaded
        else {
            panic!("v1 file is an Online model");
        };
        assert_eq!(version, None);
        assert!(labeller.is_none() && alarm_threshold.is_none());
        assert!(alarms_raised.is_none() && next_seq.is_none());
        assert_eq!(
            serde_json::to_string(&s2).unwrap(),
            serde_json::to_string(&scaler).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&f2).unwrap(),
            serde_json::to_string(&forest).unwrap()
        );
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn model_files_and_serve_checkpoints_are_interchangeable() {
        let ds = dataset();
        let model = SavedModel::train_online(&ds, 2).unwrap();
        let dir = std::env::temp_dir().join("orfpred_cli_test_interop.json");
        let path = dir.to_str().unwrap();
        model.save(path).unwrap();

        // A trained model file loads as a daemon checkpoint…
        let ck = orfpred_serve::Checkpoint::load(&dir).unwrap();
        ck.save_atomic(&dir).unwrap();
        // …and the daemon's atomically-written checkpoint loads back as a
        // SavedModel that scores identically.
        let back = SavedModel::load(path).unwrap();
        assert_eq!(back.kind(), "online random forest");
        for rec in ds.records.iter().take(50) {
            assert_eq!(model.score(&rec.features), back.score(&rec.features));
        }
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn frozen_model_matches_saved_model_bitwise() {
        let ds = dataset();
        for model in [
            SavedModel::train_offline(&ds, Some(3.0), 1).unwrap(),
            SavedModel::train_online(&ds, 2).unwrap(),
        ] {
            let frozen = model.freeze();
            let rows: Vec<&[f32]> = ds
                .records
                .iter()
                .take(100)
                .map(|r| r.features.as_slice())
                .collect();
            let batch = frozen.score_rows(&rows);
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(
                    batch[i].to_bits(),
                    model.score(r).to_bits(),
                    "{} row {i}",
                    frozen.kind()
                );
            }
        }
    }

    #[test]
    fn training_without_positives_errors() {
        let mut ds = dataset();
        for d in &mut ds.disks {
            d.failed = false;
            d.last_day = ds.duration_days;
        }
        // Records past each disk's (now extended) window are fine; rebuild
        // a consistent record set by keeping only day-0 samples.
        ds.records.retain(|r| r.day == 0);
        assert!(SavedModel::train_offline(&ds, Some(3.0), 1).is_err());
        assert!(SavedModel::train_online(&ds, 1).is_err());
    }
}
