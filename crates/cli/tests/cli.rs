//! End-to-end CLI tests: drive the built `orfpred` binary through the full
//! simulate → inspect → train → score → eval workflow, exactly as a
//! downstream operator would.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_orfpred"))
}

fn tmp(name: &str) -> (PathBuf, String) {
    let p = std::env::temp_dir().join(format!("orfpred_cli_{}_{name}", std::process::id()));
    let s = p.to_str().unwrap().to_string();
    (p, s)
}

#[test]
fn full_workflow_simulate_train_score_eval() {
    let (csv_path, csv) = tmp("fleet.csv");
    let (model_path, model) = tmp("model.json");

    // simulate
    let out = bin()
        .args([
            "simulate",
            "--out",
            &csv,
            "--dataset",
            "sta",
            "--scale",
            "tiny",
            "--seed",
            "7",
        ])
        .output()
        .expect("run simulate");
    assert!(
        out.status.success(),
        "simulate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(csv_path.exists());

    // inspect
    let out = bin().args(["inspect", "--csv", &csv]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ST4000DM000"), "inspect output: {text}");
    assert!(text.contains("failed"), "inspect output: {text}");

    // train (offline)
    let out = bin()
        .args(["train", "--csv", &csv, "--model", &model, "--seed", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model_path.exists());

    // model inspect
    let out = bin()
        .args(["model", "inspect", "--model", &model, "--top", "5"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "model inspect failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("offline random forest (frozen)"), "{text}");
    assert!(text.contains("depth histogram"), "{text}");
    assert!(text.contains("frozen footprint"), "{text}");
    // The breadth-first batch layout must be reported and internally
    // verified (inspect asserts its counts/histogram match preorder).
    assert!(
        text.contains("batch (level-order) twin"),
        "inspect must report the level layout: {text}"
    );
    assert!(text.contains("layout verified against preorder"), "{text}");
    assert!(
        text.contains("smart_"),
        "inspect must name features: {text}"
    );

    // score
    let out = bin()
        .args(["score", "--csv", &csv, "--model", &model, "--top", "5"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "score failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().count() >= 6, "score output: {text}");
    assert!(text.contains("risk"));

    // eval
    let out = bin()
        .args([
            "eval",
            "--csv",
            &csv,
            "--model",
            &model,
            "--target-far",
            "0.05",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "eval failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("AUC"), "eval output: {text}");
    assert!(text.contains("FDR"), "eval output: {text}");

    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&model_path).ok();
}

#[test]
fn online_training_path_works() {
    let (csv_path, csv) = tmp("fleet2.csv");
    let (model_path, model) = tmp("model2.json");
    assert!(bin()
        .args([
            "simulate",
            "--out",
            &csv,
            "--dataset",
            "stb",
            "--scale",
            "tiny",
            "--seed",
            "9"
        ])
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args(["train", "--csv", &csv, "--model", &model, "--online"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("online random forest"));

    // model inspect on the ORF-frozen model: the level-order twin must
    // agree with the preorder layout (asserted inside inspect) and report
    // its own footprint.
    let out = bin()
        .args(["model", "inspect", "--model", &model])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "model inspect (online) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("online random forest (frozen)"), "{text}");
    assert!(text.contains("batch (level-order) twin"), "{text}");
    assert!(text.contains("layout verified against preorder"), "{text}");

    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&model_path).ok();
}

#[test]
fn drift_command_reports_cumulative_attributes() {
    let (csv_path, csv) = tmp("fleet3.csv");
    assert!(bin()
        .args([
            "simulate",
            "--out",
            &csv,
            "--dataset",
            "sta",
            "--scale",
            "tiny",
            "--seed",
            "4"
        ])
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args(["drift", "--csv", &csv, "--top", "6"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Power-On Hours is the canonical drifting attribute.
    assert!(text.contains("smart_9_raw"), "drift output: {text}");
    std::fs::remove_file(&csv_path).ok();
}

#[test]
fn assess_command_triages_disks() {
    let (csv_path, csv) = tmp("fleet4.csv");
    assert!(bin()
        .args([
            "simulate",
            "--out",
            &csv,
            "--dataset",
            "stb",
            "--scale",
            "tiny",
            "--seed",
            "6"
        ])
        .status()
        .unwrap()
        .success());
    let out = bin().args(["assess", "--csv", &csv]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("act-now"), "assess output: {text}");
    std::fs::remove_file(&csv_path).ok();
}

#[test]
fn data_store_workflow_record_info_verify_train() {
    let (store_path, store) = tmp("store");
    std::fs::remove_dir_all(&store_path).ok();
    let (model_path, model) = tmp("model5.json");

    // record straight from the simulator
    let out = bin()
        .args([
            "data",
            "record",
            "--out",
            &store,
            "--dataset",
            "sta",
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--segment-rows",
            "512",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "data record failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("recorded"));
    assert!(store_path.join("store.json").exists());

    // info
    let out = bin()
        .args(["data", "info", "--store", &store])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "data info failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ST4000DM000"), "info output: {text}");
    assert!(text.contains("compression"), "info output: {text}");
    assert!(text.contains("smart_"), "info must name columns: {text}");

    // verify
    let out = bin()
        .args(["data", "verify", "--store", &store])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "data verify failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("ok:"));

    // a store is a drop-in CSV replacement downstream
    let out = bin()
        .args(["train", "--store", &store, "--model", &model, "--seed", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "train --store failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model_path.exists());

    // verify flags corruption loudly
    let seg = std::fs::read_dir(&store_path)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "orfseg"))
        .expect("a segment file");
    let mut bytes = std::fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&seg, &bytes).unwrap();
    let out = bin()
        .args(["data", "verify", "--store", &store])
        .output()
        .unwrap();
    assert!(!out.status.success(), "verify must fail on a flipped bit");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("corrupt"),
        "typed corruption message: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&store_path).ok();
    std::fs::remove_file(&model_path).ok();
}

#[test]
fn lenient_csv_parsing_skips_bad_rows_with_a_warning() {
    let (csv_path, csv) = tmp("fleet6.csv");
    assert!(bin()
        .args(["simulate", "--out", &csv, "--scale", "tiny", "--seed", "2"])
        .status()
        .unwrap()
        .success());
    // Wreck one data row.
    let mut text = std::fs::read_to_string(&csv_path).unwrap();
    let line_start = text.match_indices('\n').nth(2).unwrap().0 + 1;
    let line_end = text[line_start..].find('\n').unwrap() + line_start;
    text.replace_range(line_start..line_end, "not,a,row");
    std::fs::write(&csv_path, &text).unwrap();

    // Strict parse fails with the line number…
    let out = bin().args(["inspect", "--csv", &csv]).output().unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("line 4"),
        "strict error names the line: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // …lenient skips it and says so.
    let out = bin()
        .args(["inspect", "--csv", &csv, "--lenient"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "lenient inspect failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("skipped 1 of"),
        "skip warning: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&csv_path).ok();
}

#[test]
fn bad_usage_exits_nonzero_with_message() {
    let out = bin().output().unwrap();
    assert!(!out.status.success(), "no-arg run must fail");

    let out = bin().args(["train", "--csv"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));

    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = bin()
        .args([
            "score",
            "--csv",
            "/nonexistent.csv",
            "--model",
            "/nonexistent.json",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
