//! Drift-triggered closed-loop adaptation — the paper's §4.5 long-term
//! update strategies, live.
//!
//! `eval::longterm` *simulates* the three long-term policies (no-update,
//! replacing, accumulation) offline to argue the ORF ages best. This
//! module closes the loop in the serving path: an online
//! [`DriftDetector`] watches the
//! healthy population the labeller releases, and when it declares a
//! distribution shift, a configurable [`UpdatePolicy`] rebuilds the forest
//! from buffered labelled history — deterministically, so sharded serving
//! and serial replay still agree bit for bit.
//!
//! The buffers hold **raw** feature rows; a rebuild transforms them
//! through the *current* streaming scaler, so a model rebuilt after drift
//! sees the stream exactly as a freshly trained one would.

use crate::config::OrfConfig;
use crate::forest::OnlineRandomForest;
use orfpred_smart::drift::{DriftDetector, DriftDetectorConfig, DriftEvent};
use orfpred_smart::scale::OnlineMinMax;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What to do with the model when drift is detected (paper §4.5 names).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdatePolicy {
    /// Count the shift but keep the model — the paper's aging baseline.
    NoUpdate,
    /// Replace the forest with one trained on the recent window only.
    Replace,
    /// Replace the forest with one trained on the full (thinned)
    /// accumulated history.
    Accumulate,
}

impl UpdatePolicy {
    /// Parse a CLI spelling (`no-update` / `replace` / `accumulate`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "no-update" | "no_update" | "none" => Some(Self::NoUpdate),
            "replace" => Some(Self::Replace),
            "accumulate" => Some(Self::Accumulate),
            _ => None,
        }
    }

    /// The canonical CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::NoUpdate => "no-update",
            Self::Replace => "replace",
            Self::Accumulate => "accumulate",
        }
    }
}

/// Configuration of the closed adaptation loop.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptConfig {
    /// Long-term update policy applied when drift fires.
    pub policy: UpdatePolicy,
    /// The drift detector watching the released healthy population.
    pub detector: DriftDetectorConfig,
    /// Labelled samples kept in the recent window ([`UpdatePolicy::Replace`]
    /// trains on exactly this window).
    pub replace_window: usize,
    /// Cap on the accumulated history buffer; when full it is decimated
    /// (every other sample dropped, sampling stride doubled) so it spans
    /// the whole stream at decreasing resolution.
    pub accum_cap: usize,
}

impl AdaptConfig {
    /// Default loop: monitor `cols` with detector defaults.
    pub fn new(policy: UpdatePolicy, cols: Vec<usize>) -> Self {
        Self {
            policy,
            detector: DriftDetectorConfig::new(cols),
            replace_window: 2_048,
            accum_cap: 8_192,
        }
    }
}

/// The serializable state of the adaptation loop: detector windows plus
/// the labelled-history buffers and rebuild bookkeeping. Deterministic and
/// checkpointable — both the serial predictor and the serve engine's
/// writer thread embed one and must agree bit-exactly.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AdaptiveState {
    cfg: AdaptConfig,
    detector: DriftDetector,
    /// Model input width (the forest's feature count after column
    /// selection).
    n_features: usize,
    /// ORF hyper-parameters for rebuilt forests.
    orf: OrfConfig,
    /// Base seed; each rebuild derives a fresh deterministic stream.
    base_seed: u64,
    /// Sliding window of the most recent released samples (raw row, label).
    recent: VecDeque<(Box<[f32]>, bool)>,
    /// Decimated history spanning the whole stream (raw row, label).
    accum: Vec<(Box<[f32]>, bool)>,
    /// Current decimation stride: every `stride`-th release is kept.
    stride: u64,
    /// Releases observed (drives the decimation phase).
    seen: u64,
    drift_events: u64,
    rebuilds: u64,
}

impl AdaptiveState {
    /// Build the loop for a model of `n_features` inputs rebuilt with
    /// `orf` hyper-parameters and seeds derived from `base_seed`.
    pub fn new(cfg: &AdaptConfig, n_features: usize, orf: &OrfConfig, base_seed: u64) -> Self {
        Self {
            cfg: cfg.clone(),
            detector: DriftDetector::new(&cfg.detector),
            n_features,
            orf: orf.clone(),
            base_seed,
            recent: VecDeque::new(),
            accum: Vec::new(),
            stride: 1,
            seen: 0,
            drift_events: 0,
            rebuilds: 0,
        }
    }

    /// The loop configuration.
    pub fn config(&self) -> &AdaptConfig {
        &self.cfg
    }

    /// The embedded drift detector.
    pub fn detector(&self) -> &DriftDetector {
        &self.detector
    }

    /// Shifts declared so far.
    pub fn drift_events(&self) -> u64 {
        self.drift_events
    }

    /// Forests rebuilt so far (stays 0 under [`UpdatePolicy::NoUpdate`]).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Observe one sample released by the labeller (raw features + final
    /// label). Buffers it for future rebuilds and, for negatives — the
    /// provably healthy population the offline drift study samples — feeds
    /// the detector. Returns the [`DriftEvent`] when this update's check
    /// declares a shift.
    pub fn on_released(&mut self, features: &[f32], positive: bool) -> Option<DriftEvent> {
        self.recent.push_back((features.into(), positive));
        if self.recent.len() > self.cfg.replace_window {
            self.recent.pop_front();
        }
        if self.cfg.accum_cap > 0 && self.seen.is_multiple_of(self.stride) {
            self.accum.push((features.into(), positive));
            if self.accum.len() >= self.cfg.accum_cap {
                // Decimate: keep every other sample, halve the resolution.
                let mut keep = false;
                self.accum.retain(|_| {
                    keep = !keep;
                    keep
                });
                self.stride = self.stride.saturating_mul(2);
            }
        }
        self.seen += 1;

        if positive {
            return None;
        }
        let event = self.detector.update(features);
        if event.is_some() {
            self.drift_events += 1;
        }
        event
    }

    /// Execute the update policy after a drift event: train a replacement
    /// forest from the buffered history through the *current* scaler.
    /// Returns `None` under [`UpdatePolicy::NoUpdate`] (and when the
    /// selected buffer is still empty).
    pub fn rebuild(&mut self, scaler: &OnlineMinMax) -> Option<OnlineRandomForest> {
        let buffer: Vec<(Box<[f32]>, bool)> = match self.cfg.policy {
            UpdatePolicy::NoUpdate => return None,
            UpdatePolicy::Replace => self.recent.iter().cloned().collect(),
            UpdatePolicy::Accumulate => self.accum.clone(),
        };
        if buffer.is_empty() {
            return None;
        }
        // Fresh deterministic RNG stream per rebuild: same history, same
        // scaler, same rebuild ordinal → bit-identical forest everywhere.
        let seed = self
            .base_seed
            .wrapping_add((self.rebuilds + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut forest = OnlineRandomForest::new(self.n_features, self.orf.clone(), seed);
        let mut scratch = vec![0.0f32; self.n_features];
        for (row, positive) in &buffer {
            scaler.transform_into(row, &mut scratch);
            forest.update(&scratch, *positive);
        }
        self.rebuilds += 1;
        Some(forest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(policy: UpdatePolicy) -> AdaptConfig {
        let mut c = AdaptConfig::new(policy, vec![0]);
        c.detector.window = 64;
        c.detector.check_every = 16;
        c.detector.z_threshold = 5.0;
        c.replace_window = 256;
        c.accum_cap = 128;
        c
    }

    fn orf() -> OrfConfig {
        OrfConfig {
            n_trees: 5,
            n_tests: 10,
            min_parent_size: 10.0,
            ..Default::default()
        }
    }

    /// Drive `n` released negatives with mean `base` through the loop.
    fn drive(state: &mut AdaptiveState, n: u32, base: f32, salt: u32) -> Vec<DriftEvent> {
        let mut events = Vec::new();
        for i in 0..n {
            let jitter = ((i.wrapping_mul(2_654_435_761).wrapping_add(salt)) % 97) as f32 / 970.0;
            let row = [base + jitter, 1.0];
            if let Some(ev) = state.on_released(&row, false) {
                events.push(ev);
            }
        }
        events
    }

    #[test]
    fn policy_parsing_roundtrips() {
        for p in [
            UpdatePolicy::NoUpdate,
            UpdatePolicy::Replace,
            UpdatePolicy::Accumulate,
        ] {
            assert_eq!(UpdatePolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(UpdatePolicy::parse("nonsense"), None);
    }

    #[test]
    fn drift_fires_and_replace_builds_a_forest() {
        let mut state = AdaptiveState::new(&cfg(UpdatePolicy::Replace), 2, &orf(), 9);
        assert!(drive(&mut state, 200, 0.2, 1).is_empty(), "stationary");
        let events = drive(&mut state, 200, 8.0, 2);
        assert_eq!(events.len(), 1, "regime change fires once");
        assert_eq!(state.drift_events(), 1);

        let scaler = OnlineMinMax::new_log1p(&[0, 1]);
        let forest = state.rebuild(&scaler).expect("replace builds");
        assert!(forest.samples_seen() > 0);
        assert_eq!(state.rebuilds(), 1);
    }

    #[test]
    fn no_update_counts_but_never_rebuilds() {
        let mut state = AdaptiveState::new(&cfg(UpdatePolicy::NoUpdate), 2, &orf(), 9);
        drive(&mut state, 200, 0.2, 1);
        let events = drive(&mut state, 200, 8.0, 2);
        assert_eq!(events.len(), 1);
        let scaler = OnlineMinMax::new_log1p(&[0, 1]);
        assert!(state.rebuild(&scaler).is_none());
        assert_eq!(state.rebuilds(), 0);
    }

    #[test]
    fn accumulation_buffer_decimates_deterministically() {
        let mut state = AdaptiveState::new(&cfg(UpdatePolicy::Accumulate), 2, &orf(), 9);
        drive(&mut state, 1_000, 0.5, 3);
        assert!(state.accum.len() < 128, "cap respected via decimation");
        assert!(state.stride > 1, "stride doubled at least once");

        // Bit-determinism: an identical second run agrees exactly.
        let mut state2 = AdaptiveState::new(&cfg(UpdatePolicy::Accumulate), 2, &orf(), 9);
        drive(&mut state2, 1_000, 0.5, 3);
        assert_eq!(
            serde_json::to_string(&state).unwrap(),
            serde_json::to_string(&state2).unwrap()
        );
    }

    #[test]
    fn rebuilds_are_reproducible_across_a_serde_roundtrip() {
        let mut state = AdaptiveState::new(&cfg(UpdatePolicy::Replace), 2, &orf(), 9);
        drive(&mut state, 200, 0.2, 1);
        drive(&mut state, 200, 8.0, 2);

        let mut copy: AdaptiveState =
            serde_json::from_str(&serde_json::to_string(&state).unwrap()).unwrap();
        let mut scaler = OnlineMinMax::new_log1p(&[0, 1]);
        scaler.update(&[3.0, 1.0]);
        let a = state.rebuild(&scaler).expect("a");
        let b = copy.rebuild(&scaler).expect("b");
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "rebuild must be a pure function of (state, scaler)"
        );
    }
}
