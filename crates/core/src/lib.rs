//! Online Random Forests for disk failure prediction — the paper's core
//! contribution (§3, Algorithms 1 and 2).
//!
//! * [`tree::OnlineTree`] — a decision tree grown on-the-fly: each unsplit
//!   leaf keeps a pool of `N` random threshold tests with streaming class
//!   statistics and splits once it has seen `MinParentSize` (α) samples and
//!   some test reaches `MinGain` (β) of Gini improvement (Eq. 1–2);
//! * [`forest::OnlineRandomForest`] — Algorithm 1: online bagging where each
//!   arriving sample updates each tree `k ~ Poisson(λ)` times, with the
//!   paper's imbalance correction `λp`/`λn` (Eq. 3); out-of-bag samples
//!   (`k = 0`) feed a per-tree OOBE estimate, and trees that are old and
//!   inaccurate (`OOBE > θ_OOBE ∧ AGE > θ_AGE`) are discarded and regrown —
//!   the unlearning mechanism that defeats model aging;
//! * [`labeller::OnlineLabeller`] — the automatic online label method
//!   (Figure 1): per-disk queues of recent unlabelled samples, flushed as
//!   positives when the disk fails and aged out as negatives otherwise;
//! * [`online::OnlinePredictor`] — Algorithm 2 end-to-end: labeller +
//!   streaming min–max scaler + ORF + alarm threshold, consuming the fleet
//!   event stream directly (optionally through the `orfpred-prep`
//!   preprocessing stage);
//! * [`adapt::AdaptiveState`] — drift-triggered closed-loop adaptation:
//!   a windowed detector over the released healthy population plus a
//!   configurable long-term update policy (no-update / replace /
//!   accumulate) that rebuilds the forest deterministically.

#![warn(missing_docs)]

pub mod adapt;
pub mod config;
pub mod forest;
pub mod labeller;
pub mod online;
pub mod tree;

pub use adapt::{AdaptConfig, AdaptiveState, UpdatePolicy};
pub use config::OrfConfig;
pub use forest::OnlineRandomForest;
pub use labeller::{OnlineLabeller, ReleasedSample};
pub use online::{Alarm, OnlinePredictor, OnlinePredictorConfig};
pub use tree::OnlineTree;
