//! The automatic online label method (§3.2, Figure 1).
//!
//! In online operation the true status of a disk is unknown at sample time:
//! a disk may fail a few days after reporting a perfectly healthy-looking
//! snapshot. The paper's rule: keep each disk's most recent `W` samples in
//! a fixed-length queue, *unlabelled*. Then:
//!
//! * when a **new sample** arrives and the queue is full, the oldest queued
//!   sample is at least `W` days old — the disk demonstrably survived the
//!   prediction window after reporting it — so it is released as
//!   **negative**;
//! * when the **disk fails**, everything still queued was reported within
//!   the window before death, so it is all released as **positive**.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// A sample the labeller has released with a definitive label.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReleasedSample {
    /// Disk the sample came from.
    pub disk_id: u32,
    /// Day the sample was collected.
    pub day: u16,
    /// The (unscaled) feature row, exactly as observed.
    pub features: Box<[f32]>,
    /// `true` = the disk failed within the window after this sample.
    pub positive: bool,
}

/// A queued (day, features) sample awaiting its label.
type PendingSample = (u16, Box<[f32]>);

/// Per-disk fixed-length queues of unlabelled samples.
///
/// ```
/// use orfpred_core::OnlineLabeller;
///
/// let mut labeller = OnlineLabeller::new(7);
/// // Seven days of samples for disk 3: everything stays unlabelled.
/// for day in 0..7 {
///     assert!(labeller.observe_sample(3, day, &[1.0]).is_none());
/// }
/// // Day 7: the day-0 sample has provably survived the window → negative.
/// let aged_out = labeller.observe_sample(3, 7, &[1.0]).unwrap();
/// assert!(!aged_out.positive);
/// assert_eq!(aged_out.day, 0);
/// // The disk fails: everything still queued becomes positive.
/// let flushed = labeller.observe_failure(3);
/// assert_eq!(flushed.len(), 7);
/// assert!(flushed.iter().all(|s| s.positive));
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OnlineLabeller {
    window: usize,
    // BTreeMap, not HashMap: `absorb`/`split_by` iterate the queues and
    // the serialized form feeds checkpoint bytes, so iteration order must
    // not depend on the per-process hasher seed.
    queues: BTreeMap<u32, VecDeque<PendingSample>>,
}

impl OnlineLabeller {
    /// New labeller with queue length `window` (the paper's prediction
    /// horizon, 7 days).
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must hold at least one sample");
        Self {
            window,
            queues: BTreeMap::new(),
        }
    }

    /// Enqueue a freshly collected sample. If the disk's queue was full,
    /// the aged-out oldest sample is returned, labelled negative.
    pub fn observe_sample(
        &mut self,
        disk_id: u32,
        day: u16,
        features: &[f32],
    ) -> Option<ReleasedSample> {
        let queue = self.queues.entry(disk_id).or_default();
        let released = if queue.len() >= self.window {
            queue
                .pop_front()
                .map(|(old_day, old_features)| ReleasedSample {
                    disk_id,
                    day: old_day,
                    features: old_features,
                    positive: false,
                })
        } else {
            None
        };
        queue.push_back((day, features.into()));
        released
    }

    /// The disk failed: all queued samples are released as positives (in
    /// chronological order) and the disk is forgotten (Algorithm 2 lines
    /// 2–8).
    pub fn observe_failure(&mut self, disk_id: u32) -> Vec<ReleasedSample> {
        let Some(queue) = self.queues.remove(&disk_id) else {
            return Vec::new();
        };
        queue
            .into_iter()
            .map(|(day, features)| ReleasedSample {
                disk_id,
                day,
                features,
                positive: true,
            })
            .collect()
    }

    /// The disk left the fleet without failing (decommissioned / end of
    /// observation). Its queued samples stay unlabelled and are dropped;
    /// returns how many were discarded.
    pub fn retire(&mut self, disk_id: u32) -> usize {
        self.queues.remove(&disk_id).map_or(0, |q| q.len())
    }

    /// Number of disks with queued samples.
    pub fn n_disks(&self) -> usize {
        self.queues.len()
    }

    /// Total samples currently held unlabelled.
    pub fn n_pending(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// Queue length bound `W`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Merge another labeller's queues into this one.
    ///
    /// Used by the serving engine to reassemble one global labeller from
    /// per-shard partitions at checkpoint time. The two labellers must have
    /// the same window and must track disjoint disk sets (each disk lives on
    /// exactly one shard), which `absorb` asserts.
    pub fn absorb(&mut self, other: OnlineLabeller) {
        assert_eq!(self.window, other.window, "labeller windows must agree");
        for (disk_id, queue) in other.queues {
            let prev = self.queues.insert(disk_id, queue);
            assert!(prev.is_none(), "disk {disk_id} queued on two labellers");
        }
    }

    /// Split into `n` labellers, routing each disk's queue with `route`
    /// (which must return a shard index `< n`).
    ///
    /// The inverse of [`OnlineLabeller::absorb`]: a restored checkpoint's
    /// global labeller is re-partitioned across the serving shards, which may
    /// be a different count than when the checkpoint was taken.
    pub fn split_by(self, n: usize, route: impl Fn(u32) -> usize) -> Vec<OnlineLabeller> {
        let mut parts: Vec<OnlineLabeller> = (0..n).map(|_| Self::new(self.window)).collect();
        for (disk_id, queue) in self.queues {
            parts[route(disk_id)].queues.insert(disk_id, queue);
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(v: f32) -> Vec<f32> {
        vec![v, v + 1.0]
    }

    #[test]
    fn nothing_released_until_queue_fills() {
        let mut l = OnlineLabeller::new(3);
        assert!(l.observe_sample(1, 0, &feat(0.0)).is_none());
        assert!(l.observe_sample(1, 1, &feat(1.0)).is_none());
        assert!(l.observe_sample(1, 2, &feat(2.0)).is_none());
        assert_eq!(l.n_pending(), 3);
        let out = l.observe_sample(1, 3, &feat(3.0)).expect("queue full");
        assert!(!out.positive);
        assert_eq!(out.day, 0, "oldest sample ages out first");
        assert_eq!(l.n_pending(), 3, "queue stays at window length");
    }

    #[test]
    fn failure_flushes_queue_as_positives_in_order() {
        let mut l = OnlineLabeller::new(7);
        for day in 0..5u16 {
            l.observe_sample(9, day, &feat(day as f32));
        }
        let pos = l.observe_failure(9);
        assert_eq!(pos.len(), 5);
        assert!(pos.iter().all(|s| s.positive && s.disk_id == 9));
        let days: Vec<u16> = pos.iter().map(|s| s.day).collect();
        assert_eq!(days, vec![0, 1, 2, 3, 4]);
        assert_eq!(l.n_disks(), 0, "failed disk forgotten");
    }

    #[test]
    fn a_sample_is_never_released_twice() {
        let mut l = OnlineLabeller::new(2);
        let mut released = Vec::new();
        for day in 0..10u16 {
            if let Some(s) = l.observe_sample(3, day, &feat(day as f32)) {
                released.push(s.day);
            }
        }
        released.extend(l.observe_failure(3).into_iter().map(|s| s.day));
        let mut sorted = released.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), released.len(), "duplicate release");
        assert_eq!(released.len(), 10, "every sample eventually labelled");
    }

    #[test]
    fn positives_only_come_from_failed_disks() {
        let mut l = OnlineLabeller::new(3);
        let mut all = Vec::new();
        for day in 0..20u16 {
            if let Some(s) = l.observe_sample(1, day, &feat(0.0)) {
                all.push(s);
            }
            if let Some(s) = l.observe_sample(2, day, &feat(1.0)) {
                all.push(s);
            }
        }
        all.extend(l.observe_failure(2));
        for s in &all {
            if s.positive {
                assert_eq!(s.disk_id, 2, "only disk 2 failed");
            }
        }
        assert!(all.iter().any(|s| s.positive));
        assert!(all.iter().any(|s| !s.positive && s.disk_id == 1));
    }

    #[test]
    fn retire_discards_pending_without_labels() {
        let mut l = OnlineLabeller::new(5);
        for day in 0..4u16 {
            l.observe_sample(7, day, &feat(0.0));
        }
        assert_eq!(l.retire(7), 4);
        assert_eq!(l.n_disks(), 0);
        assert_eq!(l.retire(7), 0, "idempotent");
        assert!(l.observe_failure(7).is_empty(), "nothing left to flush");
    }

    #[test]
    fn independent_disks_do_not_interfere() {
        let mut l = OnlineLabeller::new(2);
        l.observe_sample(1, 0, &feat(0.0));
        l.observe_sample(2, 0, &feat(9.0));
        l.observe_sample(1, 1, &feat(1.0));
        // Disk 1's queue is full; disk 2's is not.
        let out = l.observe_sample(1, 2, &feat(2.0)).unwrap();
        assert_eq!((out.disk_id, out.day), (1, 0));
        assert!(l.observe_sample(2, 1, &feat(9.5)).is_none());
        assert_eq!(l.n_disks(), 2);
    }

    #[test]
    fn features_survive_the_queue_unchanged() {
        let mut l = OnlineLabeller::new(1);
        l.observe_sample(4, 0, &[0.25, 0.5, 0.75]);
        let out = l.observe_sample(4, 1, &[0.0, 0.0, 0.0]).unwrap();
        assert_eq!(&*out.features, &[0.25, 0.5, 0.75]);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_is_rejected() {
        OnlineLabeller::new(0);
    }

    #[test]
    fn split_then_absorb_round_trips() {
        let mut l = OnlineLabeller::new(3);
        for disk in 0..10u32 {
            for day in 0..(disk as u16 % 4) {
                l.observe_sample(disk, day, &feat(f32::from(day)));
            }
        }
        let pending = l.n_pending();
        let n_disks = l.n_disks();
        let parts = l.split_by(4, |d| (d as usize) % 4);
        assert_eq!(
            parts.iter().map(OnlineLabeller::n_pending).sum::<usize>(),
            pending
        );
        let mut merged = OnlineLabeller::new(3);
        for p in parts {
            merged.absorb(p);
        }
        assert_eq!(merged.n_pending(), pending);
        assert_eq!(merged.n_disks(), n_disks);
        // Behaviour equivalence: the merged labeller releases the same
        // sample a never-split one with disk 3's history (days 0..3) would.
        let mut fresh = OnlineLabeller::new(3);
        for day in 0..3u16 {
            fresh.observe_sample(3, day, &feat(f32::from(day)));
        }
        assert_eq!(
            merged.observe_sample(3, 9, &feat(9.0)),
            fresh.observe_sample(3, 9, &feat(9.0)),
        );
    }

    #[test]
    #[should_panic(expected = "two labellers")]
    fn absorb_rejects_overlapping_disks() {
        let mut a = OnlineLabeller::new(2);
        a.observe_sample(1, 0, &feat(0.0));
        let mut b = OnlineLabeller::new(2);
        b.observe_sample(1, 0, &feat(1.0));
        a.absorb(b);
    }
}
