//! Algorithm 1: the Online Random Forest ensemble.
//!
//! Each arriving `(x, y)` updates every tree `k ~ Poisson(λp or λn)` times
//! (online bagging with the paper's imbalance correction, Eq. 3). A sample
//! with `k = 0` is *out of bag* for that tree and instead refreshes the
//! tree's OOBE estimate; trees that are both old (`AGE > θ_AGE`) and
//! inaccurate (`OOBE > θ_OOBE`) are discarded and regrown from scratch —
//! the temporal-forgetting mechanism that makes the model track a drifting
//! SMART distribution.
//!
//! Parallelism: trees are fully independent, so updates and predictions
//! fan out across trees with rayon. Every tree owns a private RNG stream
//! derived from the forest seed, which makes results **bit-identical for
//! any thread count** — the property the whole experiment suite leans on.

use crate::config::OrfConfig;
use crate::tree::OnlineTree;
use orfpred_util::dist::poisson;
use orfpred_util::stats::Ewma;
use orfpred_util::Xoshiro256pp;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One tree plus its bagging/decay bookkeeping.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct TreeSlot {
    tree: OnlineTree,
    rng: Xoshiro256pp,
    /// In-bag updates absorbed since (re)birth — `AGE_t`.
    age: u64,
    /// Class-balanced out-of-bag error components.
    oobe_pos: Ewma,
    oobe_neg: Ewma,
    /// How many times this slot has been regrown.
    generation: u32,
}

impl TreeSlot {
    fn new(n_features: usize, cfg: &OrfConfig, mut rng: Xoshiro256pp, generation: u32) -> Self {
        let tree = OnlineTree::new(n_features, cfg, &mut rng);
        Self {
            tree,
            rng,
            age: 0,
            // Start optimistic: a fresh tree should not be culled before it
            // has had a chance to learn (age gate also protects it).
            oobe_pos: Ewma::new(cfg.oobe_alpha, 0.0),
            oobe_neg: Ewma::new(cfg.oobe_alpha, 0.0),
            generation,
        }
    }

    /// Class-balanced OOBE: mean of the per-class error rates, so the flood
    /// of negatives cannot mask total blindness on positives.
    fn oobe(&self) -> f64 {
        if self.oobe_pos.count() == 0 {
            self.oobe_neg.value()
        } else {
            0.5 * (self.oobe_pos.value() + self.oobe_neg.value())
        }
    }

    /// Process one sample for this tree (Algorithm 1, lines 2–28).
    fn process(&mut self, x: &[f32], positive: bool, cfg: &OrfConfig) -> bool {
        let lambda = if positive {
            cfg.lambda_pos
        } else {
            cfg.lambda_neg
        };
        let k = poisson(&mut self.rng, lambda);
        if k > 0 {
            for _ in 0..k {
                self.tree.update(x, positive, cfg, &mut self.rng);
            }
            self.age += u64::from(k);
            false
        } else {
            // Out-of-bag: update OOBE and check the decay condition.
            let err = self.tree.predict(x) != positive;
            if positive {
                self.oobe_pos.push(f64::from(u8::from(err)));
            } else {
                self.oobe_neg.push(f64::from(u8::from(err)));
            }
            self.oobe() > cfg.oobe_threshold && self.age > cfg.age_threshold
        }
    }
}

/// The Online Random Forest.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OnlineRandomForest {
    slots: Vec<TreeSlot>,
    cfg: OrfConfig,
    n_features: usize,
    master: Xoshiro256pp,
    samples_seen: u64,
    trees_replaced: u64,
}

impl OnlineRandomForest {
    /// Build an empty forest over `n_features` scaled inputs.
    pub fn new(n_features: usize, cfg: OrfConfig, seed: u64) -> Self {
        cfg.validate();
        let master = Xoshiro256pp::seed_from_u64(seed);
        let slots = (0..cfg.n_trees)
            .map(|t| TreeSlot::new(n_features, &cfg, master.split(t as u64), 0))
            .collect();
        Self {
            slots,
            cfg,
            n_features,
            master,
            samples_seen: 0,
            trees_replaced: 0,
        }
    }

    /// Absorb one labelled sample (Algorithm 1 over all trees).
    pub fn update(&mut self, x: &[f32], positive: bool) {
        assert_eq!(x.len(), self.n_features, "feature dimension mismatch");
        self.samples_seen += 1;
        let cfg = &self.cfg;
        let mut replace: Vec<usize> = Vec::new();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.process(x, positive, cfg) {
                replace.push(i);
            }
        }
        self.replace_slots(&replace);
    }

    /// Absorb a batch, updating trees in parallel.
    ///
    /// Exactly equivalent to calling [`OnlineRandomForest::update`] per
    /// sample (per-tree RNG streams make tree work independent), except that
    /// tree replacement is deferred to batch boundaries — a tree flagged as
    /// decayed mid-batch finishes the batch before being regrown.
    pub fn update_batch(&mut self, batch: &[(&[f32], bool)]) {
        for (x, _) in batch {
            assert_eq!(x.len(), self.n_features, "feature dimension mismatch");
        }
        self.samples_seen += batch.len() as u64;
        let cfg = self.cfg.clone();
        let flagged: Vec<usize> = self
            .slots
            .par_iter_mut()
            .enumerate()
            .filter_map(|(i, slot)| {
                let mut decayed = false;
                for &(x, positive) in batch {
                    decayed |= slot.process(x, positive, &cfg);
                }
                decayed.then_some(i)
            })
            .collect();
        let mut flagged = flagged;
        flagged.sort_unstable();
        self.replace_slots(&flagged);
    }

    fn replace_slots(&mut self, indices: &[usize]) {
        for &i in indices {
            // Algorithm 1 line 26: discard and regrow. The replacement
            // stream id mixes slot and generation so regrown trees never
            // replay a previous tree's randomness.
            let generation = self.slots[i].generation + 1;
            let stream = (u64::from(generation)) << 32 | i as u64;
            self.slots[i] = TreeSlot::new(
                self.n_features,
                &self.cfg,
                self.master.split(stream),
                generation,
            );
            self.trees_replaced += 1;
        }
    }

    /// Ensemble score in `[0, 1]`: mean per-tree positive probability over
    /// mature trees (see [`OrfConfig::warmup_age`]); falls back to all trees
    /// while the forest is young.
    pub fn score(&self, x: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), self.n_features);
        let mature: Vec<&TreeSlot> = self
            .slots
            .iter()
            .filter(|s| s.age >= self.cfg.warmup_age)
            .collect();
        let pool: &[&TreeSlot] = if mature.is_empty() {
            &self.slots.iter().collect::<Vec<_>>()[..]
        } else {
            &mature[..]
        };
        let sum: f32 = pool.iter().map(|s| s.tree.score(x)).sum();
        sum / pool.len() as f32
    }

    /// Score many rows in parallel.
    pub fn score_batch(&self, rows: &[&[f32]]) -> Vec<f32> {
        rows.par_iter().map(|r| self.score(r)).collect()
    }

    /// Hard prediction at vote threshold `tau`.
    pub fn predict(&self, x: &[f32], tau: f32) -> bool {
        self.score(x) >= tau
    }

    /// Configuration in force.
    pub fn config(&self) -> &OrfConfig {
        &self.cfg
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Labelled samples absorbed.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Total trees discarded and regrown so far.
    pub fn trees_replaced(&self) -> u64 {
        self.trees_replaced
    }

    /// Normalized per-feature importances (mean weighted Gini decrease
    /// across trees; sums to 1 unless the forest has never split).
    pub fn importances(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_features];
        for s in &self.slots {
            s.tree.add_importances(&mut acc);
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for v in &mut acc {
                *v /= total;
            }
        }
        acc
    }

    /// Per-tree (age, OOBE, splits) diagnostics.
    pub fn tree_stats(&self) -> Vec<(u64, f64, usize)> {
        self.slots
            .iter()
            .map(|s| (s.age, s.oobe(), s.tree.n_splits()))
            .collect()
    }

    /// Approximate heap footprint of all candidate-test pools, in bytes —
    /// the growth state a [`freeze`](Self::freeze) discards.
    pub fn test_pool_bytes(&self) -> usize {
        self.slots.iter().map(|s| s.tree.test_pool_bytes()).sum()
    }

    /// Compile the current scoring ensemble into the flat
    /// [`orfpred_trees::FrozenForest`] representation.
    ///
    /// Captures exactly the pool [`Self::score`] would consult *right now*:
    /// mature trees (`age >= warmup_age`), or every tree while the forest is
    /// still young — in slot order, so frozen scores are bit-identical to
    /// live scores at the freeze point. Importances are accumulated over all
    /// slots, matching [`Self::importances`].
    pub fn freeze(&self) -> orfpred_trees::FrozenForest {
        let mut b = orfpred_trees::FrozenBuilder::new(self.n_features);
        let mature: Vec<&TreeSlot> = self
            .slots
            .iter()
            .filter(|s| s.age >= self.cfg.warmup_age)
            .collect();
        if mature.is_empty() {
            for s in &self.slots {
                s.tree.freeze_into(&mut b);
            }
        } else {
            for s in mature {
                s.tree.freeze_into(&mut b);
            }
        }
        let mut acc = vec![0.0; self.n_features];
        for s in &self.slots {
            s.tree.add_importances(&mut acc);
        }
        b.finish(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_fast() -> OrfConfig {
        OrfConfig {
            n_trees: 12,
            n_tests: 30,
            min_parent_size: 25.0,
            min_gain: 0.05,
            lambda_pos: 1.0,
            lambda_neg: 1.0, // balanced synthetic streams in these tests
            warmup_age: 10,
            ..OrfConfig::default()
        }
    }

    /// Balanced separable stream: positive iff x0 > 0.5.
    fn feed_separable(forest: &mut OnlineRandomForest, n: usize, seed: u64) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..n {
            let x = [rng.next_f32(), rng.next_f32()];
            forest.update(&x, x[0] > 0.5);
        }
    }

    #[test]
    fn learns_separable_stream() {
        let mut f = OnlineRandomForest::new(2, cfg_fast(), 42);
        feed_separable(&mut f, 3_000, 7);
        assert!(
            f.score(&[0.9, 0.5]) > 0.8,
            "pos score {}",
            f.score(&[0.9, 0.5])
        );
        assert!(
            f.score(&[0.1, 0.5]) < 0.2,
            "neg score {}",
            f.score(&[0.1, 0.5])
        );
        assert_eq!(f.samples_seen(), 3_000);
    }

    #[test]
    fn update_and_update_batch_agree_exactly() {
        let mut a = OnlineRandomForest::new(2, cfg_fast(), 1);
        let mut b = OnlineRandomForest::new(2, cfg_fast(), 1);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let data: Vec<([f32; 2], bool)> = (0..800)
            .map(|_| {
                let x = [rng.next_f32(), rng.next_f32()];
                (x, x[0] > 0.5)
            })
            .collect();
        for (x, y) in &data {
            a.update(x, *y);
        }
        let batch: Vec<(&[f32], bool)> = data.iter().map(|(x, y)| (x.as_slice(), *y)).collect();
        b.update_batch(&batch);
        for probe in [[0.2f32, 0.6], [0.8, 0.1], [0.5, 0.5], [0.42, 0.99]] {
            assert_eq!(a.score(&probe), b.score(&probe), "probe {probe:?}");
        }
    }

    #[test]
    fn batch_updates_deterministic_across_thread_counts() {
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                let mut f = OnlineRandomForest::new(2, cfg_fast(), 5);
                let mut rng = Xoshiro256pp::seed_from_u64(6);
                let data: Vec<([f32; 2], bool)> = (0..600)
                    .map(|_| {
                        let x = [rng.next_f32(), rng.next_f32()];
                        (x, x[1] > 0.3)
                    })
                    .collect();
                let batch: Vec<(&[f32], bool)> =
                    data.iter().map(|(x, y)| (x.as_slice(), *y)).collect();
                f.update_batch(&batch);
                f.score(&[0.25, 0.75])
            })
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn scores_stay_in_unit_interval() {
        let mut f = OnlineRandomForest::new(2, cfg_fast(), 9);
        feed_separable(&mut f, 500, 10);
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        for _ in 0..200 {
            let s = f.score(&[rng.next_f32(), rng.next_f32()]);
            assert!((0.0..=1.0).contains(&s), "score {s}");
        }
    }

    #[test]
    fn small_lambda_neg_slows_negative_consumption() {
        // With λn = 0.01 a tree takes a negative sample in-bag only ~1% of
        // the time; ages should reflect mostly positive updates.
        let cfg = OrfConfig {
            lambda_neg: 0.01,
            ..cfg_fast()
        };
        let mut f = OnlineRandomForest::new(1, cfg, 2);
        for i in 0..1_000 {
            // 1 positive per 100 negatives, like disk data.
            f.update(&[0.5], i % 100 == 0);
        }
        let total_age: u64 = f.tree_stats().iter().map(|(a, _, _)| a).sum();
        // Expected in-bag updates per tree: 10 positives · 1 + 990 · 0.01 ≈ 20.
        let per_tree = total_age as f64 / 12.0;
        assert!(
            (5.0..60.0).contains(&per_tree),
            "per-tree in-bag updates {per_tree}"
        );
    }

    #[test]
    fn drift_triggers_tree_replacement() {
        let cfg = OrfConfig {
            age_threshold: 100,
            oobe_threshold: 0.35,
            oobe_alpha: 0.02,
            ..cfg_fast()
        };
        let mut f = OnlineRandomForest::new(1, cfg, 3);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        // Phase 1: positive iff x > 0.5.
        for _ in 0..2_000 {
            let v = rng.next_f32();
            f.update(&[v], v > 0.5);
        }
        assert_eq!(f.trees_replaced(), 0, "no decay on a stationary stream");
        // Phase 2: concept flips — old trees become systematically wrong.
        for _ in 0..4_000 {
            let v = rng.next_f32();
            f.update(&[v], v <= 0.5);
        }
        assert!(
            f.trees_replaced() > 0,
            "flipped concept must replace trees (stats {:?})",
            f.tree_stats()
        );
        // And the forest must have adapted to the new concept.
        assert!(f.score(&[0.1]) > 0.6, "adapted score {}", f.score(&[0.1]));
        assert!(f.score(&[0.9]) < 0.4, "adapted score {}", f.score(&[0.9]));
    }

    #[test]
    fn stationary_stream_keeps_trees() {
        let mut f = OnlineRandomForest::new(2, cfg_fast(), 12);
        feed_separable(&mut f, 5_000, 13);
        assert_eq!(
            f.trees_replaced(),
            0,
            "good trees on stationary data must survive"
        );
    }

    #[test]
    fn importances_identify_the_informative_feature() {
        let mut f = OnlineRandomForest::new(2, cfg_fast(), 77);
        feed_separable(&mut f, 4_000, 78); // label = x0 > 0.5
        let imp = f.importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9, "normalized");
        assert!(imp[0] > 0.7, "feature 0 carries the signal: {imp:?}");
    }

    #[test]
    fn frozen_forest_matches_live_scores_bitwise() {
        let mut f = OnlineRandomForest::new(2, cfg_fast(), 21);
        // Young forest: no tree has reached warmup_age, so both live and
        // frozen scoring must fall back to the full slot set.
        let young = f.freeze();
        assert_eq!(young.n_trees(), 12);
        feed_separable(&mut f, 2_000, 22);
        let frozen = f.freeze();
        assert_eq!(frozen.importances(), &f.importances()[..]);
        let mut rng = Xoshiro256pp::seed_from_u64(23);
        for _ in 0..200 {
            let probe = [rng.next_f32(), rng.next_f32()];
            assert_eq!(
                frozen.score(&probe).to_bits(),
                f.score(&probe).to_bits(),
                "probe {probe:?}"
            );
        }
        assert!(f.test_pool_bytes() > 0);
        assert!(frozen.memory_bytes() < f.test_pool_bytes());
    }

    #[test]
    fn serde_round_trip_preserves_future_behaviour() {
        let mut a = OnlineRandomForest::new(2, cfg_fast(), 5);
        feed_separable(&mut a, 500, 6);
        let blob = serde_json::to_vec(&a).unwrap();
        let mut b: OnlineRandomForest = serde_json::from_slice(&blob).unwrap();
        // Updating both with the same continuation keeps them identical —
        // the RNG streams are part of the state.
        feed_separable(&mut a, 200, 9);
        feed_separable(&mut b, 200, 9);
        assert_eq!(a.score(&[0.3, 0.3]), b.score(&[0.3, 0.3]));
        assert_eq!(a.trees_replaced(), b.trees_replaced());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn update_rejects_wrong_dimension() {
        let mut f = OnlineRandomForest::new(3, cfg_fast(), 1);
        f.update(&[0.0, 1.0], true);
    }
}
