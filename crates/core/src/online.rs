//! Algorithm 2 end-to-end: the deployable online predictor.
//!
//! Consumes the chronological fleet event stream. For every arriving SMART
//! snapshot it (1) widens the streaming min–max scaler, (2) lets the
//! [`OnlineLabeller`] release any sample whose label has become certain and
//! feeds those to the ORF, and (3) scores the fresh snapshot, raising an
//! [`Alarm`] when the ensemble vote crosses the alarm threshold ("immediate
//! data migration is recommended", Algorithm 2 line 20). Disk failures
//! flush that disk's queue as positive training data.
//!
//! No offline retraining ever happens — this is the paper's headline
//! property.

use crate::adapt::{AdaptConfig, AdaptiveState};
use crate::config::OrfConfig;
use crate::forest::OnlineRandomForest;
use crate::labeller::OnlineLabeller;
use orfpred_prep::{PrepConfig, Preprocessor};
use orfpred_smart::gen::FleetEvent;
use orfpred_smart::record::DiskDay;
use orfpred_smart::scale::OnlineMinMax;
use orfpred_smart::{DomainSchema, WindowStage};
use serde::{Deserialize, Serialize};

/// Configuration of the online predictor.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OnlinePredictorConfig {
    /// ORF hyper-parameters.
    pub orf: OrfConfig,
    /// Prediction window `W` in days (queue length; the paper fixes 7).
    pub window_days: usize,
    /// Ensemble vote threshold above which an alarm is raised.
    pub alarm_threshold: f32,
    /// Columns of the full feature row used as model inputs (typically the
    /// Table 2 selection for SMART). Indices may point at base *or*
    /// derived (windowed) columns of the domain schema.
    pub feature_cols: Vec<usize>,
    /// Seed for the forest's RNG streams.
    pub seed: u64,
    /// Optional preprocessing stage applied to events entering through
    /// [`OnlinePredictor::observe`] (imputation, dedup, stuck-at,
    /// survival re-checks). `None` feeds events to the labeller verbatim.
    pub prep: Option<PrepConfig>,
    /// Optional drift-triggered closed-loop adaptation. `None` keeps the
    /// paper's pure-ORF behaviour.
    pub adapt: Option<AdaptConfig>,
    /// Telemetry domain the pipeline runs on. `None` (and every config
    /// serialized before the field existed) means the implicit SMART
    /// domain with an empty derived plan — bit-exact with the pre-schema
    /// pipeline. A schema with a non-empty derived plan enables the
    /// sliding-window feature stage between prep and the labeller.
    pub domain: Option<DomainSchema>,
}

impl OnlinePredictorConfig {
    /// Default configuration over the given feature columns.
    pub fn new(feature_cols: Vec<usize>, seed: u64) -> Self {
        Self {
            orf: OrfConfig::default(),
            window_days: 7,
            alarm_threshold: 0.5,
            feature_cols,
            seed,
            prep: None,
            adapt: None,
            domain: None,
        }
    }

    /// Default configuration for an explicit telemetry domain.
    pub fn for_domain(schema: DomainSchema, feature_cols: Vec<usize>, seed: u64) -> Self {
        let mut cfg = Self::new(feature_cols, seed);
        cfg.domain = Some(schema);
        cfg
    }

    /// The resolved domain schema (`None` ⇒ implicit SMART).
    pub fn domain_schema(&self) -> DomainSchema {
        self.domain.clone().unwrap_or_else(DomainSchema::smart)
    }

    /// A window stage for this config's derived plan; `None` when the plan
    /// is empty (the stage would be a strict no-op).
    pub fn window_stage(&self) -> Option<WindowStage> {
        let stage = WindowStage::new(&self.domain_schema());
        if stage.is_noop() {
            None
        } else {
            Some(stage)
        }
    }
}

/// A raised at-risk alarm.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// Disk predicted to fail within the window.
    pub disk_id: u32,
    /// Day the alarm fired.
    pub day: u16,
    /// Ensemble score that triggered it.
    pub score: f32,
}

/// The deployable Algorithm 2 pipeline.
///
/// Serializable: a running deployment can be checkpointed (labeller queues,
/// scaler bounds, forest state, RNG streams) and restored bit-exactly.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OnlinePredictor {
    labeller: OnlineLabeller,
    scaler: OnlineMinMax,
    forest: OnlineRandomForest,
    alarm_threshold: f32,
    scratch: Vec<f32>,
    alarms_raised: u64,
    prep: Option<Preprocessor>,
    adaptive: Option<AdaptiveState>,
    /// Sliding-window derived-feature stage (schema-driven); `None` for
    /// domains with an empty derived plan, which also keeps checkpoints
    /// written before the field existed loading unchanged.
    window: Option<WindowStage>,
}

impl OnlinePredictor {
    /// Build the pipeline.
    pub fn new(cfg: &OnlinePredictorConfig) -> Self {
        let n = cfg.feature_cols.len();
        assert!(n > 0, "need at least one feature column");
        Self {
            labeller: OnlineLabeller::new(cfg.window_days),
            scaler: OnlineMinMax::new_log1p(&cfg.feature_cols),
            forest: OnlineRandomForest::new(n, cfg.orf.clone(), cfg.seed),
            alarm_threshold: cfg.alarm_threshold,
            scratch: vec![0.0; n],
            alarms_raised: 0,
            prep: cfg.prep.as_ref().map(Preprocessor::new),
            adaptive: cfg
                .adapt
                .as_ref()
                .map(|a| AdaptiveState::new(a, n, &cfg.orf, cfg.seed)),
            window: cfg.window_stage(),
        }
    }

    /// Process one fleet event; returns an alarm if the fresh sample looks
    /// at-risk.
    ///
    /// This is the *raw ingest* entry point: when a preprocessing stage is
    /// configured the event runs through it first and the pipeline sees
    /// only what prep emits (a dropped sample never touches the labeller;
    /// a held failure commits later). The snapshot-level APIs
    /// ([`Self::observe_sample`], [`Self::observe_failure`]) are the
    /// post-prep entry points and bypass the stage.
    pub fn observe(&mut self, event: &FleetEvent) -> Option<Alarm> {
        let Some(mut prep) = self.prep.take() else {
            return self.observe_prepped(event);
        };
        let mut buf = Vec::new();
        prep.observe(event, &mut buf);
        let mut alarm = None;
        for ev in &buf {
            alarm = self.observe_prepped(ev).or(alarm);
        }
        self.prep = Some(prep);
        alarm
    }

    /// End of stream: flush failures still held by the preprocessing
    /// stage's survival re-check (no-op without prep or pending holds).
    pub fn finish(&mut self) {
        let Some(mut prep) = self.prep.take() else {
            return;
        };
        let mut buf = Vec::new();
        prep.finish(&mut buf);
        for ev in &buf {
            self.observe_prepped(ev);
        }
        self.prep = Some(prep);
    }

    /// Dispatch one already-preprocessed event.
    fn observe_prepped(&mut self, event: &FleetEvent) -> Option<Alarm> {
        match event {
            FleetEvent::Sample(rec) => self.observe_sample(rec),
            FleetEvent::Failure { disk_id, .. } => {
                self.observe_failure(*disk_id);
                None
            }
        }
    }

    /// Process one SMART snapshot (Algorithm 2 lines 10–22).
    pub fn observe_sample(&mut self, rec: &DiskDay) -> Option<Alarm> {
        self.observe_sample_scored(rec).1
    }

    /// Like [`OnlinePredictor::observe_sample`], but also returns the score
    /// the model assigned to the fresh sample (evaluation harnesses record
    /// every causal score, alarm or not).
    ///
    /// When the domain schema has a non-empty derived plan, the window
    /// stage extends the base row here — after prep, before the labeller —
    /// so the labeller queues, the scaler, and the forest all see
    /// full-width rows. With an empty plan the row passes through
    /// untouched (the SMART bit-exactness pin).
    pub fn observe_sample_scored(&mut self, rec: &DiskDay) -> (f32, Option<Alarm>) {
        if let Some(w) = self.window.as_mut() {
            let mut features = rec.features.clone();
            w.extend(rec.disk_id, &mut features);
            let extended = DiskDay {
                disk_id: rec.disk_id,
                day: rec.day,
                features,
            };
            return self.observe_extended(&extended);
        }
        self.observe_extended(rec)
    }

    /// Algorithm 2 lines 10–22 on a row already at full feature width.
    fn observe_extended(&mut self, rec: &DiskDay) -> (f32, Option<Alarm>) {
        // The scaler only ever widens, so updating it before training keeps
        // past and future transforms consistent.
        self.scaler.update(&rec.features);

        // Model update phase: train on whatever just became labelled.
        if let Some(released) = self
            .labeller
            .observe_sample(rec.disk_id, rec.day, &rec.features)
        {
            self.scaler
                .transform_into(&released.features, &mut self.scratch);
            self.forest.update(&self.scratch, released.positive);
            self.adapt_on_released(&released.features, released.positive);
        }

        // Prediction phase on the fresh (still unlabelled) sample.
        let score = self.score_row(&rec.features);
        let alarm = if score >= self.alarm_threshold {
            self.alarms_raised += 1;
            Some(Alarm {
                disk_id: rec.disk_id,
                day: rec.day,
                score,
            })
        } else {
            None
        };
        (score, alarm)
    }

    /// Process a disk failure (Algorithm 2 lines 2–8): flush its queue as
    /// positive training samples.
    pub fn observe_failure(&mut self, disk_id: u32) {
        for released in self.labeller.observe_failure(disk_id) {
            self.scaler
                .transform_into(&released.features, &mut self.scratch);
            self.forest.update(&self.scratch, true);
            self.adapt_on_released(&released.features, true);
        }
        // The disk is gone; its window history can never be extended again.
        if let Some(w) = self.window.as_mut() {
            w.forget(disk_id);
        }
    }

    /// Feed one labeller release to the adaptation loop; on a drift event
    /// the update policy may swap in a rebuilt forest. Must run at the
    /// same per-release points in serial replay and in the serve engine's
    /// writer thread, or the two diverge.
    fn adapt_on_released(&mut self, features: &[f32], positive: bool) {
        let Some(adaptive) = self.adaptive.as_mut() else {
            return;
        };
        if adaptive.on_released(features, positive).is_some() {
            if let Some(forest) = adaptive.rebuild(&self.scaler) {
                self.forest = forest;
            }
        }
    }

    /// Score a full-width feature row with the current model (no state
    /// change). For a domain with derived columns the caller supplies them
    /// (e.g. via [`WindowStage::extend_records`] offline); stateless probes
    /// may zero-pad.
    pub fn score_row(&self, features: &[f32]) -> f32 {
        let mut scaled = vec![0.0f32; self.scaler.n_outputs()];
        self.scaler.transform_into(features, &mut scaled);
        self.forest.score(&scaled)
    }

    /// Change the alarm operating point.
    pub fn set_alarm_threshold(&mut self, tau: f32) {
        self.alarm_threshold = tau;
    }

    /// Current alarm operating point.
    pub fn alarm_threshold(&self) -> f32 {
        self.alarm_threshold
    }

    /// The underlying forest (diagnostics / evaluation).
    pub fn forest(&self) -> &OnlineRandomForest {
        &self.forest
    }

    /// The labeller (diagnostics).
    pub fn labeller(&self) -> &OnlineLabeller {
        &self.labeller
    }

    /// Streaming scaler (diagnostics).
    pub fn scaler(&self) -> &OnlineMinMax {
        &self.scaler
    }

    /// Total alarms raised so far.
    pub fn alarms_raised(&self) -> u64 {
        self.alarms_raised
    }

    /// The preprocessing stage, when configured (counters / diagnostics).
    pub fn prep(&self) -> Option<&Preprocessor> {
        self.prep.as_ref()
    }

    /// The adaptation loop, when configured (counters / diagnostics).
    pub fn adaptive(&self) -> Option<&AdaptiveState> {
        self.adaptive.as_ref()
    }

    /// The window stage, when the domain's derived plan is non-empty
    /// (counters / diagnostics).
    pub fn window(&self) -> Option<&WindowStage> {
        self.window.as_ref()
    }

    /// Freeze the current model state for batch scoring: the compiled
    /// forest plus a copy of the streaming scaler. Scoring a raw row with
    /// the pair is bit-identical to [`Self::score_row`] at the freeze point.
    pub fn freeze(&self) -> (orfpred_trees::FrozenForest, OnlineMinMax) {
        (self.forest.freeze(), self.scaler.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_smart::attrs::{feature_index, FeatureKind, N_FEATURES};

    fn cols() -> Vec<usize> {
        vec![
            feature_index(187, FeatureKind::Raw).unwrap(),
            feature_index(197, FeatureKind::Raw).unwrap(),
            feature_index(5, FeatureKind::Raw).unwrap(),
        ]
    }

    fn cfg() -> OnlinePredictorConfig {
        let mut c = OnlinePredictorConfig::new(cols(), 77);
        c.orf.n_trees = 10;
        c.orf.n_tests = 30;
        c.orf.min_parent_size = 20.0;
        c.orf.min_gain = 0.02;
        c.orf.lambda_neg = 0.1;
        c.orf.warmup_age = 5;
        c
    }

    fn rec(disk_id: u32, day: u16, err: f32) -> DiskDay {
        let mut features = vec![0.0f32; N_FEATURES];
        for &c in &cols() {
            features[c] = err;
        }
        DiskDay {
            disk_id,
            day,
            features,
        }
    }

    /// Healthy disks report ~0 errors; dying disks ramp up for their last
    /// week. Returns (predictor, last trained day).
    fn train_stream(p: &mut OnlinePredictor, n_disks: u32, days: u16) {
        for day in 0..days {
            for disk in 0..n_disks {
                // Every 10th disk dies at day = 40 + disk, with a ramp.
                let dies_at = if disk % 10 == 0 {
                    40 + disk as u16
                } else {
                    u16::MAX
                };
                if day > dies_at {
                    continue;
                }
                let err = if dies_at != u16::MAX && day + 7 > dies_at {
                    20.0 + f32::from(day + 7 - dies_at)
                } else {
                    0.0
                };
                p.observe_sample(&rec(disk, day, err));
                if day == dies_at {
                    p.observe_failure(disk);
                }
            }
        }
    }

    #[test]
    fn pipeline_learns_to_separate_ramps_from_healthy() {
        let mut p = OnlinePredictor::new(&cfg());
        train_stream(&mut p, 50, 120);
        assert!(p.forest().samples_seen() > 1_000, "forest was fed");
        let healthy = p.score_row(&rec(999, 0, 0.0).features);
        let dying = p.score_row(&rec(999, 0, 25.0).features);
        assert!(dying > healthy + 0.3, "dying {dying} vs healthy {healthy}");
    }

    #[test]
    fn alarms_fire_on_risky_samples_only() {
        let mut p = OnlinePredictor::new(&cfg());
        train_stream(&mut p, 50, 120);
        p.set_alarm_threshold(0.5);
        let a = p.observe_sample(&rec(500, 121, 25.0));
        assert!(a.is_some(), "ramping disk must alarm");
        let a = a.unwrap();
        assert_eq!(a.disk_id, 500);
        assert!(a.score >= 0.5);
        let none = p.observe_sample(&rec(501, 121, 0.0));
        assert!(none.is_none(), "healthy disk must stay silent");
        assert!(p.alarms_raised() >= 1);
    }

    #[test]
    fn failure_without_samples_is_harmless() {
        let mut p = OnlinePredictor::new(&cfg());
        p.observe_failure(12345);
        assert_eq!(p.forest().samples_seen(), 0);
    }

    #[test]
    fn observe_dispatches_both_event_kinds() {
        let mut p = OnlinePredictor::new(&cfg());
        let r = rec(1, 0, 0.0);
        assert!(p.observe(&FleetEvent::Sample(r)).is_none());
        assert_eq!(p.labeller().n_pending(), 1);
        p.observe(&FleetEvent::Failure { disk_id: 1, day: 0 });
        assert_eq!(p.labeller().n_pending(), 0);
        assert_eq!(
            p.forest().samples_seen(),
            1,
            "queued sample trained as positive"
        );
    }

    #[test]
    fn checkpoint_restore_resumes_bit_exactly() {
        let mut p = OnlinePredictor::new(&cfg());
        train_stream(&mut p, 30, 80);
        let checkpoint = serde_json::to_string(&p).expect("checkpoint");
        let mut restored: OnlinePredictor = serde_json::from_str(&checkpoint).expect("restore");
        // Continue both pipelines identically: same updates, same scores.
        for day in 80..120u16 {
            for disk in 0..30u32 {
                let r = rec(disk, day, if disk % 7 == 0 { 10.0 } else { 0.0 });
                let a = p.observe_sample(&r);
                let b = restored.observe_sample(&r);
                assert_eq!(a, b, "divergence at day {day} disk {disk}");
            }
        }
        assert_eq!(p.forest().samples_seen(), restored.forest().samples_seen());
    }

    #[test]
    fn windowed_domain_extends_rows_and_checkpoints_bit_exactly() {
        // An mce-domain config whose feature columns include derived
        // (windowed) indices; the predictor must extend rows internally.
        let schema = DomainSchema::mce();
        let n_base = schema.n_base_features();
        let cols = vec![1usize, 3, n_base, n_base + 1]; // two base, two derived
        let mut c = OnlinePredictorConfig::for_domain(schema.clone(), cols, 41);
        c.orf.n_trees = 5;
        c.orf.n_tests = 10;
        c.orf.min_parent_size = 10.0;
        c.orf.min_gain = 0.0;
        c.orf.warmup_age = 0;
        let mut p = OnlinePredictor::new(&c);
        assert!(p.window().is_some(), "mce derived plan enables the stage");

        let mce_rec = |disk: u32, day: u16, v: f32| DiskDay {
            disk_id: disk,
            day,
            features: {
                let mut f = vec![0.0f32; n_base];
                f[1] = v;
                f[3] = v * 0.5;
                f
            },
        };
        for day in 0..40u16 {
            for disk in 0..8u32 {
                p.observe_sample(&mce_rec(
                    disk,
                    day,
                    f32::from(day % 6) * f32::from(disk as u8 + 1),
                ));
            }
        }
        p.observe_failure(3);
        assert_eq!(
            p.window().unwrap().n_tracked(),
            7,
            "failed disk's window state is dropped"
        );

        // Checkpoint mid-stream and continue both pipelines identically.
        let json = serde_json::to_string(&p).unwrap();
        let mut restored: OnlinePredictor = serde_json::from_str(&json).unwrap();
        for day in 40..70u16 {
            for disk in 0..8u32 {
                if disk == 3 {
                    continue;
                }
                let r = mce_rec(disk, day, f32::from(day % 9));
                let (sa, aa) = p.observe_sample_scored(&r);
                let (sb, ab) = restored.observe_sample_scored(&r);
                assert_eq!(sa.to_bits(), sb.to_bits(), "day {day} disk {disk}");
                assert_eq!(aa, ab);
            }
        }
    }

    #[test]
    fn smart_domain_with_empty_plan_is_bit_exact_with_no_domain() {
        // Explicit SMART schema (empty derived plan) must not perturb the
        // pipeline at all relative to the implicit default.
        let mut a = OnlinePredictor::new(&cfg());
        let explicit = OnlinePredictorConfig {
            domain: Some(DomainSchema::smart()),
            ..cfg()
        };
        let mut b = OnlinePredictor::new(&explicit);
        assert!(b.window().is_none(), "empty plan must not build a stage");
        train_stream(&mut a, 30, 80);
        train_stream(&mut b, 30, 80);
        let probe = rec(999, 81, 13.0);
        assert_eq!(
            a.score_row(&probe.features).to_bits(),
            b.score_row(&probe.features).to_bits()
        );
    }

    #[test]
    fn threshold_controls_alarm_volume() {
        let mut p = OnlinePredictor::new(&cfg());
        train_stream(&mut p, 50, 120);
        let probe = rec(900, 121, 12.0);
        let score = p.score_row(&probe.features);
        p.set_alarm_threshold(score + 0.01);
        assert!(p.observe_sample(&probe).is_none());
        p.set_alarm_threshold((score - 0.01).max(0.0));
        assert!(p.observe_sample(&rec(901, 121, 12.0)).is_some());
    }
}
