//! ORF hyper-parameters.

use serde::{Deserialize, Serialize};

/// Hyper-parameters of the Online Random Forest (Algorithm 1).
///
/// Paper settings (§4.4): `T = 30` trees, `N = 5 000` random tests,
/// `α = 200`, `β = 0.1`, `λp = 1`, `λn = 0.02`. The default `n_tests` here
/// is 500: at 5 000 a leaf's test pool costs ≈ 120 KB and the paper itself
/// reports no benefit beyond diminishing returns; the repro harness exposes
/// the knob so the full setting can be reproduced when memory allows.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OrfConfig {
    /// Number of trees `T`.
    pub n_trees: usize,
    /// Number of random tests `N` kept per unsplit leaf.
    pub n_tests: usize,
    /// `MinParentSize` α: minimum (weighted) samples a leaf must absorb
    /// before it may split.
    pub min_parent_size: f64,
    /// `MinGain` β: minimum Gini gain a split must reach.
    pub min_gain: f64,
    /// Poisson rate for positive samples (`λp`, paper: 1.0).
    pub lambda_pos: f64,
    /// Poisson rate for negative samples (`λn`, paper: 0.02).
    pub lambda_neg: f64,
    /// Maximum tree depth (structural safety valve; the stream is infinite).
    pub max_depth: usize,
    /// Tree-decay threshold `θ_OOBE` on the class-balanced out-of-bag error.
    pub oobe_threshold: f64,
    /// Tree-age threshold `θ_AGE` (in-bag updates) before a tree may be
    /// discarded.
    pub age_threshold: u64,
    /// EWMA smoothing for the OOBE estimate.
    pub oobe_alpha: f64,
    /// Trees younger than this many in-bag updates are excluded from the
    /// ensemble vote (they would otherwise emit uninformed scores right
    /// after a replacement). Set to 0 to disable, recovering the bare
    /// Saffari et al. behaviour.
    pub warmup_age: u64,
}

impl Default for OrfConfig {
    fn default() -> Self {
        Self {
            n_trees: 30,
            n_tests: 500,
            min_parent_size: 200.0,
            // The paper sets β = 0.1, but at the class densities it reports
            // (positives ~1:40 in-bag even after λn thinning, ~1:2000 at
            // λn = 1) the root's Gini impurity is ≈ 0.05 — or 0.001 at
            // λn = 1, where the paper still reports FDR 23.6% — so the
            // literal β can never split a tree on this problem. 0.005
            // preserves the intent (skip worthless splits) while letting
            // Table 4's whole λn range grow trees; `paper()` keeps the
            // literal 0.1 for side-by-side comparison.
            min_gain: 0.005,
            lambda_pos: 1.0,
            lambda_neg: 0.02,
            max_depth: 20,
            oobe_threshold: 0.40,
            age_threshold: 1_000,
            oobe_alpha: 0.005,
            warmup_age: 50,
        }
    }
}

impl OrfConfig {
    /// The paper's literal §4.4 configuration (memory-heavy `n_tests`,
    /// and β = 0.1 — see the note on [`OrfConfig::default`]).
    pub fn paper() -> Self {
        Self {
            n_tests: 5_000,
            min_gain: 0.1,
            ..Self::default()
        }
    }

    /// Panic on nonsensical settings; called by the forest constructor.
    pub fn validate(&self) {
        assert!(self.n_trees > 0, "need at least one tree");
        assert!(self.n_tests > 0, "need at least one random test per leaf");
        assert!(self.min_parent_size >= 2.0, "min_parent_size must be >= 2");
        assert!(
            (0.0..=0.5).contains(&self.min_gain),
            "min_gain must be in [0, 0.5]"
        );
        assert!(self.lambda_pos > 0.0, "lambda_pos must be positive");
        assert!(self.lambda_neg >= 0.0, "lambda_neg must be non-negative");
        assert!(self.max_depth >= 1, "max_depth must be at least 1");
        assert!(
            self.oobe_alpha > 0.0 && self.oobe_alpha <= 1.0,
            "oobe_alpha must be in (0, 1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_section_4_4() {
        let c = OrfConfig::default();
        assert_eq!(c.n_trees, 30);
        assert_eq!(c.min_parent_size, 200.0);
        assert_eq!(c.lambda_pos, 1.0);
        assert_eq!(c.lambda_neg, 0.02);
        c.validate();
        let p = OrfConfig::paper();
        assert_eq!(p.n_tests, 5_000);
        assert_eq!(p.min_gain, 0.1);
        p.validate();
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn validate_rejects_zero_trees() {
        OrfConfig {
            n_trees: 0,
            ..OrfConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "min_gain")]
    fn validate_rejects_impossible_gain() {
        OrfConfig {
            min_gain: 0.9,
            ..OrfConfig::default()
        }
        .validate();
    }
}
