//! The online decision tree (§3.1).
//!
//! Every unsplit leaf carries `N` random tests of the form
//! `SMART_i > θ` (here: `feature f > threshold t` over scaled inputs in
//! `[0, 1]`) plus streaming class counts. When the leaf has absorbed
//! `MinParentSize` samples and the best test's Gini gain (Eq. 2) reaches
//! `MinGain`, the leaf becomes a decision node: the winning test's side
//! statistics seed the children's class priors (so they predict sensibly
//! from the first moment, following Saffari et al.), and each child gets a
//! fresh random test pool.

use crate::config::OrfConfig;
use orfpred_trees::gini::{split_gain, ClassCounts};
use orfpred_util::Xoshiro256pp;
use serde::{Deserialize, Serialize};

/// One candidate split test with streaming statistics.
///
/// Only the left-side counts are stored; the right side is the leaf total
/// minus the left — halving the per-test memory, which dominates ORF's
/// footprint at the paper's `N = 5 000`.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct CandidateTest {
    feature: u16,
    threshold: f32,
    left: ClassCounts,
}

/// Arena node.
#[derive(Clone, Debug, Serialize, Deserialize)]
enum Node {
    Leaf {
        counts: ClassCounts,
        depth: u16,
        tests: Vec<CandidateTest>,
        /// Next `counts.total()` at which the split condition is evaluated.
        /// Scanning all `N` tests on *every* update once `|D| ≥ α` would
        /// make stubborn leaves (impure but below `MinGain`) cost O(N) per
        /// sample forever; instead the check backs off geometrically
        /// (≤ 12.5% later than the exact condition — measured as harmless,
        /// and it keeps per-update cost O(tests touched) amortized).
        next_check: f64,
    },
    Split {
        feature: u16,
        threshold: f32,
        left: u32,
        right: u32,
    },
}

/// A single online random tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OnlineTree {
    nodes: Vec<Node>,
    n_features: usize,
    n_splits: usize,
    /// Per-feature accumulated weighted Gini gain — the interpretability
    /// hook the paper highlights ("models are highly interpretable so they
    /// can be used to reveal the real cause of disk failures").
    importances: Vec<f64>,
}

impl OnlineTree {
    /// Fresh single-leaf tree. `rng` supplies the root's random tests.
    pub fn new(n_features: usize, cfg: &OrfConfig, rng: &mut Xoshiro256pp) -> Self {
        assert!(n_features > 0 && n_features <= u16::MAX as usize);
        let root = Node::Leaf {
            counts: ClassCounts::new(),
            depth: 0,
            tests: Self::fresh_tests(n_features, cfg.n_tests, rng),
            next_check: cfg.min_parent_size,
        };
        Self {
            nodes: vec![root],
            n_features,
            n_splits: 0,
            importances: vec![0.0; n_features],
        }
    }

    fn fresh_tests(
        n_features: usize,
        n_tests: usize,
        rng: &mut Xoshiro256pp,
    ) -> Vec<CandidateTest> {
        (0..n_tests)
            .map(|_| CandidateTest {
                feature: rng.index(n_features) as u16,
                // Inputs are min–max scaled, so thresholds live in (0, 1).
                threshold: rng.next_f32(),
                left: ClassCounts::new(),
            })
            .collect()
    }

    /// Index of the leaf that `x` routes to (Algorithm 1's `FindLeaf`).
    fn find_leaf(&self, x: &[f32]) -> usize {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { .. } => return at,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if x[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }

    /// Absorb one (scaled) sample; splits the reached leaf if Algorithm 1's
    /// condition `|D| ≥ α ∧ ∃s: ΔG ≥ β` is met.
    pub fn update(&mut self, x: &[f32], positive: bool, cfg: &OrfConfig, rng: &mut Xoshiro256pp) {
        debug_assert_eq!(x.len(), self.n_features);
        let at = self.find_leaf(x);
        let (should_split, best) = {
            let Node::Leaf {
                counts,
                depth,
                tests,
                next_check,
            } = &mut self.nodes[at]
            else {
                unreachable!("find_leaf returns a leaf")
            };
            counts.add(positive, 1.0);
            for t in tests.iter_mut() {
                if x[t.feature as usize] <= t.threshold {
                    t.left.add(positive, 1.0);
                }
            }
            let total = counts.total();
            if total >= cfg.min_parent_size
                && total >= *next_check
                && (*depth as usize) < cfg.max_depth
            {
                // Find the best test (UpdateNode + split check).
                let mut best: Option<(f64, usize)> = None;
                for (i, t) in tests.iter().enumerate() {
                    let right = ClassCounts {
                        neg: counts.neg - t.left.neg,
                        pos: counts.pos - t.left.pos,
                    };
                    // Degenerate tests (everything on one side) cannot split.
                    if t.left.total() <= 0.0 || right.total() <= 0.0 {
                        continue;
                    }
                    let g = split_gain(&t.left, &right);
                    if g >= cfg.min_gain && best.is_none_or(|(bg, _)| g > bg) {
                        best = Some((g, i));
                    }
                }
                if best.is_none() {
                    // Back off geometrically before re-scanning.
                    *next_check = total * 1.125;
                }
                (best.is_some(), best)
            } else {
                (false, None)
            }
        };

        if should_split {
            let (gain, test_idx) = best.unwrap();
            self.split_leaf(at, test_idx, gain, cfg, rng);
        }
    }

    /// Turn leaf `at` into a decision node using its `test_idx`-th test.
    fn split_leaf(
        &mut self,
        at: usize,
        test_idx: usize,
        gain: f64,
        cfg: &OrfConfig,
        rng: &mut Xoshiro256pp,
    ) {
        let (feature, threshold, left_counts, right_counts, child_depth) = {
            let Node::Leaf {
                counts,
                depth,
                tests,
                ..
            } = &self.nodes[at]
            else {
                unreachable!()
            };
            let t = &tests[test_idx];
            let right = ClassCounts {
                neg: counts.neg - t.left.neg,
                pos: counts.pos - t.left.pos,
            };
            (t.feature, t.threshold, t.left, right, depth + 1)
        };
        // Children inherit prior counts; their first split check happens
        // once they have absorbed α *new* samples on top of the priors.
        let left_id = self.nodes.len() as u32;
        self.nodes.push(Node::Leaf {
            counts: left_counts,
            depth: child_depth,
            tests: Self::fresh_tests(self.n_features, cfg.n_tests, rng),
            next_check: left_counts.total() + cfg.min_parent_size,
        });
        let right_id = self.nodes.len() as u32;
        self.nodes.push(Node::Leaf {
            counts: right_counts,
            depth: child_depth,
            tests: Self::fresh_tests(self.n_features, cfg.n_tests, rng),
            next_check: right_counts.total() + cfg.min_parent_size,
        });
        let node_weight = left_counts.total() + right_counts.total();
        self.nodes[at] = Node::Split {
            feature,
            threshold,
            left: left_id,
            right: right_id,
        };
        self.n_splits += 1;
        self.importances[usize::from(feature)] += gain * node_weight;
    }

    /// Positive-class probability estimate at the reached leaf.
    ///
    /// An empty leaf (fresh root) returns 0 — "no evidence of failure" is
    /// the conservative answer for an alarm system.
    pub fn score(&self, x: &[f32]) -> f32 {
        match &self.nodes[self.find_leaf(x)] {
            Node::Leaf { counts, .. } => counts.pos_fraction() as f32,
            Node::Split { .. } => unreachable!(),
        }
    }

    /// Hard prediction at threshold 0.5 (used for OOBE accounting).
    pub fn predict(&self, x: &[f32]) -> bool {
        self.score(x) >= 0.5
    }

    /// Number of splits performed so far.
    pub fn n_splits(&self) -> usize {
        self.n_splits
    }

    /// Total node count.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Maximum leaf depth reached.
    pub fn max_depth(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Leaf { depth, .. } => Some(*depth as usize),
                Node::Split { .. } => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Accumulate this tree's per-feature weighted gains into `acc`.
    pub fn add_importances(&self, acc: &mut [f64]) {
        assert_eq!(acc.len(), self.n_features);
        for (a, &v) in acc.iter_mut().zip(&self.importances) {
            *a += v;
        }
    }

    /// Approximate heap footprint of the test pools, in bytes — the memory
    /// knob the `n_tests` default guards (see [`OrfConfig`]).
    pub fn test_pool_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Leaf { tests, .. } => tests.len() * std::mem::size_of::<CandidateTest>(),
                Node::Split { .. } => 0,
            })
            .sum()
    }

    /// Re-emit this tree into a frozen-forest builder, dropping the
    /// candidate-test pools: each leaf freezes to the exact value
    /// [`Self::score`] would return there (`pos_fraction() as f32`).
    pub(crate) fn freeze_into(&self, b: &mut orfpred_trees::FrozenBuilder) {
        use orfpred_trees::SourceNode;
        b.add_tree(0, &mut |i| match &self.nodes[i as usize] {
            Node::Leaf { counts, .. } => SourceNode::Leaf {
                value: counts.pos_fraction() as f32,
            },
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => SourceNode::Split {
                feature: *feature,
                threshold: *threshold,
                left: *left,
                right: *right,
            },
        });
    }

    /// Compile this tree into the flat scoring representation (a one-tree
    /// [`orfpred_trees::FrozenForest`]); bit-identical to [`Self::score`].
    pub fn freeze(&self) -> orfpred_trees::FrozenForest {
        let mut b = orfpred_trees::FrozenBuilder::new(self.n_features);
        self.freeze_into(&mut b);
        let mut imp = vec![0.0; self.n_features];
        self.add_importances(&mut imp);
        b.finish(imp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_small() -> OrfConfig {
        OrfConfig {
            n_tests: 40,
            min_parent_size: 30.0,
            min_gain: 0.05,
            ..OrfConfig::default()
        }
    }

    #[test]
    fn new_tree_is_a_single_empty_leaf_scoring_zero() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let t = OnlineTree::new(3, &cfg_small(), &mut rng);
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.n_splits(), 0);
        assert_eq!(t.score(&[0.5, 0.5, 0.5]), 0.0);
    }

    #[test]
    fn does_not_split_before_min_parent_size() {
        let cfg = cfg_small();
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut t = OnlineTree::new(1, &cfg, &mut rng);
        // 29 perfectly separable samples — still below α = 30.
        for i in 0..29 {
            let v = if i % 2 == 0 { 0.1 } else { 0.9 };
            t.update(&[v], i % 2 == 1, &cfg, &mut rng);
        }
        assert_eq!(t.n_splits(), 0);
    }

    #[test]
    fn splits_separable_stream_and_scores_correctly() {
        let cfg = cfg_small();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut t = OnlineTree::new(1, &cfg, &mut rng);
        let mut data_rng = Xoshiro256pp::seed_from_u64(99);
        for _ in 0..500 {
            let pos = data_rng.bernoulli(0.5);
            let v = if pos {
                data_rng.range_f32(0.6, 1.0)
            } else {
                data_rng.range_f32(0.0, 0.4)
            };
            t.update(&[v], pos, &cfg, &mut rng);
        }
        assert!(t.n_splits() >= 1, "separable stream must split");
        assert!(t.score(&[0.9]) > 0.9, "score {}", t.score(&[0.9]));
        assert!(t.score(&[0.1]) < 0.1, "score {}", t.score(&[0.1]));
    }

    #[test]
    fn pure_stream_never_splits() {
        let cfg = cfg_small();
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut t = OnlineTree::new(2, &cfg, &mut rng);
        let mut data_rng = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..500 {
            t.update(
                &[data_rng.next_f32(), data_rng.next_f32()],
                false,
                &cfg,
                &mut rng,
            );
        }
        assert_eq!(t.n_splits(), 0, "no gain exists in a pure stream");
        assert_eq!(t.score(&[0.5, 0.5]), 0.0);
    }

    #[test]
    fn max_depth_bounds_growth() {
        let cfg = OrfConfig {
            max_depth: 1,
            ..cfg_small()
        };
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut t = OnlineTree::new(1, &cfg, &mut rng);
        let mut data_rng = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..2_000 {
            let v = data_rng.next_f32();
            // Checkerboard labels — would grow deep without the cap.
            t.update(&[v], ((v * 4.0) as u32).is_multiple_of(2), &cfg, &mut rng);
        }
        assert!(t.n_splits() <= 1, "depth cap violated: {}", t.n_splits());
    }

    #[test]
    fn children_inherit_split_statistics() {
        let cfg = OrfConfig {
            n_tests: 200,
            min_parent_size: 50.0,
            min_gain: 0.2,
            ..OrfConfig::default()
        };
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let mut t = OnlineTree::new(1, &cfg, &mut rng);
        let mut data_rng = Xoshiro256pp::seed_from_u64(9);
        let mut updates = 0;
        while t.n_splits() == 0 && updates < 1_000 {
            let pos = data_rng.bernoulli(0.5);
            let v = if pos {
                data_rng.range_f32(0.55, 1.0)
            } else {
                data_rng.range_f32(0.0, 0.45)
            };
            t.update(&[v], pos, &cfg, &mut rng);
            updates += 1;
        }
        assert_eq!(t.n_splits(), 1);
        // Immediately after the split — with no further updates — the
        // children must already predict from the inherited priors.
        assert!(t.score(&[0.99]) > 0.8);
        assert!(t.score(&[0.01]) < 0.2);
    }

    #[test]
    fn update_is_deterministic_in_rng_stream() {
        let cfg = cfg_small();
        let run = || {
            let mut rng = Xoshiro256pp::seed_from_u64(10);
            let mut t = OnlineTree::new(2, &cfg, &mut rng);
            let mut data_rng = Xoshiro256pp::seed_from_u64(11);
            for _ in 0..300 {
                let a = data_rng.next_f32();
                let b = data_rng.next_f32();
                t.update(&[a, b], a > 0.5, &cfg, &mut rng);
            }
            (t.n_splits(), t.score(&[0.7, 0.2]))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn structure_accounting_is_consistent() {
        let cfg = cfg_small();
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let mut t = OnlineTree::new(1, &cfg, &mut rng);
        let mut data_rng = Xoshiro256pp::seed_from_u64(22);
        for _ in 0..2_000 {
            let v = data_rng.next_f32();
            t.update(&[v], v > 0.5, &cfg, &mut rng);
        }
        assert_eq!(t.n_nodes(), 2 * t.n_splits() + 1, "binary tree arithmetic");
        assert_eq!(t.n_leaves(), t.n_splits() + 1);
        assert!(t.max_depth() >= 1);
        let mut imp = vec![0.0];
        t.add_importances(&mut imp);
        assert!(imp[0] > 0.0, "splits must register importance");
    }

    #[test]
    fn test_pool_memory_accounting_scales_with_n_tests() {
        let mut rng = Xoshiro256pp::seed_from_u64(12);
        let small = OnlineTree::new(
            4,
            &OrfConfig {
                n_tests: 10,
                ..OrfConfig::default()
            },
            &mut rng,
        );
        let big = OnlineTree::new(
            4,
            &OrfConfig {
                n_tests: 1_000,
                ..OrfConfig::default()
            },
            &mut rng,
        );
        assert_eq!(big.test_pool_bytes(), 100 * small.test_pool_bytes());
    }
}
