//! Random distributions used by the algorithms and the fleet simulator.
//!
//! Implemented in-crate (rather than pulling a distributions crate) so the
//! sampled streams are stable across dependency upgrades — the experiment
//! tables in `EXPERIMENTS.md` are regenerated from fixed seeds.

use crate::rng::Xoshiro256pp;

/// Sample from `Poisson(lambda)`.
///
/// This is the heart of online bagging (Oza & Russell 2001): the number of
/// times a tree replays an arriving sample is `Poisson(λ)`, with the paper's
/// imbalance correction using `λp = 1` for positives and `λn ≪ 1` for
/// negatives (Eq. 3 of the paper).
///
/// Uses Knuth's product method for `λ ≤ 30` and the PTRS transformed
/// rejection method is avoided in favour of a normal approximation for
/// larger `λ` (the code never needs λ beyond ~10, but stay safe).
pub fn poisson(rng: &mut Xoshiro256pp, lambda: f64) -> u32 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "invalid lambda {lambda}"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda <= 30.0 {
        // Knuth: multiply uniforms until the product drops below e^-λ.
        let l = (-lambda).exp();
        let mut k = 0u32;
        let mut p = 1.0;
        loop {
            p *= rng.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
            // Numerical guard: p can underflow to 0 only if k is huge.
            if k > 10_000 {
                return k;
            }
        }
    }
    // Normal approximation with continuity correction, adequate for λ > 30.
    let x = normal(rng, lambda, lambda.sqrt());
    if x < 0.0 {
        0
    } else {
        (x + 0.5) as u32
    }
}

/// Standard normal via the Box–Muller transform (one value per call; the
/// second variate is discarded to keep the generator state a pure function
/// of the number of calls).
pub fn standard_normal(rng: &mut Xoshiro256pp) -> f64 {
    // Avoid ln(0).
    let u1 = loop {
        let u = rng.next_f64();
        if u > 0.0 {
            break u;
        }
    };
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal with the given mean and standard deviation.
#[inline]
pub fn normal(rng: &mut Xoshiro256pp, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Log-normal parameterised by the mean/sd of the underlying normal.
#[inline]
pub fn log_normal(rng: &mut Xoshiro256pp, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Geometric distribution on `{1, 2, ...}`: number of Bernoulli(p) trials up
/// to and including the first success. Used for symptom-ramp lengths.
pub fn geometric(rng: &mut Xoshiro256pp, p: f64) -> u32 {
    assert!(p > 0.0 && p <= 1.0, "geometric p must be in (0,1], got {p}");
    if p >= 1.0 {
        return 1;
    }
    // Inversion: ceil(ln(U) / ln(1-p)).
    let u = loop {
        let u = rng.next_f64();
        if u > 0.0 {
            break u;
        }
    };
    let k = (u.ln() / (1.0 - p).ln()).ceil();
    k.max(1.0).min(u32::MAX as f64) as u32
}

/// Exponential with the given rate (mean `1/rate`).
pub fn exponential(rng: &mut Xoshiro256pp, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u = loop {
        let u = rng.next_f64();
        if u > 0.0 {
            break u;
        }
    };
    -u.ln() / rate
}

/// Sample an index from unnormalised non-negative weights.
///
/// Used by the fleet simulator to pick failure modes and disk batches.
pub fn weighted_index(rng: &mut Xoshiro256pp, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "weights must have a positive finite sum"
    );
    let mut target = rng.next_f64() * total;
    for (i, &w) in weights.iter().enumerate() {
        debug_assert!(w >= 0.0, "negative weight at {i}");
        target -= w;
        if target < 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(0xDEAD_BEEF)
    }

    #[test]
    fn poisson_zero_lambda_is_always_zero() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(poisson(&mut r, 0.0), 0);
        }
    }

    #[test]
    fn poisson_mean_and_variance_match_lambda() {
        let mut r = rng();
        for &lambda in &[0.02, 0.5, 1.0, 4.0, 50.0] {
            let n = 200_000;
            let samples: Vec<f64> = (0..n).map(|_| poisson(&mut r, lambda) as f64).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
            let tol = 4.0 * (lambda / n as f64).sqrt() + 0.01;
            assert!((mean - lambda).abs() < tol, "λ={lambda} mean={mean}");
            assert!(
                (var - lambda).abs() < 0.1 * lambda.max(0.1),
                "λ={lambda} var={var}"
            );
        }
    }

    #[test]
    fn poisson_small_lambda_is_mostly_zero() {
        // λn = 0.02 should leave ~98% of negative samples unused — that is
        // the paper's imbalance mechanism, so check the zero mass directly.
        let mut r = rng();
        let n = 100_000;
        let zeros = (0..n).filter(|_| poisson(&mut r, 0.02) == 0).count();
        let frac = zeros as f64 / n as f64;
        let expect = (-0.02f64).exp(); // ≈ 0.9802
        assert!((frac - expect).abs() < 0.005, "zero mass {frac}");
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn geometric_mean_is_reciprocal_p() {
        let mut r = rng();
        let n = 100_000;
        let mean = (0..n).map(|_| geometric(&mut r, 0.25) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert_eq!(geometric(&mut r, 1.0), 1);
    }

    #[test]
    fn exponential_mean_is_reciprocal_rate() {
        let mut r = rng();
        let n = 100_000;
        let mean = (0..n).map(|_| exponential(&mut r, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let w = [1.0, 0.0, 3.0];
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[weighted_index(&mut r, &w)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight bucket must never be chosen");
        let f0 = counts[0] as f64 / n as f64;
        assert!((f0 - 0.25).abs() < 0.01, "f0 {f0}");
    }

    #[test]
    #[should_panic(expected = "positive finite sum")]
    fn weighted_index_rejects_all_zero() {
        let mut r = rng();
        weighted_index(&mut r, &[0.0, 0.0]);
    }
}
