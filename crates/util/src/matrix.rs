//! A minimal row-major `f32` matrix used as the training-sample container by
//! the offline learners (CART/RF/SVM). Row-major keeps one sample's features
//! contiguous — the access pattern of both split search and kernel
//! evaluation — per the cache-friendliness guidance in the HPC guides.

use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f32`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    data: Vec<f32>,
    n_cols: usize,
}

impl Matrix {
    /// Empty matrix with the given column count.
    pub fn new(n_cols: usize) -> Self {
        assert!(n_cols > 0, "matrix needs at least one column");
        Self {
            data: Vec::new(),
            n_cols,
        }
    }

    /// Empty matrix with capacity for `rows` rows.
    pub fn with_capacity(n_cols: usize, rows: usize) -> Self {
        assert!(n_cols > 0, "matrix needs at least one column");
        Self {
            data: Vec::with_capacity(n_cols * rows),
            n_cols,
        }
    }

    /// Build from an iterator of rows (all must have `n_cols` entries).
    pub fn from_rows<'a, I>(n_cols: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut m = Self::new(n_cols);
        for r in rows {
            m.push_row(r);
        }
        m
    }

    /// Append one row.
    #[inline]
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.n_cols, "row length mismatch");
        self.data.extend_from_slice(row);
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.data.len() / self.n_cols
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Value at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data[row * self.n_cols + col]
    }

    /// Iterate over rows.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f32]> {
        self.data.chunks_exact(self.n_cols)
    }

    /// True if the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut m = Matrix::new(3);
        assert!(m.is_empty());
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.rows().count(), 2);
    }

    #[test]
    fn from_rows_matches_push() {
        let rows: Vec<[f32; 2]> = vec![[1.0, 2.0], [3.0, 4.0]];
        let m = Matrix::from_rows(2, rows.iter().map(|r| r.as_slice()));
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn rejects_ragged_rows() {
        let mut m = Matrix::new(2);
        m.push_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn rejects_zero_columns() {
        Matrix::new(0);
    }
}
