//! Deterministic pseudo-random number generation.
//!
//! [`Xoshiro256pp`] implements Blackman & Vigna's xoshiro256++ generator.
//! It is seeded through SplitMix64 (the recommended seeding procedure), so a
//! single `u64` master seed expands into a full 256-bit state, and
//! [`Xoshiro256pp::split`] derives statistically independent child streams —
//! one per tree / disk / replicate — which is what makes the parallel code
//! paths reproducible independent of scheduling.

use serde::{Deserialize, Serialize};

/// SplitMix64 step; used for seeding and stream derivation.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ PRNG with deterministic stream splitting.
///
/// Not cryptographically secure; intended for simulation and randomized
/// algorithms only.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Create a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not be seeded with the all-zero state; SplitMix64
        // cannot produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            Self { s: [1, 2, 3, 4] }
        } else {
            Self { s }
        }
    }

    /// Derive an independent child stream identified by `stream`.
    ///
    /// Children with distinct `stream` values (or from parents with distinct
    /// seeds) are statistically independent; the derivation is pure, so
    /// calling `split` twice with the same argument yields the same stream.
    pub fn split(&self, stream: u64) -> Self {
        // Mix the parent state with the stream id through SplitMix64 to get
        // a fresh, decorrelated 256-bit state.
        let mut sm = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(33)
            ^ self.s[3].rotate_left(47)
            ^ stream.wrapping_mul(0xD605_BBB5_8C8A_BC2D);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper bits of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (Floyd's algorithm for
    /// small `k`, shuffle-prefix otherwise). The result is sorted.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        if k == 0 {
            return Vec::new();
        }
        if k * 4 >= n {
            let mut all: Vec<usize> = (0..n).collect();
            self.shuffle(&mut all);
            all.truncate(k);
            all.sort_unstable();
            return all;
        }
        // Floyd's algorithm: O(k) expected draws, no O(n) allocation.
        let mut chosen = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.index(j + 1);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        chosen.sort_unstable();
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_from_splitmix_seed() {
        // Deterministic regression anchor: the exact output stream for a
        // fixed seed must never change, or every experiment shifts.
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut rng2 = Xoshiro256pp::seed_from_u64(42);
        let again: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
        assert_eq!(first, again);
        // Different seeds diverge immediately.
        let mut rng3 = Xoshiro256pp::seed_from_u64(43);
        assert_ne!(first[0], rng3.next_u64());
    }

    #[test]
    fn next_f64_stays_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_in_bounds_and_covers_small_ranges() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn split_streams_are_independent_and_reproducible() {
        let parent = Xoshiro256pp::seed_from_u64(1234);
        let mut a = parent.split(0);
        let mut b = parent.split(1);
        let mut a2 = parent.split(0);
        assert_eq!(a.next_u64(), a2.next_u64());
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_sorted_in_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        for &(n, k) in &[(10usize, 3usize), (100, 10), (50, 50), (1000, 5), (8, 0)] {
            let s = rng.sample_indices(n, k);
            assert_eq!(s.len(), k);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted & distinct");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn bernoulli_frequency_matches_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn serde_round_trip_preserves_stream() {
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        rng.next_u64();
        let json = serde_json::to_string(&rng).unwrap();
        let mut restored: Xoshiro256pp = serde_json::from_str(&json).unwrap();
        assert_eq!(rng.next_u64(), restored.next_u64());
    }
}
