//! Deterministic utilities shared by every `orfpred` crate.
//!
//! The reproduction depends on *bit-for-bit determinism under a fixed seed,
//! regardless of thread count*: the Online Random Forest updates its trees in
//! parallel, and the fleet simulator fans out across disks. To guarantee
//! that, every parallel unit of work (a tree, a disk, a bootstrap replicate)
//! owns its **own** RNG stream derived from a master seed, rather than
//! sharing a global generator. This crate provides:
//!
//! * [`rng::Xoshiro256pp`] — a small, fast, well-tested PRNG with
//!   [`rng::Xoshiro256pp::split`] for spawning independent streams,
//! * [`dist`] — the handful of distributions the paper's algorithms need
//!   (Poisson for online bagging, normal/log-normal/geometric for the fleet
//!   simulator), implemented in-crate so results never change under a
//!   dependency bump,
//! * [`stats`] — streaming statistics (Welford mean/variance, EWMA) used by
//!   OOBE tracking and the experiment reports.

#![warn(missing_docs)]

pub mod dist;
pub mod matrix;
pub mod rng;
pub mod stats;

pub use matrix::Matrix;
pub use rng::Xoshiro256pp;
