//! Streaming statistics.
//!
//! Online learning never sees the dataset twice, so every statistic the
//! system keeps (OOBE per tree, convergence monitors, experiment summaries)
//! must be computable in a single pass. [`Welford`] provides numerically
//! stable running mean/variance; [`Ewma`] provides the exponentially
//! weighted error estimate used for tree-decay detection.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator (Chan et al. parallel combination).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
    }
}

/// Exponentially weighted moving average.
///
/// `alpha` is the weight of the newest observation. Until the first
/// observation arrives the value reads as `initial`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    seen: u64,
}

impl Ewma {
    /// New EWMA with smoothing factor `alpha ∈ (0, 1]` and initial value.
    pub fn new(alpha: f64, initial: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Self {
            alpha,
            value: initial,
            seen: 0,
        }
    }

    /// Fold in one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.value = self.alpha * x + (1.0 - self.alpha) * self.value;
        self.seen += 1;
    }

    /// Current smoothed value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.seen
    }
}

/// Mean of a slice (0 when empty). Convenience for experiment reports.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation of a slice (0 for fewer than two items).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Percentile via linear interpolation on a *sorted* slice; `q ∈ [0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "slice not sorted");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Two-pass unbiased variance: 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut left = Welford::new();
        let mut right = Welford::new();
        xs[..37].iter().for_each(|&x| left.push(x));
        xs[37..].iter().for_each(|&x| right.push(x));
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        let mut w1 = Welford::new();
        w1.push(3.5);
        assert_eq!(w1.mean(), 3.5);
        assert_eq!(w1.variance(), 0.0);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.2, 1.0);
        for _ in 0..200 {
            e.push(0.0);
        }
        assert!(e.value() < 1e-15, "value {}", e.value());
        assert_eq!(e.count(), 200);
    }

    #[test]
    fn ewma_tracks_step_change() {
        let mut e = Ewma::new(0.5, 0.0);
        e.push(1.0);
        assert!((e.value() - 0.5).abs() < 1e-12);
        e.push(1.0);
        assert!((e.value() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&xs, 0.0), 1.0);
        assert_eq!(percentile_sorted(&xs, 1.0), 4.0);
        assert!((percentile_sorted(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn slice_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        let xs = [1.0, 3.0];
        assert!((mean(&xs) - 2.0).abs() < 1e-12);
        assert!((std_dev(&xs) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
