//! Mahalanobis-distance anomaly detection (Wang et al., IEEE Trans.
//! Reliability 2013).
//!
//! Unsupervised: fit the mean and covariance of the *healthy* population
//! and flag snapshots far from it. The paper's §2 notes this reached 68 %
//! FDR at zero FAR on small datasets — and that it needs no failure labels
//! at all, which is its real selling point.

use serde::{Deserialize, Serialize};

/// Healthy-population Gaussian envelope with a ridge-regularised
/// covariance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MahalanobisDetector {
    mean: Vec<f64>,
    /// Lower-triangular Cholesky factor of `Σ + ridge·I`, row-major packed.
    chol: Vec<f64>,
    dim: usize,
}

impl MahalanobisDetector {
    /// Fit on (presumed-healthy) rows.
    ///
    /// `ridge` is added to the covariance diagonal; it both regularises
    /// near-singular covariances (constant features) and bounds the
    /// distance inflation of noise directions. 1e-4 works well on scaled
    /// features.
    pub fn fit<'a, I>(rows: I, ridge: f64) -> Self
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let rows: Vec<&[f32]> = rows.into_iter().collect();
        assert!(!rows.is_empty(), "cannot fit on zero rows");
        assert!(ridge >= 0.0);
        let n = rows.len() as f64;
        let d = rows[0].len();

        let mut mean = vec![0.0f64; d];
        for r in &rows {
            for (m, &v) in mean.iter_mut().zip(*r) {
                *m += f64::from(v);
            }
        }
        for m in &mut mean {
            *m /= n;
        }

        // Covariance (biased estimator is fine here) + ridge.
        let mut cov = vec![0.0f64; d * d];
        for r in &rows {
            for i in 0..d {
                let di = f64::from(r[i]) - mean[i];
                for j in 0..=i {
                    cov[i * d + j] += di * (f64::from(r[j]) - mean[j]);
                }
            }
        }
        for i in 0..d {
            for j in 0..=i {
                cov[i * d + j] /= n;
            }
            cov[i * d + i] += ridge.max(1e-12);
        }

        // Cholesky: cov = L·Lᵀ (lower triangle only).
        let mut chol = vec![0.0f64; d * d];
        for i in 0..d {
            for j in 0..=i {
                let mut sum = cov[i * d + j];
                for k in 0..j {
                    sum -= chol[i * d + k] * chol[j * d + k];
                }
                if i == j {
                    assert!(sum > 0.0, "covariance not positive definite (raise ridge)");
                    chol[i * d + i] = sum.sqrt();
                } else {
                    chol[i * d + j] = sum / chol[j * d + j];
                }
            }
        }
        Self { mean, chol, dim: d }
    }

    /// Squared Mahalanobis distance of a row from the healthy centre.
    #[allow(clippy::needless_range_loop)] // forward substitution is index maths
    pub fn distance2(&self, row: &[f32]) -> f64 {
        debug_assert_eq!(row.len(), self.dim);
        // Solve L z = (x − μ); then d² = ‖z‖².
        let d = self.dim;
        let mut z = vec![0.0f64; d];
        for i in 0..d {
            let mut sum = f64::from(row[i]) - self.mean[i];
            for k in 0..i {
                sum -= self.chol[i * d + k] * z[k];
            }
            z[i] = sum / self.chol[i * d + i];
        }
        z.iter().map(|v| v * v).sum()
    }

    /// Monotone risk score (the distance itself).
    pub fn score(&self, row: &[f32]) -> f32 {
        self.distance2(row).sqrt() as f32
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_util::{dist, Xoshiro256pp};

    fn healthy(n: usize, seed: u64) -> Vec<[f32; 3]> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let base = dist::normal(&mut rng, 0.0, 1.0);
                [
                    base as f32,
                    // Correlated second coordinate.
                    (0.8 * base + dist::normal(&mut rng, 0.0, 0.6)) as f32,
                    dist::normal(&mut rng, 5.0, 2.0) as f32,
                ]
            })
            .collect()
    }

    #[test]
    fn centre_has_smallest_distance() {
        let rows = healthy(2_000, 1);
        let det = MahalanobisDetector::fit(rows.iter().map(|r| r.as_slice()), 1e-4);
        let centre = det.distance2(&[0.0, 0.0, 5.0]);
        assert!(centre < 0.5, "centre distance² {centre}");
        let far = det.distance2(&[6.0, -6.0, 5.0]);
        assert!(far > 20.0, "anomaly distance² {far}");
    }

    #[test]
    fn accounts_for_correlation() {
        // (2, 1.6) lies along the correlation axis; (2, -1.6) against it.
        let rows = healthy(5_000, 2);
        let det = MahalanobisDetector::fit(rows.iter().map(|r| r.as_slice()), 1e-4);
        let along = det.distance2(&[2.0, 1.6, 5.0]);
        let against = det.distance2(&[2.0, -1.6, 5.0]);
        assert!(
            against > 2.0 * along,
            "correlation-breaking point must look stranger: {against} vs {along}"
        );
    }

    #[test]
    fn distance_of_typical_points_matches_chi_square_mean() {
        // E[d²] over the fitting population equals the dimension.
        let rows = healthy(5_000, 3);
        let det = MahalanobisDetector::fit(rows.iter().map(|r| r.as_slice()), 1e-6);
        let mean_d2: f64 = rows
            .iter()
            .map(|r| det.distance2(r.as_slice()))
            .sum::<f64>()
            / rows.len() as f64;
        assert!((mean_d2 - 3.0).abs() < 0.2, "mean d² {mean_d2}");
    }

    #[test]
    fn constant_feature_is_handled_by_ridge() {
        let rows: Vec<[f32; 2]> = (0..100).map(|i| [i as f32 / 100.0, 7.0]).collect();
        let det = MahalanobisDetector::fit(rows.iter().map(|r| r.as_slice()), 1e-4);
        let s = det.score(&[0.5, 7.0]);
        assert!(s.is_finite());
    }

    #[test]
    fn scores_are_monotone_in_distance() {
        let rows = healthy(1_000, 4);
        let det = MahalanobisDetector::fit(rows.iter().map(|r| r.as_slice()), 1e-4);
        let near = det.score(&[0.1, 0.1, 5.0]);
        let far = det.score(&[3.0, -3.0, 12.0]);
        assert!(far > near);
    }
}
