//! Historical baselines from the paper's related-work survey (§2).
//!
//! The paper positions ORF against a decade of SMART-based predictors.
//! Beyond the three it evaluates directly (RF/DT/SVM, in `orfpred-trees`
//! and `orfpred-svm`), this crate implements the earlier generations so the
//! `repro baselines` extension can line the whole literature up on one
//! dataset:
//!
//! * [`bayes::GaussianNaiveBayes`] — Hamerly & Elkan (ICML'01): supervised
//!   naive Bayes over the SMART features;
//! * [`mahalanobis::MahalanobisDetector`] — Wang et al. (IEEE Trans. Rel.
//!   2013): unsupervised anomaly detection by Mahalanobis distance from the
//!   healthy population;
//! * [`gbdt::Gbdt`] — gradient-boosted decision trees (the boosting
//!   comparator the paper's §3.2 argues ORF parallelises better than, and
//!   the model family of Li et al.'s GBRTs).

#![warn(missing_docs)]

pub mod bayes;
pub mod gbdt;
pub mod mahalanobis;

pub use bayes::GaussianNaiveBayes;
pub use gbdt::{Gbdt, GbdtConfig};
pub use mahalanobis::MahalanobisDetector;
