//! Gradient-boosted decision trees with logistic loss.
//!
//! §3.2 of the paper contrasts ORF's tree-level parallelism against
//! boosting, whose rounds are inherently sequential; Li et al.'s GBRT work
//! is the strongest boosted predictor in the related work. This is a
//! standard second-order (Newton-step leaves) implementation over shallow
//! regression trees, enough to quantify both the accuracy and the
//! train-time trade-off in the `repro baselines` extension.

use orfpred_util::Matrix;
use serde::{Deserialize, Serialize};

/// Boosting hyper-parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Boosting rounds (trees).
    pub n_rounds: usize,
    /// Shrinkage per round.
    pub learning_rate: f64,
    /// Depth of each regression tree.
    pub max_depth: usize,
    /// Minimum samples a leaf may hold.
    pub min_samples_leaf: usize,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self {
            n_rounds: 100,
            learning_rate: 0.1,
            max_depth: 3,
            min_samples_leaf: 10,
        }
    }
}

/// One node of a fitted regression tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
enum Node {
    Split {
        feature: u32,
        threshold: f32,
        left: u32,
        right: u32,
    },
    Leaf {
        value: f64,
    },
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct RegTree {
    nodes: Vec<Node>,
}

impl RegTree {
    fn predict(&self, row: &[f32]) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }
}

/// A fitted gradient-boosted ensemble (binary classification).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Gbdt {
    trees: Vec<RegTree>,
    base_score: f64,
    learning_rate: f64,
    n_features: usize,
}

impl Gbdt {
    /// Fit with logistic loss.
    #[allow(clippy::needless_range_loop)] // parallel grad/hess/raw arrays
    pub fn fit(x: &Matrix, y: &[bool], cfg: &GbdtConfig) -> Self {
        assert_eq!(x.n_rows(), y.len());
        assert!(x.n_rows() > 0, "cannot fit on zero samples");
        let n = x.n_rows();
        let pos = y.iter().filter(|&&b| b).count().max(1) as f64;
        let neg = (y.len() - y.iter().filter(|&&b| b).count()).max(1) as f64;
        let base_score = (pos / neg).ln();

        let mut raw = vec![base_score; n]; // current margin F(x_i)
        let mut grad = vec![0.0f64; n]; // residual y − p
        let mut hess = vec![0.0f64; n]; // p (1 − p)
        let mut trees = Vec::with_capacity(cfg.n_rounds);
        for _ in 0..cfg.n_rounds {
            for i in 0..n {
                let p = sigmoid(raw[i]);
                grad[i] = f64::from(u8::from(y[i])) - p;
                hess[i] = (p * (1.0 - p)).max(1e-9);
            }
            let mut tree = RegTree { nodes: Vec::new() };
            let idx: Vec<u32> = (0..n as u32).collect();
            build_node(&mut tree, x, &grad, &hess, idx, cfg.max_depth, cfg);
            for i in 0..n {
                raw[i] += cfg.learning_rate * tree.predict(x.row(i));
            }
            trees.push(tree);
        }
        Self {
            trees,
            base_score,
            learning_rate: cfg.learning_rate,
            n_features: x.n_cols(),
        }
    }

    /// Raw margin `F(x)`.
    pub fn margin(&self, row: &[f32]) -> f64 {
        debug_assert_eq!(row.len(), self.n_features);
        self.base_score
            + self.learning_rate * self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
    }

    /// Probability-like score `σ(F(x))`.
    pub fn score(&self, row: &[f32]) -> f32 {
        sigmoid(self.margin(row)) as f32
    }

    /// Number of boosting rounds fitted.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Recursively grow one regression tree on (grad, hess); returns node id.
fn build_node(
    tree: &mut RegTree,
    x: &Matrix,
    grad: &[f64],
    hess: &[f64],
    idx: Vec<u32>,
    depth_left: usize,
    cfg: &GbdtConfig,
) -> u32 {
    let g_sum: f64 = idx.iter().map(|&i| grad[i as usize]).sum();
    let h_sum: f64 = idx.iter().map(|&i| hess[i as usize]).sum();
    let make_leaf = |tree: &mut RegTree| -> u32 {
        // Newton step with a tiny L2 regulariser.
        let value = g_sum / (h_sum + 1e-6);
        tree.nodes.push(Node::Leaf { value });
        (tree.nodes.len() - 1) as u32
    };
    if depth_left == 0 || idx.len() < 2 * cfg.min_samples_leaf {
        return make_leaf(tree);
    }

    // Exact best split by Newton gain over every feature.
    let parent_gain = g_sum * g_sum / (h_sum + 1e-6);
    let mut best: Option<(f64, u32, f32)> = None;
    let mut order: Vec<u32> = idx.clone();
    for f in 0..x.n_cols() {
        order.sort_by(|&a, &b| {
            x.get(a as usize, f)
                .partial_cmp(&x.get(b as usize, f))
                .expect("NaN feature")
        });
        let mut gl = 0.0f64;
        let mut hl = 0.0f64;
        for k in 0..order.len() - 1 {
            let i = order[k] as usize;
            gl += grad[i];
            hl += hess[i];
            let v = x.get(i, f);
            let v_next = x.get(order[k + 1] as usize, f);
            if v == v_next {
                continue;
            }
            if k + 1 < cfg.min_samples_leaf || order.len() - k - 1 < cfg.min_samples_leaf {
                continue;
            }
            let gr = g_sum - gl;
            let hr = h_sum - hl;
            let gain = gl * gl / (hl + 1e-6) + gr * gr / (hr + 1e-6) - parent_gain;
            if gain > 1e-12 && best.is_none_or(|(bg, _, _)| gain > bg) {
                best = Some((gain, f as u32, 0.5 * (v + v_next)));
            }
        }
    }
    let Some((_, feature, threshold)) = best else {
        return make_leaf(tree);
    };

    let (left_idx, right_idx): (Vec<u32>, Vec<u32>) = idx
        .into_iter()
        .partition(|&i| x.get(i as usize, feature as usize) <= threshold);
    // Reserve this node's slot before the children claim theirs.
    tree.nodes.push(Node::Leaf { value: 0.0 });
    let at = (tree.nodes.len() - 1) as u32;
    let left = build_node(tree, x, grad, hess, left_idx, depth_left - 1, cfg);
    let right = build_node(tree, x, grad, hess, right_idx, depth_left - 1, cfg);
    tree.nodes[at as usize] = Node::Split {
        feature,
        threshold,
        left,
        right,
    };
    at
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_util::Xoshiro256pp;

    fn ring(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut x = Matrix::new(2);
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.next_f32() * 2.0 - 1.0;
            let b = rng.next_f32() * 2.0 - 1.0;
            x.push_row(&[a, b]);
            y.push(a * a + b * b < 0.4);
        }
        (x, y)
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let (x, y) = ring(2_000, 1);
        let model = Gbdt::fit(&x, &y, &GbdtConfig::default());
        let (xt, yt) = ring(500, 2);
        let correct = (0..xt.n_rows())
            .filter(|&i| (model.score(xt.row(i)) >= 0.5) == yt[i])
            .count();
        let acc = correct as f64 / yt.len() as f64;
        assert!(acc > 0.93, "test accuracy {acc}");
    }

    #[test]
    fn more_rounds_reduce_training_loss() {
        let (x, y) = ring(800, 3);
        let loss = |model: &Gbdt| -> f64 {
            (0..x.n_rows())
                .map(|i| {
                    let p = f64::from(model.score(x.row(i))).clamp(1e-9, 1.0 - 1e-9);
                    if y[i] {
                        -p.ln()
                    } else {
                        -(1.0 - p).ln()
                    }
                })
                .sum::<f64>()
                / x.n_rows() as f64
        };
        let short = Gbdt::fit(
            &x,
            &y,
            &GbdtConfig {
                n_rounds: 5,
                ..GbdtConfig::default()
            },
        );
        let long = Gbdt::fit(
            &x,
            &y,
            &GbdtConfig {
                n_rounds: 80,
                ..GbdtConfig::default()
            },
        );
        assert!(
            loss(&long) < loss(&short),
            "boosting must reduce training loss: {} vs {}",
            loss(&long),
            loss(&short)
        );
    }

    #[test]
    fn base_score_reflects_class_prior() {
        let mut x = Matrix::new(1);
        let mut y = Vec::new();
        for i in 0..100 {
            x.push_row(&[0.0]);
            y.push(i < 10); // 10% positive, inseparable
        }
        let model = Gbdt::fit(
            &x,
            &y,
            &GbdtConfig {
                n_rounds: 3,
                ..GbdtConfig::default()
            },
        );
        let s = model.score(&[0.0]);
        assert!((f64::from(s) - 0.1).abs() < 0.05, "score {s}");
    }

    #[test]
    fn scores_are_probabilities() {
        let (x, y) = ring(300, 5);
        let model = Gbdt::fit(&x, &y, &GbdtConfig::default());
        for i in 0..x.n_rows() {
            let s = model.score(x.row(i));
            assert!((0.0..=1.0).contains(&s));
        }
        assert_eq!(model.n_trees(), 100);
    }

    #[test]
    fn min_leaf_bounds_tree_size() {
        let (x, y) = ring(200, 6);
        let cfg = GbdtConfig {
            n_rounds: 1,
            min_samples_leaf: 100,
            ..GbdtConfig::default()
        };
        let model = Gbdt::fit(&x, &y, &cfg);
        // 200 samples with min-leaf 100: at most one split per tree.
        assert!(model.trees[0].nodes.len() <= 3);
    }
}
