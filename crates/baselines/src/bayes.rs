//! Gaussian naive Bayes (Hamerly & Elkan, ICML 2001).
//!
//! The first machine-learned SMART failure predictor: model each feature as
//! class-conditionally Gaussian and score by posterior log-odds. Crude —
//! SMART counters are anything but Gaussian — but it beat the vendor
//! thresholds by 3–10× and set off the whole research line the paper
//! surveys.

use serde::{Deserialize, Serialize};

/// Per-feature class-conditional Gaussians plus class priors.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GaussianNaiveBayes {
    /// Per-feature (mean, variance) for the negative class.
    neg: Vec<(f64, f64)>,
    /// Per-feature (mean, variance) for the positive class.
    pos: Vec<(f64, f64)>,
    /// log P(y=1) − log P(y=0).
    prior_log_odds: f64,
}

/// Variance floor: degenerate (constant) features would otherwise produce
/// infinite densities.
const VAR_FLOOR: f64 = 1e-9;

impl GaussianNaiveBayes {
    /// Fit on rows with boolean labels. Requires both classes present.
    pub fn fit<'a, I>(rows: I, y: &[bool]) -> Self
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let rows: Vec<&[f32]> = rows.into_iter().collect();
        assert_eq!(rows.len(), y.len(), "labels must match rows");
        assert!(
            y.iter().any(|&b| b) && y.iter().any(|&b| !b),
            "naive Bayes needs both classes"
        );
        let d = rows[0].len();
        let mut stats = [vec![(0.0f64, 0.0f64, 0u64); d], vec![(0.0, 0.0, 0); d]];
        for (row, &label) in rows.iter().zip(y) {
            let acc = &mut stats[usize::from(label)];
            for (j, &v) in row.iter().enumerate() {
                let v = f64::from(v);
                acc[j].0 += v;
                acc[j].1 += v * v;
                acc[j].2 += 1;
            }
        }
        let finish = |acc: &[(f64, f64, u64)]| -> Vec<(f64, f64)> {
            acc.iter()
                .map(|&(s, s2, n)| {
                    let n = n as f64;
                    let mean = s / n;
                    let var = (s2 / n - mean * mean).max(VAR_FLOOR);
                    (mean, var)
                })
                .collect()
        };
        let n_pos = y.iter().filter(|&&b| b).count() as f64;
        let n_neg = y.len() as f64 - n_pos;
        Self {
            neg: finish(&stats[0]),
            pos: finish(&stats[1]),
            prior_log_odds: (n_pos / y.len() as f64).ln() - (n_neg / y.len() as f64).ln(),
        }
    }

    /// Posterior log-odds `log P(y=1|x) − log P(y=0|x)`; monotone risk
    /// score (0 = even odds).
    pub fn log_odds(&self, row: &[f32]) -> f64 {
        debug_assert_eq!(row.len(), self.neg.len());
        let mut odds = self.prior_log_odds;
        for (j, &v) in row.iter().enumerate() {
            let v = f64::from(v);
            let ll = |(m, var): (f64, f64)| -> f64 {
                let d = v - m;
                -0.5 * (var.ln() + d * d / var)
            };
            odds += ll(self.pos[j]) - ll(self.neg[j]);
        }
        odds
    }

    /// Posterior probability of the positive class.
    pub fn score(&self, row: &[f32]) -> f32 {
        (1.0 / (1.0 + (-self.log_odds(row)).exp())) as f32
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.neg.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_util::{dist, Xoshiro256pp};

    fn gaussian_data(n: usize, seed: u64, mu_pos: f64) -> (Vec<[f32; 2]>, Vec<bool>) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let pos = rng.bernoulli(0.3);
            let mu = if pos { mu_pos } else { 0.0 };
            rows.push([
                dist::normal(&mut rng, mu, 1.0) as f32,
                dist::normal(&mut rng, 0.0, 1.0) as f32, // uninformative
            ]);
            y.push(pos);
        }
        (rows, y)
    }

    #[test]
    fn separates_shifted_gaussians() {
        let (rows, y) = gaussian_data(4_000, 1, 3.0);
        let nb = GaussianNaiveBayes::fit(rows.iter().map(|r| r.as_slice()), &y);
        let (test, ty) = gaussian_data(1_000, 2, 3.0);
        let correct = test
            .iter()
            .zip(&ty)
            .filter(|(r, &label)| (nb.score(r.as_slice()) >= 0.5) == label)
            .count();
        let acc = correct as f64 / ty.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn scores_are_probabilities_and_monotone_in_log_odds() {
        let (rows, y) = gaussian_data(500, 3, 2.0);
        let nb = GaussianNaiveBayes::fit(rows.iter().map(|r| r.as_slice()), &y);
        let mut prev: Option<(f64, f32)> = None;
        let mut pts: Vec<(f64, f32)> = rows
            .iter()
            .map(|r| (nb.log_odds(r.as_slice()), nb.score(r.as_slice())))
            .collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (lo, s) in pts {
            assert!((0.0..=1.0).contains(&s));
            if let Some((plo, ps)) = prev {
                assert!(lo >= plo);
                assert!(s >= ps, "score must be monotone in log-odds");
            }
            prev = Some((lo, s));
        }
    }

    #[test]
    fn prior_shifts_the_boundary() {
        // Same likelihoods, rarer positives → lower scores.
        let mut rows = Vec::new();
        let mut y_balanced = Vec::new();
        let mut y_rare = Vec::new();
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        for i in 0..1_000 {
            rows.push([dist::normal(&mut rng, 0.0, 1.0) as f32, 0.0]);
            y_balanced.push(i % 2 == 0);
            y_rare.push(i % 10 == 0);
        }
        let nb_b = GaussianNaiveBayes::fit(rows.iter().map(|r| r.as_slice()), &y_balanced);
        let nb_r = GaussianNaiveBayes::fit(rows.iter().map(|r| r.as_slice()), &y_rare);
        // Feature is uninformative in both, so the score ≈ the prior.
        let probe = [0.0f32, 0.0];
        assert!(nb_r.score(&probe) < nb_b.score(&probe));
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let rows: Vec<[f32; 1]> = vec![[5.0]; 100];
        let y: Vec<bool> = (0..100).map(|i| i < 30).collect();
        let nb = GaussianNaiveBayes::fit(rows.iter().map(|r| r.as_slice()), &y);
        let s = nb.score(&[5.0]);
        assert!(s.is_finite());
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn rejects_single_class() {
        let rows: Vec<[f32; 1]> = vec![[0.0]; 5];
        GaussianNaiveBayes::fit(rows.iter().map(|r| r.as_slice()), &[true; 5]);
    }
}
