//! Lock-free epoch publication of immutable model snapshots.
//!
//! The serving hot path reads the current snapshot on **every** score
//! request; the model writer replaces it only every `snapshot_every`
//! applied samples. An [`EpochCell`] makes that read wait-free in the
//! common case — two atomic ops and an `Arc` clone, no mutex, no
//! writer-blocks-readers window — while the rare publish flips between two
//! slots:
//!
//! * readers register on a slot (`readers` counter), then re-validate that
//!   the slot is still the active one before touching its contents; a
//!   reader that lost the race unregisters and retries;
//! * the single writer prepares the *inactive* slot — spinning until
//!   stragglers registered there from a previous epoch have drained —
//!   writes the new `Arc`, and only then flips the active index.
//!
//! The invariant making the `unsafe` sound: a slot is mutated only while it
//! is inactive **and** has zero registered readers, and a reader
//! dereferences a slot only after observing it active *while registered* —
//! at which point the writer cannot start mutating it until the reader
//! unregisters (the drain loop sees its registration).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

struct Slot<T> {
    /// Readers currently registered on this slot.
    readers: AtomicUsize,
    /// The published value; `None` only for the initially inactive slot.
    value: UnsafeCell<Option<Arc<T>>>,
}

/// A double-buffered, lock-free cell holding the current `Arc<T>` epoch.
///
/// Any number of concurrent [`load`](Self::load)ers; stores must be
/// serialized by the caller (the serve engine has exactly one model-writer
/// thread, which is the only storer).
pub struct EpochCell<T> {
    slots: [Slot<T>; 2],
    /// Index of the slot readers should use.
    active: AtomicUsize,
}

// SAFETY: sending the cell moves both slots' `Option<Arc<T>>` values to the
// receiving thread; `Arc<T>` is `Send` when `T: Send + Sync`, and nothing
// else in the cell is thread-affine, so the usual `Arc` bounds apply.
unsafe impl<T: Send + Sync> Send for EpochCell<T> {}
// SAFETY: shared access is governed by the two-slot protocol (module docs):
// the `UnsafeCell` contents are mutated only by the single storer, only on
// the inactive slot, and only after its reader count has drained to zero —
// readers dereference a slot solely while registered on it and validated as
// active, so no `&`/`&mut` overlap can occur across threads.
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T> EpochCell<T> {
    /// The slot for `idx`, which every caller derives from `self.active`
    /// (always 0 or 1).
    fn slot(&self, idx: usize) -> &Slot<T> {
        // lint: allow(panic_path, reason="idx comes from `active` or `1 - active`, both always 0|1 for a 2-slot array")
        &self.slots[idx]
    }

    /// A cell initially publishing `value`.
    pub fn new(value: Arc<T>) -> Self {
        Self {
            slots: [
                Slot {
                    readers: AtomicUsize::new(0),
                    value: UnsafeCell::new(Some(value)),
                },
                Slot {
                    readers: AtomicUsize::new(0),
                    value: UnsafeCell::new(None),
                },
            ],
            active: AtomicUsize::new(0),
        }
    }

    /// The current epoch's value. Wait-free unless a publish lands between
    /// registration and validation, in which case the load retries.
    pub fn load(&self) -> Arc<T> {
        loop {
            let idx = self.active.load(SeqCst);
            self.slot(idx).readers.fetch_add(1, SeqCst);
            // Re-validate under registration: if the slot is still active,
            // the writer cannot be mutating it (it only writes the inactive
            // slot) nor start to before we unregister (the drain loop sees
            // our registration, which precedes this load in the SeqCst
            // order).
            if self.active.load(SeqCst) == idx {
                // SAFETY: we observed slot `idx` active *while registered*
                // on it, so the single storer — which mutates only the
                // inactive slot, and only after the slot's reader count
                // drains to zero — cannot touch this `UnsafeCell` until
                // our `fetch_sub` below; the shared `&` we read through is
                // therefore never aliased by a mutation.
                let value = unsafe { (*self.slot(idx).value.get()).clone() };
                self.slot(idx).readers.fetch_sub(1, SeqCst);
                if let Some(v) = value {
                    return v;
                }
                // Unreachable in practice (the active slot always holds
                // Some), but retrying is the safe response.
            } else {
                self.slot(idx).readers.fetch_sub(1, SeqCst);
            }
        }
    }

    /// Publish a new epoch. Must not be called concurrently with itself
    /// (single-writer; the model writer thread owns this).
    pub fn store(&self, value: Arc<T>) {
        let next = 1 - self.active.load(SeqCst);
        // Drain stragglers: readers still registered on the inactive slot
        // either validated it during a *previous* epoch (and are finishing
        // an Arc clone — microseconds) or are about to fail validation and
        // unregister. Either way this terminates quickly; publishes are
        // rare (every `snapshot_every` samples), loads are constant-time.
        while self.slot(next).readers.load(SeqCst) != 0 {
            std::hint::spin_loop();
        }
        // SAFETY: slot `next` is inactive (readers route to `active`, which
        // still names the other slot until the store below) and the drain
        // loop observed zero registered readers; any reader registering
        // after that observation will fail re-validation without touching
        // the cell. Exclusive mutation is guaranteed because `store` is
        // single-writer by contract.
        unsafe {
            *self.slot(next).value.get() = Some(value);
        }
        self.active.store(next, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn load_returns_initial_and_latest_value() {
        let cell = EpochCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        cell.store(Arc::new(3));
        cell.store(Arc::new(4));
        assert_eq!(*cell.load(), 4);
    }

    #[test]
    fn concurrent_loads_never_observe_torn_or_stale_freed_state() {
        // Readers hammer load() while the writer publishes monotonically
        // increasing epochs; every observed pair must be internally
        // consistent and epochs must never go backwards per reader.
        let cell = Arc::new(EpochCell::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut last = 0u64;
                    let mut observed = 0u64;
                    loop {
                        let v = cell.load();
                        assert_eq!(v.0, v.1, "torn epoch: {v:?}");
                        assert!(v.0 >= last, "epoch went backwards");
                        last = v.0;
                        observed += 1;
                        // Check stop *after* loading so every reader
                        // exercises at least one load even if it is first
                        // scheduled after the writer finished.
                        if stop.load(SeqCst) {
                            return observed;
                        }
                    }
                })
            })
            .collect();
        for epoch in 1..=10_000u64 {
            cell.store(Arc::new((epoch, epoch)));
        }
        stop.store(true, SeqCst);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader made no progress");
        }
        assert_eq!(cell.load().0, 10_000);
    }
}
