//! The `orfpredd` daemon loop: line-delimited JSON over stdin/stdout plus
//! an optional TCP listener serving the same protocol.
//!
//! * stdin (or whatever `BufRead` is passed in) carries the primary event
//!   stream; alarms and replies are written to the paired output, one JSON
//!   object per line;
//! * TCP connections each get the full protocol too — typically used for
//!   ad-hoc `score` / `stats` probes against a daemon that is busy
//!   ingesting; alarms triggered by TCP-ingested samples still flow to the
//!   primary output;
//! * `sample` / `failure` events are not acknowledged individually (the
//!   stream is high-rate; backpressure is exerted by blocking reads);
//! * on `shutdown` or end-of-input the engine drains, remaining alarms are
//!   flushed, and — when a default checkpoint path is configured — the
//!   final state is checkpointed atomically.

use crate::checkpoint::Checkpoint;
use crate::engine::{Engine, Finished, ServeConfig};
use crate::protocol::{pad_features, Request, Response};
use orfpred_smart::gen::FleetEvent;
use orfpred_smart::record::DiskDay;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Daemon configuration: the engine plus its I/O endpoints.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Engine configuration.
    pub serve: ServeConfig,
    /// Optional TCP listen address (e.g. `127.0.0.1:7077`).
    pub listen: Option<String>,
    /// Default checkpoint file: restored from at startup when it exists,
    /// written at shutdown and by path-less `checkpoint` requests.
    pub checkpoint_path: Option<PathBuf>,
    /// Optional telemetry-store directory replayed at startup before the
    /// daemon goes live. Events already covered by the restored
    /// checkpoint's `events_ingested` cursor are skipped, so a restarted
    /// daemon catches up on exactly the store tail it missed.
    pub catchup_store: Option<PathBuf>,
}

/// Build the engine, restoring from the configured checkpoint if present.
/// Returns the engine plus the restored `events_ingested` cursor (0 when
/// starting fresh) used by the store catch-up replay.
///
/// A damaged checkpoint (torn write, truncation, inconsistent state) is a
/// hard startup error with the typed `CheckpointError` message — silently
/// starting fresh would discard the operator's serving state.
fn start_engine(cfg: &DaemonConfig) -> Result<(Engine, u64), String> {
    match &cfg.checkpoint_path {
        Some(path) if path.exists() => {
            let ck = Checkpoint::load(path).map_err(|e| e.to_string())?;
            // lint: allow(checkpoint_coverage, reason="read-only peek at the catch-up cursor; Engine::restore consumes the full checkpoint on the next line")
            let Checkpoint::Online {
                events_ingested, ..
            } = &ck;
            let cursor = events_ingested.unwrap_or(0);
            Ok((Engine::restore(&cfg.serve, ck), cursor))
        }
        _ => Ok((Engine::new(&cfg.serve), 0)),
    }
}

/// Replay the tail of a telemetry store into the engine: skip the first
/// `skip` events (already applied before the checkpoint was taken), ingest
/// the rest. Returns the number of events applied. A corrupt store is a
/// hard startup error — serving from a model that silently missed history
/// is worse than refusing to start.
fn catch_up(engine: &Engine, dir: &Path, skip: u64) -> Result<u64, String> {
    let store = orfpred_store::Store::open(dir).map_err(|e| e.to_string())?;
    let mut applied = 0u64;
    for (idx, ev) in (0u64..).zip(store.events()) {
        let ev = ev.map_err(|e| e.to_string())?;
        if idx < skip {
            continue;
        }
        engine.ingest(ev).map_err(|e| format!("catch-up: {e}"))?;
        applied += 1;
    }
    engine.flush();
    Ok(applied)
}

/// Serve one request against the engine. Returns the direct replies
/// (alarms are drained separately by the caller that owns the output).
fn handle(engine: &Engine, req: Request, default_ckpt: Option<&PathBuf>) -> Vec<Response> {
    match req {
        Request::Sample {
            disk_id,
            day,
            features,
        } => {
            // Wire samples carry *base* rows: the engine's window stage
            // appends any derived columns during ingest.
            let rec = DiskDay {
                disk_id,
                day,
                features: pad_features(&features, engine.schema().n_base_features()),
            };
            match engine.ingest(FleetEvent::Sample(rec)) {
                Ok(()) => Vec::new(),
                Err(e) => vec![Response::Error {
                    message: e.to_string(),
                }],
            }
        }
        Request::Failure { disk_id, day } => {
            match engine.ingest(FleetEvent::Failure { disk_id, day }) {
                Ok(()) => Vec::new(),
                Err(e) => vec![Response::Error {
                    message: e.to_string(),
                }],
            }
        }
        // Stateless score probes are padded to the *full* width: a client
        // may supply derived columns itself; missing ones read as zero.
        Request::Score { features } => vec![Response::Score {
            score: engine.score(&pad_features(&features, engine.n_features())),
        }],
        Request::Stats => vec![Response::Stats(Box::new(engine.stats()))],
        Request::Checkpoint { path } => {
            let target = path.map(PathBuf::from).or_else(|| default_ckpt.cloned());
            match target {
                None => vec![Response::Error {
                    message: "no checkpoint path given and no default configured".into(),
                }],
                Some(p) => match engine.checkpoint(&p) {
                    Ok(()) => vec![Response::Ok {
                        what: format!("checkpoint {}", p.display()),
                    }],
                    Err(e) => vec![Response::Error { message: e }],
                },
            }
        }
        Request::Reshard { .. } => vec![Response::Error {
            message: "live resharding requires the multi-tenant daemon (orfpredd --tenant ...)"
                .into(),
        }],
        Request::Shutdown => vec![Response::Ok {
            what: "shutdown".into(),
        }],
    }
}

fn write_responses(out: &mut impl Write, responses: &[Response]) -> Result<(), String> {
    for r in responses {
        writeln!(out, "{}", r.to_line()).map_err(|e| format!("write output: {e}"))?;
    }
    Ok(())
}

fn drain_alarms(engine: &Engine, out: &mut impl Write) -> Result<(), String> {
    for alarm in engine.take_alarms() {
        writeln!(out, "{}", Response::Alarm(alarm).to_line())
            .map_err(|e| format!("write output: {e}"))?;
    }
    Ok(())
}

/// Run the daemon until `shutdown` or end of input. Returns the finished
/// engine state (alarms in stream order plus the final checkpoint).
pub fn run(
    cfg: &DaemonConfig,
    input: impl BufRead,
    mut output: impl Write,
) -> Result<Finished, String> {
    let (engine, cursor) = start_engine(cfg)?;
    let engine = Arc::new(engine);

    if let Some(dir) = &cfg.catchup_store {
        let applied = catch_up(&engine, dir, cursor)?;
        drain_alarms(&engine, &mut output)?;
        let note = Response::Ok {
            what: format!(
                "catch-up: applied {applied} events from {} (skipped {cursor})",
                dir.display()
            ),
        };
        write_responses(&mut output, &[note])?;
        output.flush().map_err(|e| format!("flush output: {e}"))?;
    }

    if let Some(addr) = &cfg.listen {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let engine = Arc::clone(&engine);
        let default_ckpt = cfg.checkpoint_path.clone();
        std::thread::Builder::new()
            .name("orfpredd-accept".into())
            .spawn(move || accept_loop(&listener, &engine, default_ckpt.as_ref()))
            .map_err(|e| format!("spawn acceptor: {e}"))?;
    }

    for (line_idx, line) in (0_u64..).zip(input.lines()) {
        let mut line = line.map_err(|e| format!("read input: {e}"))?;
        // Fault point: the testkit corrupts chosen input lines here to
        // prove garbage on the wire yields error responses, not state
        // damage (tests/fault_protocol.rs).
        if let Some(mangled) = cfg.serve.injector.mangle_line(line_idx, &line) {
            line = mangled;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut shutdown = false;
        let responses = match Request::parse(&line) {
            Ok(req) => {
                shutdown = matches!(req, Request::Shutdown);
                handle(&engine, req, cfg.checkpoint_path.as_ref())
            }
            Err(e) => vec![Response::Error {
                message: e.to_string(),
            }],
        };
        drain_alarms(&engine, &mut output)?;
        write_responses(&mut output, &responses)?;
        output.flush().map_err(|e| format!("flush output: {e}"))?;
        if shutdown {
            break;
        }
    }

    engine.flush();
    drain_alarms(&engine, &mut output)?;
    output.flush().map_err(|e| format!("flush output: {e}"))?;
    let finished = engine.finish().map_err(|e| format!("shutdown: {e}"))?;
    if let Some(path) = &cfg.checkpoint_path {
        finished
            .checkpoint
            .save_atomic(path)
            .map_err(|e| e.to_string())?;
    }
    Ok(finished)
}

/// Accept TCP connections and serve each on its own thread. Connection
/// threads outlive `run` only until their peer hangs up; after engine
/// shutdown their requests fail with protocol errors.
fn accept_loop(listener: &TcpListener, engine: &Arc<Engine>, default_ckpt: Option<&PathBuf>) {
    for conn in listener.incoming() {
        let Ok(stream) = conn else { return };
        let engine = Arc::clone(engine);
        let default_ckpt = default_ckpt.cloned();
        let _ = std::thread::Builder::new()
            .name("orfpredd-conn".into())
            .spawn(move || {
                let reader = BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => return,
                });
                let mut writer = stream;
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    if line.trim().is_empty() {
                        continue;
                    }
                    let responses = match Request::parse(&line) {
                        Ok(Request::Shutdown) => vec![Response::Error {
                            message: "shutdown is only accepted on the primary input".into(),
                        }],
                        Ok(req) => handle(&engine, req, default_ckpt.as_ref()),
                        Err(e) => vec![Response::Error {
                            message: e.to_string(),
                        }],
                    };
                    if write_responses(&mut writer, &responses).is_err() || writer.flush().is_err()
                    {
                        break;
                    }
                }
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_core::OnlinePredictorConfig;
    use std::io::Cursor;

    fn daemon_cfg() -> DaemonConfig {
        let mut p = OnlinePredictorConfig::new(vec![0, 1], 5);
        p.orf.n_trees = 3;
        p.orf.warmup_age = 0;
        p.orf.min_parent_size = 10.0;
        p.orf.lambda_neg = 0.5;
        let mut serve = ServeConfig::new(p);
        serve.n_shards = 2;
        DaemonConfig {
            serve,
            listen: None,
            checkpoint_path: None,
            catchup_store: None,
        }
    }

    fn run_script(cfg: &DaemonConfig, script: &str) -> (Finished, Vec<String>) {
        let mut out = Vec::new();
        let fin = run(cfg, Cursor::new(script.to_string()), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        (fin, text.lines().map(str::to_string).collect())
    }

    #[test]
    fn script_drives_the_full_protocol() {
        let dir = std::env::temp_dir().join("orfpred_daemon_test_ckpt.json");
        let mut script = String::new();
        for day in 0..20 {
            script.push_str(&format!(
                "{{\"type\":\"sample\",\"disk_id\":1,\"day\":{day},\"features\":[{day},1.0]}}\n"
            ));
        }
        script.push_str("{\"type\":\"failure\",\"disk_id\":1,\"day\":20}\n");
        script.push_str("{\"type\":\"score\",\"features\":[5.0,1.0]}\n");
        script.push_str("{\"type\":\"stats\"}\n");
        script.push_str(&format!(
            "{{\"type\":\"checkpoint\",\"path\":\"{}\"}}\n",
            dir.display()
        ));
        script.push_str("{\"type\":\"shutdown\"}\n");

        let (fin, lines) = run_script(&daemon_cfg(), &script);
        assert!(lines.iter().any(|l| l.contains("\"type\":\"score\"")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"type\":\"stats\"") && l.contains("\"samples_ingested\":20")));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"type\":\"ok\"") && l.contains("checkpoint")));
        assert!(lines
            .last()
            .is_some_and(|l| l.contains("\"what\":\"shutdown\"")));
        assert!(dir.exists(), "checkpoint file written");
        let Checkpoint::Online { labeller, .. } = Checkpoint::load(&dir).unwrap();
        assert_eq!(
            labeller.unwrap().n_pending(),
            0,
            "failure flushed the queue before the checkpoint"
        );
        let Checkpoint::Online { forest, .. } = fin.checkpoint;
        assert!(forest.samples_seen() > 0);
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn malformed_lines_get_error_responses_and_do_not_kill_the_daemon() {
        let script = "garbage\n{\"type\":\"nope\"}\n{\"type\":\"stats\"}\n";
        let (_fin, lines) = run_script(&daemon_cfg(), script);
        let errors = lines
            .iter()
            .filter(|l| l.contains("\"type\":\"error\""))
            .count();
        assert_eq!(errors, 2);
        assert!(lines.iter().any(|l| l.contains("\"type\":\"stats\"")));
    }

    #[test]
    fn restart_from_default_checkpoint_resumes() {
        let path = std::env::temp_dir().join("orfpred_daemon_restart_test.json");
        std::fs::remove_file(&path).ok();
        let mut cfg = daemon_cfg();
        cfg.checkpoint_path = Some(path.clone());

        let mut first = String::new();
        for day in 0..10 {
            first.push_str(&format!(
                "{{\"type\":\"sample\",\"disk_id\":2,\"day\":{day},\"features\":[1.0,{day}]}}\n"
            ));
        }
        let (_f, _) = run_script(&cfg, &first); // EOF shutdown writes the default checkpoint
        assert!(path.exists());

        // Second run restores: the disk's queue still holds the last 7 days.
        let (fin, _) = run_script(&cfg, "{\"type\":\"stats\"}\n{\"type\":\"shutdown\"}\n");
        let Checkpoint::Online {
            labeller, next_seq, ..
        } = fin.checkpoint;
        assert_eq!(labeller.unwrap().n_pending(), 7);
        assert!(next_seq.unwrap() > 10, "sequence numbers continued");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn store_catch_up_replays_only_the_missed_tail() {
        use orfpred_smart::gen::{FleetConfig, ScalePreset};

        let base =
            std::env::temp_dir().join(format!("orfpred_daemon_catchup_{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        std::fs::create_dir_all(&base).unwrap();
        let store_dir = base.join("store");
        let ckpt = base.join("ck.json");

        let mut fleet = FleetConfig::sta(ScalePreset::Tiny, 7);
        fleet.n_good = 6;
        fleet.n_failed = 2;
        fleet.duration_days = 60;
        let meta = orfpred_store::record_fleet(
            &store_dir,
            &fleet,
            orfpred_store::StoreConfig {
                segment_rows: 64,
                ..Default::default()
            },
        )
        .unwrap();
        let store = orfpred_store::Store::open(&store_dir).unwrap();
        let total = store.events().count() as u64;
        assert!(total > meta.total_rows, "failures add events beyond rows");

        let mut cfg = daemon_cfg();
        cfg.checkpoint_path = Some(ckpt.clone());
        cfg.catchup_store = Some(store_dir.clone());

        // First run: fresh engine, the whole store is the tail.
        let (fin, lines) = run_script(&cfg, "{\"type\":\"shutdown\"}\n");
        assert!(
            lines
                .iter()
                .any(|l| l.contains(&format!("applied {total} events")) && l.contains("skipped 0")),
            "catch-up note missing: {lines:?}"
        );
        let Checkpoint::Online {
            events_ingested, ..
        } = fin.checkpoint;
        assert_eq!(events_ingested, Some(total));

        // Second run restores the checkpoint: the cursor covers the whole
        // store, so catch-up applies nothing.
        let (_fin, lines) = run_script(&cfg, "{\"type\":\"shutdown\"}\n");
        assert!(
            lines
                .iter()
                .any(|l| l.contains("applied 0 events") && l.contains(&format!("skipped {total}"))),
            "tail-only catch-up missing: {lines:?}"
        );
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn tcp_probes_answer_score_and_stats() {
        use std::io::{BufRead as _, Write as _};
        let mut cfg = daemon_cfg();
        cfg.listen = Some("127.0.0.1:0".into());
        // Bind ourselves to learn a free port, then hand the address over.
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        cfg.listen = Some(addr.clone());

        let (done_tx, done_rx) = std::sync::mpsc::sync_channel(1);
        let (input_tx, input_rx) = std::sync::mpsc::sync_channel::<String>(16);
        let handle = std::thread::spawn(move || {
            // A reader that blocks on a channel, so the daemon stays alive
            // until the test sends shutdown.
            struct ChanRead(std::sync::mpsc::Receiver<String>, Vec<u8>);
            impl std::io::Read for ChanRead {
                fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                    while self.1.is_empty() {
                        match self.0.recv() {
                            Ok(s) => self.1.extend_from_slice(s.as_bytes()),
                            Err(_) => return Ok(0),
                        }
                    }
                    let n = buf.len().min(self.1.len());
                    buf[..n].copy_from_slice(&self.1[..n]);
                    self.1.drain(..n);
                    std::io::Result::Ok(n)
                }
            }
            let r = run(
                &cfg,
                BufReader::new(ChanRead(input_rx, Vec::new())),
                Vec::new(),
            );
            done_tx.send(r.is_ok()).ok();
        });

        // Wait for the listener, then probe over TCP.
        let mut conn = None;
        for _ in 0..100 {
            match std::net::TcpStream::connect(&addr) {
                Ok(c) => {
                    conn = Some(c);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        let mut conn = conn.expect("daemon listener came up");
        writeln!(conn, "{{\"type\":\"score\",\"features\":[0.0,0.0]}}").unwrap();
        writeln!(conn, "{{\"type\":\"stats\"}}").unwrap();
        writeln!(conn, "{{\"type\":\"shutdown\"}}").unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"type\":\"score\""), "got: {line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"type\":\"stats\""), "got: {line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("primary input"),
            "TCP shutdown must be refused: {line}"
        );
        drop(reader);

        input_tx.send("{\"type\":\"shutdown\"}\n".into()).unwrap();
        drop(input_tx);
        assert!(done_rx.recv().unwrap(), "daemon exited cleanly");
        handle.join().unwrap();
    }
}
