//! Line-delimited JSON wire protocol.
//!
//! Every request and response is one JSON object per line with a `type`
//! tag. Requests:
//!
//! ```text
//! {"type":"sample","disk_id":17,"day":212,"features":[...48 floats...]}
//! {"type":"failure","disk_id":17,"day":213}
//! {"type":"score","features":[...48 floats...]}
//! {"type":"stats"}
//! {"type":"checkpoint","path":"/var/lib/orfpred/model.json"}
//! {"type":"shutdown"}
//! ```
//!
//! Responses: `{"type":"alarm",...}` (emitted asynchronously as the model
//! writer applies samples), `{"type":"score","score":s}`,
//! `{"type":"stats",...counters...}`, `{"type":"ok","what":...}`, and
//! `{"type":"error","message":...}`.
//!
//! `type` is a Rust keyword, so these types use hand-written `Value`-tree
//! conversions rather than the derive.

use crate::stats::StatsReport;
use orfpred_core::Alarm;
use serde::{Serialize, Value};

/// One parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// A daily SMART snapshot to ingest.
    Sample {
        /// Reporting disk.
        disk_id: u32,
        /// Observation day.
        day: u16,
        /// Raw feature row; padded/truncated to the 48-column layout.
        features: Vec<f32>,
    },
    /// The disk stopped responding.
    Failure {
        /// Failed disk.
        disk_id: u32,
        /// Day of failure.
        day: u16,
    },
    /// Score a feature row against the latest model snapshot (read-only).
    Score {
        /// Raw feature row.
        features: Vec<f32>,
    },
    /// Fetch live counters.
    Stats,
    /// Write an atomic checkpoint. Without `path` the daemon uses its
    /// configured default.
    Checkpoint {
        /// Target file, if overriding the daemon default.
        path: Option<String>,
    },
    /// Drain and exit.
    Shutdown,
}

/// Copy an arbitrary-length row into the serving schema's `width`-column
/// layout (short rows are zero-padded, long ones truncated).
pub fn pad_features(row: &[f32], width: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; width];
    let n = row.len().min(width);
    out[..n].copy_from_slice(&row[..n]);
    out
}

fn field<'v>(fields: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn num_u64(v: Option<&Value>, what: &str) -> Result<u64, String> {
    match v {
        Some(Value::Int(i)) => u64::try_from(*i).map_err(|_| format!("`{what}` out of range")),
        _ => Err(format!("`{what}` must be a non-negative integer")),
    }
}

fn floats(v: Option<&Value>, what: &str) -> Result<Vec<f32>, String> {
    let Some(Value::Arr(items)) = v else {
        return Err(format!("`{what}` must be an array of numbers"));
    };
    items
        .iter()
        .map(|item| match item {
            Value::Int(i) => Ok(*i as f32),
            Value::Float(f) => Ok(*f as f32),
            Value::Null => Ok(f32::NAN),
            _ => Err(format!("`{what}` must contain only numbers")),
        })
        .collect()
}

impl Request {
    /// Parse one protocol line.
    pub fn parse(line: &str) -> Result<Self, String> {
        let v = serde_json::value_from_str(line).map_err(|e| format!("bad JSON: {e}"))?;
        let Value::Obj(fields) = &v else {
            return Err("request must be a JSON object".into());
        };
        let Some(Value::Str(tag)) = field(fields, "type") else {
            return Err("request needs a string `type` field".into());
        };
        match tag.as_str() {
            "sample" => Ok(Request::Sample {
                disk_id: num_u64(field(fields, "disk_id"), "disk_id")? as u32,
                day: num_u64(field(fields, "day"), "day")? as u16,
                features: floats(field(fields, "features"), "features")?,
            }),
            "failure" => Ok(Request::Failure {
                disk_id: num_u64(field(fields, "disk_id"), "disk_id")? as u32,
                day: num_u64(field(fields, "day"), "day")? as u16,
            }),
            "score" => Ok(Request::Score {
                features: floats(field(fields, "features"), "features")?,
            }),
            "stats" => Ok(Request::Stats),
            "checkpoint" => Ok(Request::Checkpoint {
                path: match field(fields, "path") {
                    Some(Value::Str(s)) => Some(s.clone()),
                    None | Some(Value::Null) => None,
                    _ => return Err("`path` must be a string".into()),
                },
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type `{other}`")),
        }
    }

    /// Render as a protocol line (no trailing newline); handy for clients
    /// and tests.
    pub fn to_line(&self) -> String {
        let obj = match self {
            Request::Sample {
                disk_id,
                day,
                features,
            } => vec![
                ("type".into(), Value::Str("sample".into())),
                ("disk_id".into(), Value::Int(i128::from(*disk_id))),
                ("day".into(), Value::Int(i128::from(*day))),
                ("features".into(), features.ser()),
            ],
            Request::Failure { disk_id, day } => vec![
                ("type".into(), Value::Str("failure".into())),
                ("disk_id".into(), Value::Int(i128::from(*disk_id))),
                ("day".into(), Value::Int(i128::from(*day))),
            ],
            Request::Score { features } => vec![
                ("type".into(), Value::Str("score".into())),
                ("features".into(), features.ser()),
            ],
            Request::Stats => vec![("type".into(), Value::Str("stats".into()))],
            Request::Checkpoint { path } => {
                let mut f = vec![("type".into(), Value::Str("checkpoint".into()))];
                if let Some(p) = path {
                    f.push(("path".into(), Value::Str(p.clone())));
                }
                f
            }
            Request::Shutdown => vec![("type".into(), Value::Str("shutdown".into()))],
        };
        serde_json::value_to_string(&Value::Obj(obj))
    }
}

/// One response line.
#[derive(Clone, Debug)]
pub enum Response {
    /// An at-risk alarm (emitted asynchronously while samples apply).
    Alarm(Alarm),
    /// Answer to a `score` request.
    Score {
        /// Ensemble vote of the latest snapshot.
        score: f32,
    },
    /// Answer to a `stats` request (boxed: the report dwarfs every other
    /// variant now that it carries the prep counters).
    Stats(Box<StatsReport>),
    /// Generic acknowledgement (`checkpoint`, `shutdown`; `sample` and
    /// `failure` are not acked individually — alarms are the feedback).
    Ok {
        /// What was acknowledged.
        what: String,
    },
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl Response {
    /// Render as a protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let obj = match self {
            Response::Alarm(a) => vec![
                ("type".into(), Value::Str("alarm".into())),
                ("disk_id".into(), Value::Int(i128::from(a.disk_id))),
                ("day".into(), Value::Int(i128::from(a.day))),
                ("score".into(), a.score.ser()),
            ],
            Response::Score { score } => vec![
                ("type".into(), Value::Str("score".into())),
                ("score".into(), score.ser()),
            ],
            Response::Stats(report) => {
                let mut f = vec![("type".into(), Value::Str("stats".into()))];
                match report.ser() {
                    Value::Obj(rest) => f.extend(rest),
                    // lint: allow(panic_path, reason="StatsReport is a struct, and the derived ser() for structs always yields Value::Obj; any other variant is a serde-layer bug worth dying loudly on")
                    _ => unreachable!("StatsReport serializes to an object"),
                }
                f
            }
            Response::Ok { what } => vec![
                ("type".into(), Value::Str("ok".into())),
                ("what".into(), Value::Str(what.clone())),
            ],
            Response::Error { message } => vec![
                ("type".into(), Value::Str("error".into())),
                ("message".into(), Value::Str(message.clone())),
            ],
        };
        serde_json::value_to_string(&Value::Obj(obj))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        let reqs = [
            Request::Sample {
                disk_id: 3,
                day: 17,
                features: vec![0.0, 1.5, -2.25],
            },
            Request::Failure {
                disk_id: 3,
                day: 18,
            },
            Request::Score {
                features: vec![1.0; 48],
            },
            Request::Stats,
            Request::Checkpoint { path: None },
            Request::Checkpoint {
                path: Some("/tmp/x.json".into()),
            },
            Request::Shutdown,
        ];
        for r in reqs {
            assert_eq!(Request::parse(&r.to_line()).unwrap(), r);
        }
    }

    #[test]
    fn unknown_and_malformed_inputs_error() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("[1,2]").is_err());
        assert!(Request::parse("{\"type\":\"frobnicate\"}").is_err());
        assert!(
            Request::parse("{\"type\":\"sample\",\"disk_id\":-1,\"day\":0,\"features\":[]}")
                .is_err()
        );
        assert!(Request::parse("{\"type\":\"sample\",\"disk_id\":1,\"day\":0}").is_err());
    }

    #[test]
    fn integer_features_are_accepted() {
        let r = Request::parse("{\"type\":\"score\",\"features\":[1,2.5,3]}").unwrap();
        assert_eq!(
            r,
            Request::Score {
                features: vec![1.0, 2.5, 3.0]
            }
        );
    }

    #[test]
    fn features_pad_and_truncate() {
        let padded = pad_features(&[1.0, 2.0], 48);
        assert_eq!(padded.len(), 48);
        assert_eq!(padded[0], 1.0);
        assert_eq!(padded[1], 2.0);
        assert!(padded[2..].iter().all(|&v| v == 0.0));
        let truncated = pad_features(&vec![7.0; 100], 28);
        assert_eq!(truncated.len(), 28);
        assert!(truncated.iter().all(|&v| v == 7.0));
    }

    #[test]
    fn responses_are_valid_single_line_json() {
        let rs = [
            Response::Alarm(Alarm {
                disk_id: 9,
                day: 4,
                score: 0.75,
            }),
            Response::Score { score: 0.5 },
            Response::Ok {
                what: "sample".into(),
            },
            Response::Error {
                message: "nope".into(),
            },
        ];
        for r in rs {
            let line = r.to_line();
            assert!(!line.contains('\n'));
            let v = serde_json::value_from_str(&line).unwrap();
            let Value::Obj(fields) = v else {
                panic!("object")
            };
            assert!(field(&fields, "type").is_some());
        }
    }

    #[test]
    fn alarm_response_shape_is_stable() {
        let line = Response::Alarm(Alarm {
            disk_id: 1,
            day: 2,
            score: 0.5,
        })
        .to_line();
        assert_eq!(
            line,
            "{\"type\":\"alarm\",\"disk_id\":1,\"day\":2,\"score\":0.5}"
        );
    }
}
