//! Line-delimited JSON wire protocol.
//!
//! Every request and response is one JSON object per line with a `type`
//! tag. Requests:
//!
//! ```text
//! {"type":"sample","disk_id":17,"day":212,"features":[...48 floats...]}
//! {"type":"failure","disk_id":17,"day":213}
//! {"type":"score","features":[...48 floats...]}
//! {"type":"stats"}
//! {"type":"checkpoint","path":"/var/lib/orfpred/model.json"}
//! {"type":"shutdown"}
//! ```
//!
//! Responses: `{"type":"alarm",...}` (emitted asynchronously as the model
//! writer applies samples), `{"type":"score","score":s}`,
//! `{"type":"stats",...counters...}`, `{"type":"ok","what":...}`, and
//! `{"type":"error","message":...}`.
//!
//! `type` is a Rust keyword, so these types use hand-written `Value`-tree
//! conversions rather than the derive.

use crate::stats::StatsReport;
use orfpred_core::Alarm;
use serde::{Serialize, Value};
use serde_json::ValueRef;

/// Hard cap on one wire unit: a JSON line or a binary frame payload.
/// Anything larger is rejected with [`ProtocolError::Oversized`] before any
/// decoding work — a garbled length prefix must not allocate gigabytes.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Typed decode error shared by both wire formats (line-JSON and the
/// length-prefixed binary frames in `orfpred-fleet`). Every variant renders
/// to a stable human-readable message via `Display`, which is what goes
/// into the `{"type":"error"}` / `ERROR` frame reply.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtocolError {
    /// A line or frame exceeded [`MAX_FRAME_LEN`].
    Oversized {
        /// Claimed or actual size of the unit.
        len: usize,
        /// The cap it violated.
        max: usize,
    },
    /// Bytes that don't decode as the wire format at all (bad JSON, bad
    /// magic, truncated frame, non-object request...).
    Garbled(String),
    /// A syntactically valid unit with an unknown request tag or frame
    /// opcode.
    UnknownType(String),
    /// A required field is missing, mistyped, or out of range.
    BadField {
        /// Field (JSON key or frame slot) that failed.
        field: &'static str,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// Binary session opened with an incompatible wire version.
    Version {
        /// Version this daemon speaks.
        ours: u16,
        /// Version the client offered.
        theirs: u16,
    },
    /// Binary session opened against a tenant whose domain schema
    /// fingerprint doesn't match the client's.
    SchemaMismatch {
        /// Fingerprint of the tenant's schema.
        expected: u64,
        /// Fingerprint the client sent.
        got: u64,
    },
    /// The request names a tenant this daemon does not host.
    UnknownTenant(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds the {max}-byte cap")
            }
            ProtocolError::Garbled(why) => write!(f, "garbled input: {why}"),
            ProtocolError::UnknownType(tag) => write!(f, "unknown request type `{tag}`"),
            ProtocolError::BadField { field, reason } => write!(f, "`{field}` {reason}"),
            ProtocolError::Version { ours, theirs } => {
                write!(
                    f,
                    "wire version mismatch: daemon speaks v{ours}, client sent v{theirs}"
                )
            }
            ProtocolError::SchemaMismatch { expected, got } => write!(
                f,
                "schema fingerprint mismatch: tenant has {expected:#018x}, client sent {got:#018x}"
            ),
            ProtocolError::UnknownTenant(name) => write!(f, "unknown tenant `{name}`"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// One parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// A daily SMART snapshot to ingest.
    Sample {
        /// Reporting disk.
        disk_id: u32,
        /// Observation day.
        day: u16,
        /// Raw feature row; padded/truncated to the 48-column layout.
        features: Vec<f32>,
    },
    /// The disk stopped responding.
    Failure {
        /// Failed disk.
        disk_id: u32,
        /// Day of failure.
        day: u16,
    },
    /// Score a feature row against the latest model snapshot (read-only).
    Score {
        /// Raw feature row.
        features: Vec<f32>,
    },
    /// Fetch live counters.
    Stats,
    /// Write an atomic checkpoint. Without `path` the daemon uses its
    /// configured default.
    Checkpoint {
        /// Target file, if overriding the daemon default.
        path: Option<String>,
    },
    /// Change the tenant's shard count without a restart (multi-tenant
    /// daemon only; the single-tenant daemon refuses it).
    Reshard {
        /// New shard count (≥ 1).
        n_shards: usize,
    },
    /// Drain and exit.
    Shutdown,
}

/// Copy an arbitrary-length row into the serving schema's `width`-column
/// layout (short rows are zero-padded, long ones truncated).
pub fn pad_features(row: &[f32], width: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; width];
    let n = row.len().min(width);
    out[..n].copy_from_slice(&row[..n]);
    out
}

fn num_u64(v: Option<&ValueRef<'_>>, what: &'static str) -> Result<u64, ProtocolError> {
    match v {
        Some(ValueRef::Int(i)) => u64::try_from(*i).map_err(|_| ProtocolError::BadField {
            field: what,
            reason: "out of range",
        }),
        _ => Err(ProtocolError::BadField {
            field: what,
            reason: "must be a non-negative integer",
        }),
    }
}

fn floats(v: Option<&ValueRef<'_>>, what: &'static str) -> Result<Vec<f32>, ProtocolError> {
    let Some(ValueRef::Arr(items)) = v else {
        return Err(ProtocolError::BadField {
            field: what,
            reason: "must be an array of numbers",
        });
    };
    items
        .iter()
        .map(|item| match item {
            ValueRef::Int(i) => Ok(*i as f32),
            ValueRef::Float(f) => Ok(*f as f32),
            ValueRef::Null => Ok(f32::NAN),
            _ => Err(ProtocolError::BadField {
                field: what,
                reason: "must contain only numbers",
            }),
        })
        .collect()
}

impl Request {
    /// Parse one protocol line.
    pub fn parse(line: &str) -> Result<Self, ProtocolError> {
        Self::parse_with_tenant(line).map(|(_, req)| req)
    }

    /// Parse one protocol line, also extracting the optional `tenant`
    /// routing field used by the multi-tenant daemon. Field values borrow
    /// from `line` during parsing — the hot ingest path allocates only the
    /// `features` vector (and the tenant name when present).
    pub fn parse_with_tenant(line: &str) -> Result<(Option<String>, Self), ProtocolError> {
        if line.len() > MAX_FRAME_LEN {
            return Err(ProtocolError::Oversized {
                len: line.len(),
                max: MAX_FRAME_LEN,
            });
        }
        let v = serde_json::value_ref_from_str(line)
            .map_err(|e| ProtocolError::Garbled(format!("bad JSON: {e}")))?;
        if !matches!(v, ValueRef::Obj(_)) {
            return Err(ProtocolError::Garbled(
                "request must be a JSON object".into(),
            ));
        }
        let Some(ValueRef::Str(tag)) = v.get("type") else {
            return Err(ProtocolError::BadField {
                field: "type",
                reason: "must be a string",
            });
        };
        let tenant = match v.get("tenant") {
            Some(ValueRef::Str(name)) => Some(name.clone().into_owned()),
            None | Some(ValueRef::Null) => None,
            Some(_) => {
                return Err(ProtocolError::BadField {
                    field: "tenant",
                    reason: "must be a string",
                })
            }
        };
        let req = match tag.as_ref() {
            "sample" => Request::Sample {
                disk_id: num_u64(v.get("disk_id"), "disk_id")? as u32,
                day: num_u64(v.get("day"), "day")? as u16,
                features: floats(v.get("features"), "features")?,
            },
            "failure" => Request::Failure {
                disk_id: num_u64(v.get("disk_id"), "disk_id")? as u32,
                day: num_u64(v.get("day"), "day")? as u16,
            },
            "score" => Request::Score {
                features: floats(v.get("features"), "features")?,
            },
            "stats" => Request::Stats,
            "checkpoint" => Request::Checkpoint {
                path: match v.get("path") {
                    Some(ValueRef::Str(s)) => Some(s.clone().into_owned()),
                    None | Some(ValueRef::Null) => None,
                    _ => {
                        return Err(ProtocolError::BadField {
                            field: "path",
                            reason: "must be a string",
                        })
                    }
                },
            },
            "reshard" => {
                let n = num_u64(v.get("n_shards"), "n_shards")? as usize;
                if n == 0 {
                    return Err(ProtocolError::BadField {
                        field: "n_shards",
                        reason: "must be at least 1",
                    });
                }
                Request::Reshard { n_shards: n }
            }
            "shutdown" => Request::Shutdown,
            other => return Err(ProtocolError::UnknownType(other.to_string())),
        };
        Ok((tenant, req))
    }

    /// Render as a protocol line (no trailing newline); handy for clients
    /// and tests.
    pub fn to_line(&self) -> String {
        let obj = match self {
            Request::Sample {
                disk_id,
                day,
                features,
            } => vec![
                ("type".into(), Value::Str("sample".into())),
                ("disk_id".into(), Value::Int(i128::from(*disk_id))),
                ("day".into(), Value::Int(i128::from(*day))),
                ("features".into(), features.ser()),
            ],
            Request::Failure { disk_id, day } => vec![
                ("type".into(), Value::Str("failure".into())),
                ("disk_id".into(), Value::Int(i128::from(*disk_id))),
                ("day".into(), Value::Int(i128::from(*day))),
            ],
            Request::Score { features } => vec![
                ("type".into(), Value::Str("score".into())),
                ("features".into(), features.ser()),
            ],
            Request::Stats => vec![("type".into(), Value::Str("stats".into()))],
            Request::Checkpoint { path } => {
                let mut f = vec![("type".into(), Value::Str("checkpoint".into()))];
                if let Some(p) = path {
                    f.push(("path".into(), Value::Str(p.clone())));
                }
                f
            }
            Request::Reshard { n_shards } => vec![
                ("type".into(), Value::Str("reshard".into())),
                ("n_shards".into(), Value::Int(*n_shards as i128)),
            ],
            Request::Shutdown => vec![("type".into(), Value::Str("shutdown".into()))],
        };
        serde_json::value_to_string(&Value::Obj(obj))
    }
}

/// One response line.
#[derive(Clone, Debug)]
pub enum Response {
    /// An at-risk alarm (emitted asynchronously while samples apply).
    Alarm(Alarm),
    /// Answer to a `score` request.
    Score {
        /// Ensemble vote of the latest snapshot.
        score: f32,
    },
    /// Answer to a `stats` request (boxed: the report dwarfs every other
    /// variant now that it carries the prep counters).
    Stats(Box<StatsReport>),
    /// Generic acknowledgement (`checkpoint`, `shutdown`; `sample` and
    /// `failure` are not acked individually — alarms are the feedback).
    Ok {
        /// What was acknowledged.
        what: String,
    },
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl Response {
    /// Render as a protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let obj = match self {
            Response::Alarm(a) => vec![
                ("type".into(), Value::Str("alarm".into())),
                ("disk_id".into(), Value::Int(i128::from(a.disk_id))),
                ("day".into(), Value::Int(i128::from(a.day))),
                ("score".into(), a.score.ser()),
            ],
            Response::Score { score } => vec![
                ("type".into(), Value::Str("score".into())),
                ("score".into(), score.ser()),
            ],
            Response::Stats(report) => {
                let mut f = vec![("type".into(), Value::Str("stats".into()))];
                match report.ser() {
                    Value::Obj(rest) => f.extend(rest),
                    // lint: allow(panic_path, reason="StatsReport is a struct, and the derived ser() for structs always yields Value::Obj; any other variant is a serde-layer bug worth dying loudly on")
                    _ => unreachable!("StatsReport serializes to an object"),
                }
                f
            }
            Response::Ok { what } => vec![
                ("type".into(), Value::Str("ok".into())),
                ("what".into(), Value::Str(what.clone())),
            ],
            Response::Error { message } => vec![
                ("type".into(), Value::Str("error".into())),
                ("message".into(), Value::Str(message.clone())),
            ],
        };
        serde_json::value_to_string(&Value::Obj(obj))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        let reqs = [
            Request::Sample {
                disk_id: 3,
                day: 17,
                features: vec![0.0, 1.5, -2.25],
            },
            Request::Failure {
                disk_id: 3,
                day: 18,
            },
            Request::Score {
                features: vec![1.0; 48],
            },
            Request::Stats,
            Request::Checkpoint { path: None },
            Request::Checkpoint {
                path: Some("/tmp/x.json".into()),
            },
            Request::Reshard { n_shards: 6 },
            Request::Shutdown,
        ];
        for r in reqs {
            assert_eq!(Request::parse(&r.to_line()).unwrap(), r);
        }
    }

    #[test]
    fn unknown_and_malformed_inputs_error() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("[1,2]").is_err());
        assert!(Request::parse("{\"type\":\"frobnicate\"}").is_err());
        assert!(
            Request::parse("{\"type\":\"sample\",\"disk_id\":-1,\"day\":0,\"features\":[]}")
                .is_err()
        );
        assert!(Request::parse("{\"type\":\"sample\",\"disk_id\":1,\"day\":0}").is_err());
    }

    #[test]
    fn integer_features_are_accepted() {
        let r = Request::parse("{\"type\":\"score\",\"features\":[1,2.5,3]}").unwrap();
        assert_eq!(
            r,
            Request::Score {
                features: vec![1.0, 2.5, 3.0]
            }
        );
    }

    #[test]
    fn features_pad_and_truncate() {
        let padded = pad_features(&[1.0, 2.0], 48);
        assert_eq!(padded.len(), 48);
        assert_eq!(padded[0], 1.0);
        assert_eq!(padded[1], 2.0);
        assert!(padded[2..].iter().all(|&v| v == 0.0));
        let truncated = pad_features(&vec![7.0; 100], 28);
        assert_eq!(truncated.len(), 28);
        assert!(truncated.iter().all(|&v| v == 7.0));
    }

    #[test]
    fn responses_are_valid_single_line_json() {
        let rs = [
            Response::Alarm(Alarm {
                disk_id: 9,
                day: 4,
                score: 0.75,
            }),
            Response::Score { score: 0.5 },
            Response::Ok {
                what: "sample".into(),
            },
            Response::Error {
                message: "nope".into(),
            },
        ];
        for r in rs {
            let line = r.to_line();
            assert!(!line.contains('\n'));
            let v = serde_json::value_ref_from_str(&line).unwrap();
            assert!(v.get("type").is_some());
        }
    }

    #[test]
    fn parse_errors_are_typed() {
        assert!(matches!(
            Request::parse("not json"),
            Err(ProtocolError::Garbled(_))
        ));
        assert!(matches!(
            Request::parse("[1,2]"),
            Err(ProtocolError::Garbled(_))
        ));
        assert!(matches!(
            Request::parse("{\"type\":\"frobnicate\"}"),
            Err(ProtocolError::UnknownType(t)) if t == "frobnicate"
        ));
        assert!(matches!(
            Request::parse("{\"type\":\"sample\",\"disk_id\":-1,\"day\":0,\"features\":[]}"),
            Err(ProtocolError::BadField {
                field: "disk_id",
                ..
            })
        ));
        let oversized = format!(
            "{{\"type\":\"score\",\"features\":[{}1]}}",
            "0,".repeat(MAX_FRAME_LEN / 2)
        );
        assert!(matches!(
            Request::parse(&oversized),
            Err(ProtocolError::Oversized {
                max: MAX_FRAME_LEN,
                ..
            })
        ));
    }

    #[test]
    fn tenant_field_is_extracted_and_optional() {
        let (tenant, req) = Request::parse_with_tenant(
            "{\"type\":\"failure\",\"tenant\":\"sta\",\"disk_id\":7,\"day\":3}",
        )
        .unwrap();
        assert_eq!(tenant.as_deref(), Some("sta"));
        assert_eq!(req, Request::Failure { disk_id: 7, day: 3 });
        let (tenant, _) = Request::parse_with_tenant("{\"type\":\"stats\"}").unwrap();
        assert_eq!(tenant, None);
        assert!(matches!(
            Request::parse_with_tenant("{\"type\":\"stats\",\"tenant\":3}"),
            Err(ProtocolError::BadField {
                field: "tenant",
                ..
            })
        ));
    }

    #[test]
    fn alarm_response_shape_is_stable() {
        let line = Response::Alarm(Alarm {
            disk_id: 1,
            day: 2,
            score: 0.5,
        })
        .to_line();
        assert_eq!(
            line,
            "{\"type\":\"alarm\",\"disk_id\":1,\"day\":2,\"score\":0.5}"
        );
    }
}
