//! The sharded serving engine.
//!
//! ```text
//!                      ┌────────── shard 0 (labeller part) ──────┐
//!  ingest ── seq ──┬──▶│ queue │ Algorithm 2 labelling           │──┐
//!  (stamps global  │   └─────────────────────────────────────────┘  │   ┌─────────────┐
//!   sequence nums) │   ┌────────── shard 1 ──────────────────────┐  ├──▶│ model writer│──▶ alarms
//!                  ├──▶│   ...                                   │──┤   │ (reorders by│──▶ checkpoints
//!                  │   └─────────────────────────────────────────┘  │   │  seq; owns  │──▶ snapshot ─▶ score/stats
//!                  └──▶ ...                                         │   │  ORF+scaler)│
//!                                                                   └──▶└─────────────┘
//! ```
//!
//! Disks are partitioned over shards by a hash of `disk_id`; each shard
//! owns its slice of the per-disk labelling queues (Algorithm 2 state) and
//! turns raw events into labelled training samples. Labelled events flow
//! over bounded channels into the single **model writer**, which owns the
//! ORF and the streaming scaler.
//!
//! # Determinism
//!
//! The ingest path stamps every event with a global, contiguous sequence
//! number, and the writer applies events in exactly that order (a small
//! reorder buffer absorbs cross-shard skew; its size is bounded by the
//! channel capacities, which also provide backpressure). Because labelling
//! is a pure per-disk function and per-disk order is preserved (a disk maps
//! to one shard; channels are FIFO), the writer sees, for every event, the
//! same released training samples a single-threaded [`OnlinePredictor`]
//! replay would produce — and applies scaler updates, forest updates, and
//! scoring in the identical order. The alarm stream is therefore identical
//! for **any** shard count.
//!
//! # Checkpoints
//!
//! A checkpoint request takes one sequence number and is broadcast to all
//! shards; each shard forwards its labelling-queue snapshot at that point
//! in its stream. When the writer has applied everything before the
//! checkpoint's sequence number and holds all shard snapshots, the merged
//! state is written atomically. A restored engine resumes byte-identically:
//! feeding the same remaining events yields the same alarms and the same
//! final checkpoint bytes.
//!
//! [`OnlinePredictor`]: orfpred_core::OnlinePredictor

use crate::checkpoint::{Checkpoint, CHECKPOINT_VERSION};
use crate::epoch::EpochCell;
use crate::fault::{FaultInjector, NoFaults};
use crate::stats::{ServeStats, StatsReport};
use crossbeam::channel::{bounded, Receiver, Sender};
use orfpred_core::{
    AdaptiveState, Alarm, OnlineLabeller, OnlinePredictorConfig, OnlineRandomForest, ReleasedSample,
};
use orfpred_prep::Preprocessor;
use orfpred_smart::gen::FleetEvent;
use orfpred_smart::record::DiskDay;
use orfpred_smart::scale::OnlineMinMax;
use orfpred_smart::{DomainSchema, WindowStage};
use orfpred_trees::FrozenForest;
use orfpred_util::Matrix;
use parking_lot::Mutex;
use std::collections::{BinaryHeap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Route a disk to its shard. Stable across restarts (and used to
/// re-partition restored labelling queues), uniform via splitmix64.
pub fn shard_of(disk_id: u32, n_shards: usize) -> usize {
    let mut s = u64::from(disk_id) ^ 0x6f72_6670_7265_6421;
    (orfpred_util::rng::splitmix64(&mut s) % n_shards as u64) as usize
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The Algorithm 2 pipeline to run (hyper-parameters, window, alarm
    /// threshold, feature columns, seed).
    pub predictor: OnlinePredictorConfig,
    /// Number of labelling shards (threads). Alarms are identical for any
    /// value; more shards increase ingest throughput.
    pub n_shards: usize,
    /// Bounded capacity of each shard's input queue; a full queue blocks
    /// `ingest` (backpressure).
    pub queue_capacity: usize,
    /// Publish a fresh scoring snapshot every this many applied samples.
    pub snapshot_every: u64,
    /// Fault-injection points ([`NoFaults`] in production). Consulted by
    /// the shard loops (kill / delayed delivery) and the checkpoint
    /// writer; the testkit installs seeded fault plans here.
    pub injector: Arc<dyn FaultInjector>,
}

impl ServeConfig {
    /// Defaults: 4 shards, 1024-event queues, snapshot every 256 samples,
    /// no fault injection.
    pub fn new(predictor: OnlinePredictorConfig) -> Self {
        Self {
            predictor,
            n_shards: 4,
            queue_capacity: 1024,
            snapshot_every: 256,
            injector: Arc::new(NoFaults),
        }
    }
}

/// Immutable published model state; scoring reads never contend with the
/// writer (they load an `Arc` out of the epoch cell and work on frozen
/// state).
pub struct ModelSnapshot {
    /// Streaming scaler state at publication time.
    pub scaler: OnlineMinMax,
    /// The forest at publication time, compiled to the flat scoring
    /// representation (no candidate-test pools, no growth state).
    pub forest: FrozenForest,
    /// Alarm operating point.
    pub alarm_threshold: f32,
}

impl ModelSnapshot {
    /// Score a full-width feature row against this frozen model.
    pub fn score(&self, features: &[f32]) -> f32 {
        let mut scaled = vec![0.0f32; self.scaler.n_outputs()];
        self.scaler.transform_into(features, &mut scaled);
        self.forest.score(&scaled)
    }

    /// Score a batch of full-width feature rows through the frozen
    /// breadth-first batch kernel (the bulk path for catch-up scans and
    /// offline replay against a published snapshot). Bit-identical to
    /// mapping [`Self::score`] over `rows`.
    pub fn score_batch(&self, rows: &[&[f32]]) -> Vec<f32> {
        let mut scaled_row = vec![0.0f32; self.scaler.n_outputs()];
        let mut scaled = Matrix::with_capacity(self.scaler.n_outputs(), rows.len());
        for r in rows {
            self.scaler.transform_into(r, &mut scaled_row);
            scaled.push_row(&scaled_row);
        }
        self.forest.score_batch(&scaled)
    }
}

/// Why an engine call failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The engine has been shut down (or its writer died).
    ShuttingDown,
    /// A worker thread panicked; the engine's state is unrecoverable and
    /// the caller should restore from the last checkpoint.
    WorkerPanicked,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShuttingDown => f.write_str("serving engine is shutting down"),
            ServeError::WorkerPanicked => {
                f.write_str("a serving engine thread panicked; restore from the last checkpoint")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Everything a finished engine hands back.
pub struct Finished {
    /// Every alarm raised over the engine's lifetime (in stream order).
    pub alarms: Vec<Alarm>,
    /// Final state, identical to what a checkpoint at shutdown would hold.
    pub checkpoint: Checkpoint,
}

/// Ingest-side message to a shard. The event is boxed so barrier messages
/// don't pay for the 48-feature sample payload in the channel.
enum ShardMsg {
    /// One stream event, stamped with its global sequence number.
    Event(u64, Box<FleetEvent>),
    /// Checkpoint barrier: forward a labeller snapshot to the writer.
    Checkpoint(u64),
    /// Final barrier: hand the labeller to the writer and exit.
    Shutdown(u64),
}

/// Shard-side message to the model writer.
enum WriterMsg {
    Sample {
        seq: u64,
        rec: Box<DiskDay>,
        released: Option<ReleasedSample>,
    },
    Failure {
        seq: u64,
        flushed: Vec<ReleasedSample>,
    },
    Marker {
        seq: u64,
        labeller: OnlineLabeller,
        shutdown: bool,
    },
}

impl WriterMsg {
    fn seq(&self) -> u64 {
        match self {
            WriterMsg::Sample { seq, .. }
            | WriterMsg::Failure { seq, .. }
            | WriterMsg::Marker { seq, .. } => *seq,
        }
    }
}

/// Min-heap adapter: BinaryHeap is a max-heap, so order by reversed seq.
struct BySeq(WriterMsg);

impl PartialEq for BySeq {
    fn eq(&self, other: &Self) -> bool {
        self.0.seq() == other.0.seq()
    }
}
impl Eq for BySeq {}
impl PartialOrd for BySeq {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for BySeq {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.seq().cmp(&self.0.seq())
    }
}

/// A pending `checkpoint` call: target path, the caller's wakeup, and the
/// ingest-side state captured under the ingest lock at the barrier (the
/// writer owns everything else the checkpoint needs).
struct CheckpointRequest {
    path: PathBuf,
    done: std::sync::mpsc::SyncSender<Result<(), String>>,
    /// Raw events offered to `ingest` before the barrier — the store
    /// catch-up cursor (pre-prep, so it matches what the store replays).
    raw_events: u64,
    /// Preprocessing state at the barrier.
    prep: Option<Preprocessor>,
    /// Window-stage state at the barrier (per-disk derived-feature
    /// history); restored so recovery extends rows bit-identically.
    window: Option<WindowStage>,
}

/// Mutable ingest-side state, serialized by one mutex so sequence stamping
/// and channel sends stay atomic (per-disk FIFO order is what the
/// determinism argument rests on). The preprocessing stage lives here too:
/// it must see raw events in arrival order, before sharding.
struct IngestState {
    next_seq: u64,
    txs: Option<Vec<Sender<ShardMsg>>>,
    /// Raw events offered to `ingest` (pre-prep); the checkpoint cursor.
    raw_events: u64,
    /// Optional repair/hold stage between the raw stream and the shards.
    prep: Option<Preprocessor>,
    /// Schema-driven sliding-window derived-feature stage, after prep and
    /// before sharding. It lives under the ingest lock for the same reason
    /// prep does: per-disk state must see the disk's rows in arrival
    /// order, which is what keeps N-shard == serial bit-exact (DESIGN §15).
    /// `None` when the domain's derived plan is empty.
    window: Option<WindowStage>,
    /// Reusable scratch buffer for prep output (0..n events per raw one).
    prep_buf: Vec<FleetEvent>,
}

/// The sharded serving engine. All methods take `&self`; the engine is
/// meant to be shared (e.g. in an `Arc`) between an ingest loop and any
/// number of scoring/stats readers.
pub struct Engine {
    ingest: Mutex<IngestState>,
    stats: Arc<ServeStats>,
    snapshot: Arc<EpochCell<ModelSnapshot>>,
    fresh_alarms: Arc<Mutex<Vec<Alarm>>>,
    checkpoints: Arc<Mutex<VecDeque<CheckpointRequest>>>,
    shard_handles: Mutex<Vec<JoinHandle<()>>>,
    writer_handle: Mutex<Option<JoinHandle<WriterFinal>>>,
    n_shards: usize,
    /// The resolved telemetry domain (implicit SMART when the predictor
    /// config carries none). Scoring clients pad rows to its width.
    schema: DomainSchema,
}

/// State the writer thread returns at shutdown.
struct WriterFinal {
    scaler: OnlineMinMax,
    forest: OnlineRandomForest,
    labeller: OnlineLabeller,
    alarm_threshold: f32,
    alarms: Vec<Alarm>,
    alarms_raised: u64,
    next_seq: u64,
    adaptive: Option<AdaptiveState>,
}

impl Engine {
    /// Start a fresh engine.
    pub fn new(cfg: &ServeConfig) -> Self {
        Self::build(cfg, None)
    }

    /// Start an engine from a checkpoint (also accepts v1 `SavedModel`
    /// files holding only scaler + forest; serving state then starts
    /// empty). The shard count may differ from the checkpointing run —
    /// queues are re-partitioned.
    pub fn restore(cfg: &ServeConfig, checkpoint: Checkpoint) -> Self {
        Self::build(cfg, Some(checkpoint))
    }

    fn build(cfg: &ServeConfig, from: Option<Checkpoint>) -> Self {
        assert!(cfg.n_shards > 0, "need at least one shard");
        assert!(cfg.queue_capacity > 0, "need a positive queue capacity");
        let p = &cfg.predictor;
        // A fresh engine (or an older checkpoint without the fields) builds
        // the prep stage and adaptation loop from the predictor config; a
        // checkpoint that carries them resumes their exact state.
        let schema = p.domain_schema();
        let fresh_prep = || p.prep.as_ref().map(Preprocessor::new);
        let fresh_adapt = || {
            p.adapt
                .as_ref()
                .map(|a| AdaptiveState::new(a, p.feature_cols.len(), &p.orf, p.seed))
        };
        let fresh_window = || p.window_stage();
        let (
            scaler,
            forest,
            labeller,
            threshold,
            alarms_raised,
            start_seq,
            raw_events,
            prep,
            adaptive,
            window,
        ) = match from {
            None => (
                OnlineMinMax::new_log1p(&p.feature_cols),
                OnlineRandomForest::new(p.feature_cols.len(), p.orf.clone(), p.seed),
                OnlineLabeller::new(p.window_days),
                p.alarm_threshold,
                0,
                0,
                0,
                fresh_prep(),
                fresh_adapt(),
                fresh_window(),
            ),
            Some(Checkpoint::Online {
                scaler,
                forest,
                labeller,
                alarm_threshold,
                alarms_raised,
                next_seq,
                events_ingested,
                prep,
                adapt,
                schema: ck_schema,
                window,
                version: _,
            }) => {
                // A checkpoint from a different domain would misalign every
                // feature column; fail loudly at restore time.
                if let Some(s) = &ck_schema {
                    assert_eq!(
                        s.fingerprint(),
                        schema.fingerprint(),
                        "checkpoint domain `{}` does not match the configured domain `{}`",
                        s.name,
                        schema.name
                    );
                }
                (
                    scaler,
                    forest,
                    labeller.unwrap_or_else(|| OnlineLabeller::new(p.window_days)),
                    alarm_threshold.unwrap_or(p.alarm_threshold),
                    alarms_raised.unwrap_or(0),
                    next_seq.unwrap_or(0),
                    events_ingested.unwrap_or(0),
                    prep.or_else(fresh_prep),
                    adapt.or_else(fresh_adapt),
                    window.or_else(fresh_window),
                )
            }
        };

        let n = cfg.n_shards;
        let stats = Arc::new(ServeStats::new(n));
        stats.events_issued.store(start_seq, Ordering::Relaxed);
        stats.events_applied.store(start_seq, Ordering::Relaxed);
        if let Some(ad) = &adaptive {
            stats
                .drift_events
                .store(ad.drift_events(), Ordering::Relaxed);
            stats.model_rebuilds.store(ad.rebuilds(), Ordering::Relaxed);
        }
        let snapshot = Arc::new(EpochCell::new(Arc::new(ModelSnapshot {
            scaler: scaler.clone(),
            forest: forest.freeze(),
            alarm_threshold: threshold,
        })));
        let fresh_alarms = Arc::new(Mutex::new(Vec::new()));
        let checkpoints: Arc<Mutex<VecDeque<CheckpointRequest>>> =
            Arc::new(Mutex::new(VecDeque::new()));

        // Writer channel: big enough that every in-flight shard event plus
        // one marker per shard fits, which also bounds the reorder buffer.
        let (wtx, wrx) = bounded::<WriterMsg>(n * cfg.queue_capacity + n);

        let mut txs = Vec::with_capacity(n);
        let mut shard_handles = Vec::with_capacity(n);
        let mut parts = labeller.split_by(n, |d| shard_of(d, n));
        for (idx, part) in parts.drain(..).enumerate() {
            let (tx, rx) = bounded::<ShardMsg>(cfg.queue_capacity);
            txs.push(tx);
            let wtx = wtx.clone();
            let stats = Arc::clone(&stats);
            let injector = Arc::clone(&cfg.injector);
            shard_handles.push(
                std::thread::Builder::new()
                    .name(format!("orfpred-shard-{idx}"))
                    .spawn(move || shard_loop(idx, rx, wtx, part, &stats, &*injector))
                    // lint: allow(panic_path, reason="construction-time spawn failure (OS out of threads) before any stream state exists; failing fast is the only sane recovery")
                    .expect("spawn shard thread"),
            );
        }
        drop(wtx);

        let writer = WriterThread {
            rx: wrx,
            schema: schema.clone(),
            scaler,
            forest,
            alarm_threshold: threshold,
            next_seq: start_seq,
            alarms_raised,
            n_shards: n,
            snapshot_every: cfg.snapshot_every.max(1),
            adaptive,
            stats: Arc::clone(&stats),
            snapshot: Arc::clone(&snapshot),
            fresh_alarms: Arc::clone(&fresh_alarms),
            checkpoints: Arc::clone(&checkpoints),
            injector: Arc::clone(&cfg.injector),
        };
        let writer_handle = std::thread::Builder::new()
            .name("orfpred-writer".into())
            .spawn(move || writer.run())
            // lint: allow(panic_path, reason="construction-time spawn failure before any stream state exists; failing fast is the only sane recovery")
            .expect("spawn writer thread");

        Self {
            ingest: Mutex::new(IngestState {
                next_seq: start_seq,
                txs: Some(txs),
                raw_events,
                prep,
                window,
                prep_buf: Vec::new(),
            }),
            stats,
            snapshot,
            fresh_alarms,
            checkpoints,
            shard_handles: Mutex::new(shard_handles),
            writer_handle: Mutex::new(Some(writer_handle)),
            n_shards: n,
            schema,
        }
    }

    /// Number of labelling shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The telemetry domain this engine serves (implicit SMART when the
    /// predictor config carries none).
    pub fn schema(&self) -> &DomainSchema {
        &self.schema
    }

    /// Full feature-row width (base + derived columns) of the domain.
    pub fn n_features(&self) -> usize {
        self.schema.n_features()
    }

    /// Feed one raw stream event. The optional preprocessing stage runs
    /// here, under the ingest lock, before sequence stamping: one raw event
    /// becomes 0 (dropped / held) or more (held failures released) stamped
    /// events. Blocks when the target shard's queue is full (backpressure)
    /// and returns an error after shutdown.
    pub fn ingest(&self, event: FleetEvent) -> Result<(), ServeError> {
        // Preprocessing, stamping seqs and enqueueing to the shards must be
        // one atomic step: two ingests racing between stamp and send could
        // invert per-disk order and break the N-shard == serial determinism
        // argument (DESIGN §8). The sends under this lock live in
        // `send_prepped`, which carries the lock_discipline justification.
        let mut st = self.ingest.lock();
        if st.txs.is_none() {
            return Err(ServeError::ShuttingDown);
        }
        let is_sample = matches!(&event, FleetEvent::Sample(_));
        let mut buf = std::mem::take(&mut st.prep_buf);
        buf.clear();
        match st.prep.as_mut() {
            Some(prep) => prep.observe(&event, &mut buf),
            None => buf.push(event),
        }
        // Raw-side accounting happens even when prep swallows the event:
        // the checkpoint cursor must match what the telemetry store holds.
        st.raw_events += 1;
        if is_sample {
            self.stats.samples_ingested.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.failures_ingested.fetch_add(1, Ordering::Relaxed);
        }
        let mut result = Ok(());
        for mut ev in buf.drain(..) {
            // The window stage runs after prep and before sharding: rows
            // grow to full width here, so labeller queues and the writer
            // only ever see extended rows (mirroring the serial
            // predictor's hook point in `observe_sample_scored`).
            if let Some(w) = st.window.as_mut() {
                match &mut ev {
                    FleetEvent::Sample(rec) => w.extend(rec.disk_id, &mut rec.features),
                    FleetEvent::Failure { disk_id, .. } => w.forget(*disk_id),
                }
            }
            if let Err(e) = self.send_prepped(&mut st, ev) {
                result = Err(e);
                break;
            }
        }
        st.prep_buf = buf;
        result
    }

    /// Stamp one prepped event with the next global sequence number and
    /// enqueue it to its shard. Callers hold the ingest lock.
    fn send_prepped(&self, st: &mut IngestState, event: FleetEvent) -> Result<(), ServeError> {
        let seq = st.next_seq;
        let shard = match &event {
            FleetEvent::Sample(rec) => shard_of(rec.disk_id, self.n_shards),
            FleetEvent::Failure { disk_id, .. } => shard_of(*disk_id, self.n_shards),
        };
        let txs = st.txs.as_ref().ok_or(ServeError::ShuttingDown)?;
        // lint: allow(panic_path, reason="shard < n_shards: shard_of reduces mod n_shards; stats and txs both have n_shards entries")
        self.stats.shard_depths[shard].fetch_add(1, Ordering::Relaxed);
        if txs[shard] // lint: allow(panic_path, reason="shard < n_shards by shard_of's modulo; txs has one sender per shard")
            .send(ShardMsg::Event(seq, Box::new(event)))
            .is_err()
        {
            // lint: allow(panic_path, reason="shard < n_shards by shard_of's modulo; same bound as the fetch_add above")
            self.stats.shard_depths[shard].fetch_sub(1, Ordering::Relaxed);
            return Err(ServeError::ShuttingDown);
        }
        st.next_seq += 1;
        self.stats
            .events_issued
            .store(st.next_seq, Ordering::Relaxed);
        Ok(())
    }

    /// Score a full-width feature row against the latest published model
    /// snapshot. Lock-free with respect to the writer (an epoch-cell load,
    /// not a lock); never blocks ingest.
    pub fn score(&self, features: &[f32]) -> f32 {
        let snap = self.snapshot.load();
        let t0 = Instant::now();
        let score = snap.score(features);
        self.stats.score_latency.record(t0.elapsed());
        score
    }

    /// The latest published model snapshot.
    pub fn model_snapshot(&self) -> Arc<ModelSnapshot> {
        self.snapshot.load()
    }

    /// Point-in-time serving counters (including the prep stage's repair
    /// counters when one is configured).
    pub fn stats(&self) -> StatsReport {
        let mut report = self.stats.report();
        report.prep = self
            .ingest
            .lock()
            .prep
            .as_ref()
            .map(|p| p.counters().clone());
        report
    }

    /// Drain alarms raised since the last call (in stream order).
    pub fn take_alarms(&self) -> Vec<Alarm> {
        std::mem::take(&mut *self.fresh_alarms.lock())
    }

    /// Block until every event ingested before this call has been applied
    /// by the model writer (and is visible in alarms / the next snapshot).
    pub fn flush(&self) {
        let target = self.ingest.lock().next_seq;
        while self.stats.events_applied.load(Ordering::Acquire) < target {
            if self.writer_handle.lock().is_none() {
                return; // already finished
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
    }

    /// Write an atomic checkpoint of the full serving state to `path`.
    /// Blocks until the file is durably in place; events ingested after
    /// this call are not included.
    pub fn checkpoint(&self, path: &Path) -> Result<(), String> {
        let (done_tx, done_rx) = std::sync::mpsc::sync_channel(1);
        {
            // lint: allow(lock_discipline, reason="the checkpoint barrier must take one seq slot across every shard with no ingest interleaved, or shards would snapshot at different stream points; the sends are to bounded queues the shards are actively draining")
            let mut st = self.ingest.lock();
            let txs = st.txs.as_ref().ok_or("engine is shutting down")?;
            let seq = st.next_seq;
            self.checkpoints.lock().push_back(CheckpointRequest {
                path: path.to_path_buf(),
                done: done_tx,
                raw_events: st.raw_events,
                prep: st.prep.clone(),
                window: st.window.clone(),
            });
            for tx in txs {
                tx.send(ShardMsg::Checkpoint(seq))
                    .map_err(|_| "a shard exited before the checkpoint".to_string())?;
            }
            st.next_seq += 1;
            self.stats
                .events_issued
                .store(st.next_seq, Ordering::Relaxed);
        }
        done_rx
            .recv()
            .map_err(|_| "the writer exited before completing the checkpoint".to_string())?
    }

    /// Shut down: barrier all shards, join every thread, and return the
    /// collected alarms plus the final state (the same state `checkpoint`
    /// would have written). Subsequent calls return `ShuttingDown`.
    pub fn finish(&self) -> Result<Finished, ServeError> {
        self.shutdown(true)
    }

    /// Shut down *without* end-of-stream semantics: the prep stage keeps
    /// any failures it is still holding for their survival re-check, so
    /// the returned checkpoint can seed a successor engine that continues
    /// the stream bit-identically (live re-sharding). `finish()` on the
    /// same stream point would release held failures early and diverge
    /// from a serial run that kept going.
    ///
    /// The barrier consumes one sequence number — exactly like
    /// `checkpoint()` — so a reference run that calls `checkpoint()` where
    /// a fleet run suspends sees the same seq stream afterwards.
    pub fn suspend(&self) -> Result<Finished, ServeError> {
        self.shutdown(false)
    }

    fn shutdown(&self, flush_prep: bool) -> Result<Finished, ServeError> {
        let (raw_events, final_prep, final_window) = {
            // The shutdown barrier must reach every shard at one seq with no
            // ingest interleaved (same atomicity as `ingest`); the sends
            // under this lock go through `send_prepped`, which carries the
            // lock_discipline justification.
            let mut st = self.ingest.lock();
            if st.txs.is_none() {
                return Err(ServeError::ShuttingDown);
            }
            if flush_prep {
                // End-of-stream for the prep stage: failures still held for
                // their survival re-check enter the stream now, before the
                // shutdown barrier — exactly like `OnlinePredictor::finish`.
                let mut buf = std::mem::take(&mut st.prep_buf);
                buf.clear();
                if let Some(prep) = st.prep.as_mut() {
                    prep.finish(&mut buf);
                }
                for mut ev in buf.drain(..) {
                    // Late-released events pass through the window stage like
                    // any other (they are failures, so this only drops state).
                    if let Some(w) = st.window.as_mut() {
                        match &mut ev {
                            FleetEvent::Sample(rec) => w.extend(rec.disk_id, &mut rec.features),
                            FleetEvent::Failure { disk_id, .. } => w.forget(*disk_id),
                        }
                    }
                    // A dead shard is noticed at join time, like the barrier
                    // sends below.
                    let _ = self.send_prepped(&mut st, ev);
                }
                st.prep_buf = buf;
            }
            let txs = st.txs.take().ok_or(ServeError::ShuttingDown)?;
            let seq = st.next_seq;
            for tx in &txs {
                // A shard that already died will be noticed at join time.
                let _ = tx.send(ShardMsg::Shutdown(seq));
            }
            st.next_seq += 1;
            self.stats
                .events_issued
                .store(st.next_seq, Ordering::Relaxed);
            (st.raw_events, st.prep.clone(), st.window.clone())
            // txs drop here: shard channels close once drained.
        };
        let mut panicked = false;
        for h in self.shard_handles.lock().drain(..) {
            panicked |= h.join().is_err();
        }
        let writer = self
            .writer_handle
            .lock()
            .take()
            .ok_or(ServeError::ShuttingDown)?;
        let fin = writer.join().map_err(|_| ServeError::WorkerPanicked)?;
        if panicked {
            return Err(ServeError::WorkerPanicked);
        }
        Ok(Finished {
            alarms: fin.alarms,
            checkpoint: Checkpoint::Online {
                scaler: fin.scaler,
                forest: fin.forest,
                version: Some(CHECKPOINT_VERSION),
                labeller: Some(fin.labeller),
                alarm_threshold: Some(fin.alarm_threshold),
                alarms_raised: Some(fin.alarms_raised),
                next_seq: Some(fin.next_seq),
                events_ingested: Some(raw_events),
                prep: final_prep,
                adapt: fin.adaptive,
                schema: Some(self.schema.clone()),
                window: final_window,
            },
        })
    }
}

/// Shard thread body: apply Algorithm 2 labelling for this shard's disks
/// and forward every event (with any released training samples attached)
/// to the model writer.
///
/// The injector hooks live here: `kill_shard` makes the thread die on the
/// spot (labelling queues and queued events lost, exactly like a crashed
/// thread), and `delay_to_writer` holds a labelled message back until
/// later messages have been forwarded — injected delivery reordering the
/// writer's sequence-number reorder buffer must absorb. Held messages are
/// flushed before any barrier so checkpoints and shutdown never wait on an
/// injected delay.
fn shard_loop(
    idx: usize,
    rx: Receiver<ShardMsg>,
    wtx: Sender<WriterMsg>,
    mut labeller: OnlineLabeller,
    stats: &ServeStats,
    injector: &dyn FaultInjector,
) {
    // Injected-delay holdback: (messages still to let pass first, message).
    let mut held: Vec<(usize, WriterMsg)> = Vec::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Event(seq, event) => {
                // lint: allow(panic_path, reason="idx is this shard's index, always < n_shards == shard_depths.len()")
                stats.shard_depths[idx].fetch_sub(1, Ordering::Relaxed);
                if injector.kill_shard(idx, seq) {
                    // Simulated shard crash: abandon the labelling queues,
                    // the held messages, and the channel, as a real dead
                    // thread would. The engine reports ShuttingDown on the
                    // next ingest routed here; recovery is restore-from-
                    // checkpoint (tests/fault_shard.rs).
                    return;
                }
                let out = match *event {
                    FleetEvent::Sample(rec) => {
                        let released = labeller.observe_sample(rec.disk_id, rec.day, &rec.features);
                        WriterMsg::Sample {
                            seq,
                            rec: Box::new(rec),
                            released,
                        }
                    }
                    FleetEvent::Failure { disk_id, .. } => WriterMsg::Failure {
                        seq,
                        flushed: labeller.observe_failure(disk_id),
                    },
                };
                let delay = injector.delay_to_writer(idx, seq);
                if delay > 0 {
                    held.push((delay, out));
                } else if wtx.send(out).is_err() {
                    return; // writer is gone; nothing left to do
                }
                // One more message has gone past (or joined the holdback):
                // tick every held entry and release the expired ones.
                let mut i = 0;
                while i < held.len() {
                    // lint: allow(panic_path, reason="i < held.len() is the loop condition; remove() below re-checks it")
                    held[i].0 -= 1;
                    // lint: allow(panic_path, reason="i < held.len() is the loop condition and i is not advanced since the check")
                    if held[i].0 == 0 {
                        let (_, m) = held.remove(i);
                        if wtx.send(m).is_err() {
                            return;
                        }
                    } else {
                        i += 1;
                    }
                }
            }
            ShardMsg::Checkpoint(seq) => {
                for (_, m) in held.drain(..) {
                    if wtx.send(m).is_err() {
                        return;
                    }
                }
                let marker = WriterMsg::Marker {
                    seq,
                    labeller: labeller.clone(),
                    shutdown: false,
                };
                if wtx.send(marker).is_err() {
                    return;
                }
            }
            ShardMsg::Shutdown(seq) => {
                for (_, m) in held.drain(..) {
                    if wtx.send(m).is_err() {
                        return;
                    }
                }
                let _ = wtx.send(WriterMsg::Marker {
                    seq,
                    labeller,
                    shutdown: true,
                });
                return;
            }
        }
    }
}

/// The model writer: single owner of the ORF and scaler, applying events
/// in global sequence order.
struct WriterThread {
    rx: Receiver<WriterMsg>,
    /// The engine's resolved domain, embedded in every checkpoint so a
    /// restore against a different domain fails its fingerprint check.
    schema: DomainSchema,
    scaler: OnlineMinMax,
    forest: OnlineRandomForest,
    alarm_threshold: f32,
    next_seq: u64,
    alarms_raised: u64,
    n_shards: usize,
    snapshot_every: u64,
    /// Drift-triggered adaptation loop; `None` runs the writer exactly as
    /// before. The writer owns it because rebuilds swap the forest —
    /// mirroring the serial predictor's hook point keeps N-shard == serial.
    adaptive: Option<AdaptiveState>,
    stats: Arc<ServeStats>,
    snapshot: Arc<EpochCell<ModelSnapshot>>,
    fresh_alarms: Arc<Mutex<Vec<Alarm>>>,
    checkpoints: Arc<Mutex<VecDeque<CheckpointRequest>>>,
    injector: Arc<dyn FaultInjector>,
}

impl WriterThread {
    fn run(mut self) -> WriterFinal {
        let mut heap: BinaryHeap<BySeq> = BinaryHeap::new();
        let mut scratch = vec![0.0f32; self.scaler.n_outputs()];
        let mut alarms: Vec<Alarm> = Vec::new();
        let mut applied_samples: u64 = 0;
        let mut final_labeller: Option<OnlineLabeller> = None;

        'main: loop {
            // Pull until the next contiguous sequence number is buffered.
            while heap.peek().map(|m| m.0.seq()) != Some(self.next_seq) {
                match self.rx.recv() {
                    Ok(m) => heap.push(BySeq(m)),
                    Err(_) => break 'main, // all shards gone
                }
            }
            // lint: allow(panic_path, reason="the pull loop above only exits with the heap head at next_seq, so pop() is Some")
            match heap.pop().expect("peeked").0 {
                WriterMsg::Sample { rec, released, .. } => {
                    // Exactly OnlinePredictor::observe_sample's order:
                    // widen scaler → train on released (adaptation hook
                    // after the forest update, so a rebuild is visible to
                    // this event's own score) → score fresh row.
                    self.scaler.update(&rec.features);
                    if let Some(rel) = released {
                        self.scaler.transform_into(&rel.features, &mut scratch);
                        self.forest.update(&scratch, rel.positive);
                        self.adapt_released(&rel.features, rel.positive);
                    }
                    let t0 = Instant::now();
                    self.scaler.transform_into(&rec.features, &mut scratch);
                    let score = self.forest.score(&scratch);
                    self.stats.score_latency.record(t0.elapsed());
                    if score >= self.alarm_threshold {
                        self.alarms_raised += 1;
                        self.stats.alarms_raised.fetch_add(1, Ordering::Relaxed);
                        let alarm = Alarm {
                            disk_id: rec.disk_id,
                            day: rec.day,
                            score,
                        };
                        alarms.push(alarm);
                        self.fresh_alarms.lock().push(alarm);
                    }
                    applied_samples += 1;
                    if applied_samples.is_multiple_of(self.snapshot_every) {
                        self.publish();
                    }
                }
                WriterMsg::Failure { flushed, .. } => {
                    for rel in flushed {
                        self.scaler.transform_into(&rel.features, &mut scratch);
                        self.forest.update(&scratch, true);
                        self.adapt_released(&rel.features, true);
                    }
                }
                WriterMsg::Marker {
                    seq,
                    labeller,
                    shutdown,
                } => {
                    let merged = self.collect_markers(&mut heap, seq, labeller);
                    if shutdown {
                        self.advance();
                        final_labeller = Some(merged);
                        break 'main;
                    }
                    self.handle_checkpoint(merged);
                }
            }
            self.advance();
        }

        self.publish();
        WriterFinal {
            scaler: self.scaler,
            forest: self.forest,
            labeller: final_labeller.unwrap_or_default(),
            alarm_threshold: self.alarm_threshold,
            alarms,
            alarms_raised: self.alarms_raised,
            next_seq: self.next_seq,
            adaptive: self.adaptive,
        }
    }

    /// Feed one released training sample (raw features + final label) to
    /// the adaptation loop; on a declared shift, run the update policy and
    /// publish the rebuilt model immediately so the lock-free scoring path
    /// sees it without waiting for the next scheduled snapshot.
    fn adapt_released(&mut self, features: &[f32], positive: bool) {
        let Some(adaptive) = self.adaptive.as_mut() else {
            return;
        };
        if adaptive.on_released(features, positive).is_none() {
            return;
        }
        if let Some(forest) = adaptive.rebuild(&self.scaler) {
            self.forest = forest;
        }
        self.publish();
    }

    /// One barrier message per shard arrives with the same sequence number;
    /// gather them all and merge the labelling-queue partitions.
    fn collect_markers(
        &mut self,
        heap: &mut BinaryHeap<BySeq>,
        seq: u64,
        first: OnlineLabeller,
    ) -> OnlineLabeller {
        let mut merged = first;
        let mut have = 1;
        while have < self.n_shards {
            if heap.peek().map(|m| m.0.seq()) == Some(seq) {
                // lint: allow(panic_path, reason="peek() just returned Some at this seq and the heap is writer-local")
                match heap.pop().expect("peeked").0 {
                    WriterMsg::Marker { labeller, .. } => {
                        merged.absorb(labeller);
                        have += 1;
                    }
                    // lint: allow(panic_path, reason="barrier seq numbers are allocated once and every shard sends exactly a Marker for them; a non-marker here is memory corruption, where dying beats absorbing garbage into the model")
                    other => unreachable!("non-marker at barrier seq {}", other.seq()),
                }
            } else {
                match self.rx.recv() {
                    Ok(m) => heap.push(BySeq(m)),
                    Err(_) => break, // shards died mid-barrier; best effort
                }
            }
        }
        merged
    }

    fn handle_checkpoint(&mut self, labeller: OnlineLabeller) {
        let Some(req) = self.checkpoints.lock().pop_front() else {
            return; // request vanished (caller gave up); drop silently
        };
        let ck = Checkpoint::Online {
            scaler: self.scaler.clone(),
            forest: self.forest.clone(),
            version: Some(CHECKPOINT_VERSION),
            labeller: Some(labeller),
            alarm_threshold: Some(self.alarm_threshold),
            alarms_raised: Some(self.alarms_raised),
            next_seq: Some(self.next_seq + 1),
            events_ingested: Some(req.raw_events),
            prep: req.prep,
            adapt: self.adaptive.clone(),
            schema: Some(self.schema.clone()),
            window: req.window,
        };
        let result = ck
            .save_atomic_faulted(&req.path, &*self.injector)
            .map_err(|e| e.to_string());
        self.publish();
        let _ = req.done.send(result);
    }

    /// Mark the current sequence number applied and move to the next.
    fn advance(&mut self) {
        self.next_seq += 1;
        self.stats
            .events_applied
            .store(self.next_seq, Ordering::Release);
    }

    /// Compile the live forest into its frozen scoring form, publish the
    /// immutable snapshot through the epoch cell, and mirror the
    /// writer-owned counters into the shared stats. This is the only
    /// storer, satisfying [`EpochCell::store`]'s single-writer contract.
    fn publish(&self) {
        self.snapshot.store(Arc::new(ModelSnapshot {
            scaler: self.scaler.clone(),
            forest: self.forest.freeze(),
            alarm_threshold: self.alarm_threshold,
        }));
        self.stats
            .forest_samples_seen
            .store(self.forest.samples_seen(), Ordering::Relaxed);
        self.stats
            .trees_replaced
            .store(self.forest.trees_replaced(), Ordering::Relaxed);
        if let Some(ad) = &self.adaptive {
            self.stats
                .drift_events
                .store(ad.drift_events(), Ordering::Relaxed);
            self.stats
                .model_rebuilds
                .store(ad.rebuilds(), Ordering::Relaxed);
        }
        self.stats
            .snapshots_published
            .fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_smart::attrs::N_FEATURES;

    fn cfg(n_shards: usize) -> ServeConfig {
        let mut p = OnlinePredictorConfig::new(vec![0, 1, 2], 9);
        p.orf.n_trees = 5;
        p.orf.n_tests = 10;
        p.orf.min_parent_size = 10.0;
        p.orf.min_gain = 0.0;
        p.orf.lambda_neg = 0.5;
        p.orf.warmup_age = 0;
        let mut c = ServeConfig::new(p);
        c.n_shards = n_shards;
        c.snapshot_every = 16;
        c
    }

    fn rec(disk_id: u32, day: u16, v: f32) -> DiskDay {
        let mut features = vec![0.0f32; N_FEATURES];
        features[0] = v;
        features[1] = v * 0.5;
        features[2] = v * 2.0;
        DiskDay {
            disk_id,
            day,
            features,
        }
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for n in [1usize, 2, 4, 7] {
            for disk in 0..200u32 {
                let s = shard_of(disk, n);
                assert!(s < n);
                assert_eq!(s, shard_of(disk, n), "routing must be deterministic");
            }
        }
        // Non-degenerate spread over 4 shards.
        let mut counts = [0usize; 4];
        for disk in 0..1000u32 {
            counts[shard_of(disk, 4)] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 100),
            "skewed routing: {counts:?}"
        );
    }

    #[test]
    fn ingest_flush_and_counters() {
        let engine = Engine::new(&cfg(2));
        for day in 0..30u16 {
            for disk in 0..10u32 {
                engine
                    .ingest(FleetEvent::Sample(rec(
                        disk,
                        day,
                        if disk == 0 { 30.0 } else { 0.0 },
                    )))
                    .unwrap();
            }
        }
        engine
            .ingest(FleetEvent::Failure {
                disk_id: 0,
                day: 30,
            })
            .unwrap();
        engine.flush();
        let s = engine.stats();
        assert_eq!(s.samples_ingested, 300);
        assert_eq!(s.failures_ingested, 1);
        assert_eq!(s.events_applied, s.events_issued);
        assert!(
            s.forest_samples_seen > 0,
            "labelled samples reached the forest"
        );
        assert!(s.snapshots_published >= 1);
        let fin = engine.finish().unwrap();
        assert!(engine.finish().is_err(), "double finish must fail");
        let Checkpoint::Online { labeller, .. } = fin.checkpoint;
        assert!(labeller.unwrap().n_pending() > 0, "survivors stay queued");
    }

    #[test]
    fn score_and_snapshot_survive_shutdown() {
        let engine = Engine::new(&cfg(3));
        for day in 0..40u16 {
            for disk in 0..8u32 {
                engine
                    .ingest(FleetEvent::Sample(rec(disk, day, 0.0)))
                    .unwrap();
            }
        }
        engine.flush();
        let s = engine.score(&rec(99, 0, 0.0).features);
        assert!((0.0..=1.0).contains(&s));
        let snap = engine.model_snapshot();
        engine.finish().unwrap();
        // Frozen snapshots keep working after shutdown.
        assert_eq!(snap.score(&rec(99, 0, 0.0).features), s);
        assert!(engine
            .ingest(FleetEvent::Failure { disk_id: 1, day: 0 })
            .is_err());
    }

    #[test]
    fn snapshot_batch_scoring_is_bit_identical_to_single_row() {
        let engine = Engine::new(&cfg(2));
        for day in 0..60u16 {
            for disk in 0..12u32 {
                engine
                    .ingest(FleetEvent::Sample(rec(
                        disk,
                        day,
                        (disk as f32) * 0.3 + (day as f32) * 0.1,
                    )))
                    .unwrap();
            }
        }
        engine
            .ingest(FleetEvent::Failure {
                disk_id: 3,
                day: 60,
            })
            .unwrap();
        engine.flush();
        let snap = engine.model_snapshot();
        engine.finish().unwrap();
        // Batch probes span ordinary, boundary, and non-finite inputs.
        let mut probes: Vec<Vec<f32>> = Vec::new();
        for i in 0..37 {
            let mut f = rec(i, 0, (i as f32) * 0.7 - 3.0).features;
            if i % 11 == 0 {
                f[0] = f32::NAN;
            }
            if i % 13 == 0 {
                f[2] = f32::INFINITY;
            }
            probes.push(f);
        }
        let rows: Vec<&[f32]> = probes.iter().map(|f| &f[..]).collect();
        let batch = snap.score_batch(&rows);
        assert_eq!(batch.len(), rows.len());
        for (row, &b) in rows.iter().zip(&batch) {
            assert_eq!(
                snap.score(row).to_bits(),
                b.to_bits(),
                "snapshot batch diverged from single-row"
            );
        }
    }

    #[test]
    fn take_alarms_drains_in_stream_order() {
        let c = {
            let mut c = cfg(2);
            c.predictor.alarm_threshold = 0.0; // everything alarms
            c
        };
        let engine = Engine::new(&c);
        for day in 0..10u16 {
            engine.ingest(FleetEvent::Sample(rec(1, day, 1.0))).unwrap();
        }
        engine.flush();
        let drained = engine.take_alarms();
        assert_eq!(drained.len(), 10);
        assert!(drained.windows(2).all(|w| w[0].day < w[1].day));
        assert!(engine.take_alarms().is_empty(), "drained exactly once");
        let fin = engine.finish().unwrap();
        assert_eq!(fin.alarms.len(), 10, "finish still returns the full list");
    }

    #[test]
    fn checkpoint_restore_continues_identically() {
        let c = cfg(2);
        let path = std::env::temp_dir().join("orfpred_engine_ckpt_test.json");

        // Uninterrupted reference run.
        let reference = Engine::new(&c);
        for day in 0..30u16 {
            for disk in 0..6u32 {
                reference
                    .ingest(FleetEvent::Sample(rec(disk, day, f32::from(day % 5))))
                    .unwrap();
            }
        }
        // Take the same checkpoint barrier so sequence numbers line up.
        reference.checkpoint(&path).unwrap();
        for day in 30..50u16 {
            for disk in 0..6u32 {
                reference
                    .ingest(FleetEvent::Sample(rec(disk, day, f32::from(day % 5))))
                    .unwrap();
            }
        }
        let ref_fin = reference.finish().unwrap();

        // Restore from the mid-stream checkpoint (different shard count)
        // and replay only the tail.
        let mut c3 = c.clone();
        c3.n_shards = 3;
        let resumed = Engine::restore(&c3, Checkpoint::load(&path).unwrap());
        for day in 30..50u16 {
            for disk in 0..6u32 {
                resumed
                    .ingest(FleetEvent::Sample(rec(disk, day, f32::from(day % 5))))
                    .unwrap();
            }
        }
        let res_fin = resumed.finish().unwrap();

        // The final states must be byte-identical.
        assert_eq!(
            serde_json::to_string(&ref_fin.checkpoint).unwrap(),
            serde_json::to_string(&res_fin.checkpoint).unwrap()
        );
        std::fs::remove_file(&path).ok();
    }
}
