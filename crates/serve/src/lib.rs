//! `orfpred-serve`: a sharded online serving engine for the paper's
//! Algorithm 2 pipeline, with checkpoint/restore and live metrics.
//!
//! The offline crates answer "does the ORF reproduce the paper's
//! curves?"; this crate answers "can it run as a long-lived service?".
//! Architecture (details and the determinism argument in [`engine`]):
//!
//! * **Sharded labelling** — disks are partitioned across N shard threads
//!   by a stable hash of `disk_id`; each shard owns its slice of the
//!   per-disk labelling queues (Algorithm 2 state) and turns raw events
//!   into labelled training samples;
//! * **Single model writer** — labelled samples flow over bounded
//!   channels into one writer thread that owns the forest and scaler,
//!   applies updates in global sequence order (a reorder buffer undoes
//!   shard interleaving), and raises alarms exactly as the serial
//!   [`orfpred_core::OnlinePredictor`] would;
//! * **Lock-free scoring** — the writer periodically compiles the live
//!   forest into a flat [`orfpred_trees::FrozenForest`] and publishes the
//!   immutable [`ModelSnapshot`] through a lock-free [`epoch::EpochCell`]
//!   swap; `score` requests never contend with training or with the
//!   publisher;
//! * **Atomic checkpoints** — a barrier token flows through every shard
//!   so the saved labelling queues, scaler, forest and stream position
//!   form one consistent cut; files are written tmp → fsync → rename and
//!   a restored daemon resumes byte-identically;
//! * **Protocol** — line-delimited JSON over stdin and an optional TCP
//!   listener ([`protocol`], [`daemon`]); live counters via [`stats`].

#![warn(missing_docs)]

pub mod checkpoint;
pub mod daemon;
pub mod engine;
pub mod epoch;
pub mod fault;
pub mod protocol;
pub mod stats;

pub use checkpoint::{Checkpoint, CheckpointError, CHECKPOINT_VERSION};
pub use daemon::{run, DaemonConfig};
pub use engine::{shard_of, Engine, Finished, ModelSnapshot, ServeConfig, ServeError};
pub use epoch::EpochCell;
pub use fault::{CheckpointFault, FaultInjector, NoFaults};
pub use protocol::{pad_features, ProtocolError, Request, Response, MAX_FRAME_LEN};
pub use stats::{LatencyHistogram, ServeStats, StatsReport};
