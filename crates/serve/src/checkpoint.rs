//! Durable serving state: the full Algorithm 2 pipeline — forest, scaler,
//! labelling queues, alarm threshold — plus the stream position, written
//! atomically (write-tmp → fsync → rename) so a crash never leaves a
//! half-written file.
//!
//! The JSON shape is deliberately identical to the CLI's `SavedModel`
//! (`{"Online": {...}}`): a v1 model file written by `orfpred train
//! --online` (scaler + forest only) restores into a daemon with empty
//! labelling queues, and a daemon checkpoint loads anywhere a `SavedModel`
//! does. The extra fields are optional for exactly that reason.

use orfpred_core::{OnlineLabeller, OnlineRandomForest};
use orfpred_smart::scale::OnlineMinMax;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// Current checkpoint schema version ([`Checkpoint::Online`]'s `version`
/// field). v1 files predate the field and deserialize as `None`.
pub const CHECKPOINT_VERSION: u32 = 2;

/// A serving checkpoint; the single variant keeps the external tag that
/// makes the file a valid `SavedModel` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Checkpoint {
    /// Online pipeline state.
    Online {
        /// Streaming min–max scaler state.
        scaler: OnlineMinMax,
        /// The online random forest.
        forest: OnlineRandomForest,
        /// Schema version; `None` on v1 files (scaler + forest only).
        version: Option<u32>,
        /// Merged per-disk labelling queues (Algorithm 2 state). `None` on
        /// v1 files: restore with empty queues.
        labeller: Option<OnlineLabeller>,
        /// Alarm operating point. `None` on v1 files: use the config's.
        alarm_threshold: Option<f32>,
        /// Alarms raised before the checkpoint.
        alarms_raised: Option<u64>,
        /// Next global sequence number; a restored engine resumes here.
        next_seq: Option<u64>,
    },
}

impl Checkpoint {
    /// Serialize and atomically replace `path`: write to a sibling
    /// temporary file, fsync it, then rename over the target, so `path`
    /// always holds either the previous or the new checkpoint in full.
    pub fn save_atomic(&self, path: &Path) -> Result<(), String> {
        let tmp = path.with_extension("tmp");
        let mut file =
            std::fs::File::create(&tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
        let bytes = serde_json::to_vec(self).map_err(|e| format!("serialize checkpoint: {e}"))?;
        file.write_all(&bytes)
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        file.sync_all()
            .map_err(|e| format!("fsync {}: {e}", tmp.display()))?;
        drop(file);
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))?;
        Ok(())
    }

    /// Load a checkpoint (or v1 `SavedModel::Online`) from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let file =
            std::fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
        serde_json::from_reader(std::io::BufReader::new(file))
            .map_err(|e| format!("parse checkpoint {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_core::OrfConfig;

    fn tiny() -> Checkpoint {
        let cols = vec![0usize, 2];
        let mut scaler = OnlineMinMax::new_log1p(&cols);
        scaler.update(&[1.0, 9.0, 3.0]);
        let mut forest = OnlineRandomForest::new(
            2,
            OrfConfig {
                n_trees: 2,
                warmup_age: 0,
                ..OrfConfig::default()
            },
            7,
        );
        forest.update(&[0.1, 0.9], true);
        let mut labeller = OnlineLabeller::new(7);
        labeller.observe_sample(3, 1, &[1.0, 9.0, 3.0]);
        Checkpoint::Online {
            scaler,
            forest,
            version: Some(CHECKPOINT_VERSION),
            labeller: Some(labeller),
            alarm_threshold: Some(0.4),
            alarms_raised: Some(5),
            next_seq: Some(42),
        }
    }

    #[test]
    fn atomic_save_round_trips_byte_identically() {
        let ck = tiny();
        let path = std::env::temp_dir().join("orfpred_serve_ckpt_test.json");
        ck.save_atomic(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        // Byte-identity of re-serialization is the restore guarantee.
        assert_eq!(
            serde_json::to_string(&ck).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file renamed away"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_saved_model_without_serving_fields_loads() {
        let ck = tiny();
        // Strip the serving fields down to a v1 document by hand.
        let Checkpoint::Online { scaler, forest, .. } = ck;
        let v1 = format!(
            "{{\"Online\":{{\"scaler\":{},\"forest\":{}}}}}",
            serde_json::to_string(&scaler).unwrap(),
            serde_json::to_string(&forest).unwrap()
        );
        let loaded: Checkpoint = serde_json::from_str(&v1).unwrap();
        let Checkpoint::Online {
            version,
            labeller,
            alarm_threshold,
            next_seq,
            ..
        } = loaded;
        assert_eq!(version, None);
        assert!(labeller.is_none());
        assert!(alarm_threshold.is_none());
        assert!(next_seq.is_none());
    }
}
