//! Durable serving state: the full Algorithm 2 pipeline — forest, scaler,
//! labelling queues, alarm threshold — plus the stream position, written
//! atomically (write-tmp → fsync → rename) so a crash never leaves a
//! half-written file.
//!
//! The JSON shape is deliberately identical to the CLI's `SavedModel`
//! (`{"Online": {...}}`): a v1 model file written by `orfpred train
//! --online` (scaler + forest only) restores into a daemon with empty
//! labelling queues, and a daemon checkpoint loads anywhere a `SavedModel`
//! does. The extra fields are optional for exactly that reason.
//!
//! Loading is defensive: a truncated, torn, or structurally inconsistent
//! file yields a typed [`CheckpointError`] with a message naming the file
//! and the defect — never a panic deep inside a deserializer or, worse, an
//! engine that starts on nonsense state (`tests/fault_checkpoint.rs`
//! exercises the torn-write path end to end).

use crate::fault::{CheckpointFault, FaultInjector, NoFaults};
use orfpred_core::{AdaptiveState, OnlineLabeller, OnlineRandomForest};
use orfpred_prep::Preprocessor;
use orfpred_smart::scale::OnlineMinMax;
use orfpred_smart::{DomainSchema, WindowStage};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Current checkpoint schema version ([`Checkpoint::Online`]'s `version`
/// field). v1 files predate the field and deserialize as `None`; v2 files
/// predate the domain-schema and window-stage fields, which deserialize as
/// `None` — the implicit SMART domain with no derived features.
pub const CHECKPOINT_VERSION: u32 = 3;

/// Why a checkpoint could not be saved or loaded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file could not be read or written (missing, permissions,
    /// full disk, failed fsync/rename).
    Io {
        /// File the operation targeted.
        path: PathBuf,
        /// Operating-system error text.
        detail: String,
    },
    /// The file exists but does not hold a usable checkpoint: truncated by
    /// a torn write, garbage bytes, or a JSON document whose pieces are
    /// mutually inconsistent (see [`Checkpoint::validate`]).
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// What exactly is wrong with it.
        detail: String,
    },
    /// An injected fault aborted the save mid-write (testkit only). The
    /// on-disk state is whatever the fault left behind — the previous file
    /// for [`CheckpointFault::CrashBeforeRename`], a truncated file for
    /// [`CheckpointFault::TornWrite`].
    Injected {
        /// File the aborted save targeted.
        path: PathBuf,
        /// The fault that fired.
        detail: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, detail } => {
                write!(f, "checkpoint I/O error on {}: {detail}", path.display())
            }
            CheckpointError::Corrupt { path, detail } => write!(
                f,
                "checkpoint {} is truncated or corrupt: {detail} \
                 (delete it or restore an older checkpoint to proceed)",
                path.display()
            ),
            CheckpointError::Injected { path, detail } => write!(
                f,
                "injected checkpoint fault on {}: {detail}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A serving checkpoint; the single variant keeps the external tag that
/// makes the file a valid `SavedModel` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Checkpoint {
    /// Online pipeline state.
    Online {
        /// Streaming min–max scaler state.
        scaler: OnlineMinMax,
        /// The online random forest.
        forest: OnlineRandomForest,
        /// Schema version; `None` on v1 files (scaler + forest only).
        version: Option<u32>,
        /// Merged per-disk labelling queues (Algorithm 2 state). `None` on
        /// v1 files: restore with empty queues.
        labeller: Option<OnlineLabeller>,
        /// Alarm operating point. `None` on v1 files: use the config's.
        alarm_threshold: Option<f32>,
        /// Alarms raised before the checkpoint.
        alarms_raised: Option<u64>,
        /// Next global sequence number; a restored engine resumes here.
        next_seq: Option<u64>,
        /// Stream events (samples + failures, barriers excluded) applied
        /// before the checkpoint. `next_seq` cannot serve this purpose —
        /// it also counts checkpoint/shutdown barriers — and the telemetry
        /// store's catch-up replay needs the exact number of *events* to
        /// skip (`daemon`'s `catchup_store`). `None` on older files:
        /// catch-up then replays from the beginning. With a preprocessing
        /// stage enabled this counts *raw* events offered to `ingest`
        /// (before repair/drop/hold), matching what the store replays.
        events_ingested: Option<u64>,
        /// Ingest-side preprocessing state (imputation memory, held
        /// failures, repair counters). `None` on older files or when the
        /// engine runs without a prep stage.
        prep: Option<Preprocessor>,
        /// Drift-adaptation loop state (detector windows, labelled-history
        /// buffers, rebuild bookkeeping). `None` on older files or when the
        /// engine runs without adaptation.
        adapt: Option<AdaptiveState>,
        /// The telemetry domain the checkpointed pipeline ran on. `None`
        /// on v1/v2 files: the implicit SMART domain. Carried so a restore
        /// against a different domain fails a fingerprint check instead of
        /// silently misaligning feature columns.
        schema: Option<DomainSchema>,
        /// Sliding-window derived-feature state at the barrier (per-disk
        /// history). `None` on v1/v2 files or when the domain's derived
        /// plan is empty.
        window: Option<WindowStage>,
    },
}

impl Checkpoint {
    /// Serialize and atomically replace `path`: write to a sibling
    /// temporary file, fsync it, then rename over the target, so `path`
    /// always holds either the previous or the new checkpoint in full.
    pub fn save_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        self.save_atomic_faulted(path, &NoFaults)
    }

    /// [`Checkpoint::save_atomic`] with an injection point: the injector
    /// may abort the save mid-write to simulate a crash or a torn file
    /// (the fault semantics are documented on [`CheckpointFault`]).
    pub fn save_atomic_faulted(
        &self,
        path: &Path,
        injector: &dyn FaultInjector,
    ) -> Result<(), CheckpointError> {
        let io = |p: &Path, e: std::io::Error| CheckpointError::Io {
            path: p.to_path_buf(),
            detail: e.to_string(),
        };
        let bytes = serde_json::to_vec(self).map_err(|e| CheckpointError::Io {
            path: path.to_path_buf(),
            detail: format!("serialize checkpoint: {e}"),
        })?;
        let tmp = path.with_extension("tmp");
        match injector.checkpoint_fault(path) {
            CheckpointFault::None => {}
            CheckpointFault::CrashBeforeRename => {
                // The crash window the rename protects against: tmp fully
                // written and synced, target untouched.
                std::fs::write(&tmp, &bytes).map_err(|e| io(&tmp, e))?;
                return Err(CheckpointError::Injected {
                    path: path.to_path_buf(),
                    detail: "crash before rename (tmp written, target untouched)".into(),
                });
            }
            CheckpointFault::TornWrite { keep } => {
                // A filesystem without the atomic guarantee: a prefix of
                // the new bytes lands directly in the target.
                let keep = keep.min(bytes.len());
                std::fs::write(path, &bytes[..keep]).map_err(|e| io(path, e))?;
                return Err(CheckpointError::Injected {
                    path: path.to_path_buf(),
                    detail: format!("torn write ({keep} of {} bytes)", bytes.len()),
                });
            }
        }
        let mut file = std::fs::File::create(&tmp).map_err(|e| io(&tmp, e))?;
        file.write_all(&bytes).map_err(|e| io(&tmp, e))?;
        file.sync_all().map_err(|e| io(&tmp, e))?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(|e| io(path, e))?;
        Ok(())
    }

    /// Load a checkpoint (or v1 `SavedModel::Online`) from `path`.
    ///
    /// A missing/unreadable file is [`CheckpointError::Io`]; anything that
    /// parses wrong or fails [`Checkpoint::validate`] is
    /// [`CheckpointError::Corrupt`] — callers can distinguish "no
    /// checkpoint yet" from "the checkpoint is damaged, fall back".
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path).map_err(|e| CheckpointError::Io {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
        let ck: Checkpoint =
            serde_json::from_slice(&bytes).map_err(|e| CheckpointError::Corrupt {
                path: path.to_path_buf(),
                detail: e.to_string(),
            })?;
        ck.validate().map_err(|detail| CheckpointError::Corrupt {
            path: path.to_path_buf(),
            detail,
        })?;
        Ok(ck)
    }

    /// Structural consistency checks on a parsed checkpoint: pieces that
    /// deserialize fine individually but cannot have come from one engine
    /// are rejected here, before they can panic deep inside scoring or
    /// restore (scaler/forest width mismatch, a zero labelling window, a
    /// version from the future).
    pub fn validate(&self) -> Result<(), String> {
        // lint: allow(checkpoint_coverage, reason="shape validation probes only the structurally constrained fields; Engine::restore consumes every field")
        let Checkpoint::Online {
            scaler,
            forest,
            version,
            labeller,
            alarm_threshold,
            schema,
            window,
            ..
        } = self;
        if let Some(v) = version {
            if *v > CHECKPOINT_VERSION {
                return Err(format!(
                    "version {v} is newer than this binary's {CHECKPOINT_VERSION}"
                ));
            }
        }
        if scaler.n_outputs() == 0 {
            return Err("scaler has zero output columns".into());
        }
        if scaler.n_outputs() != forest.n_features() {
            return Err(format!(
                "scaler produces {} features but the forest expects {}",
                scaler.n_outputs(),
                forest.n_features()
            ));
        }
        if let Some(l) = labeller {
            if l.window() == 0 {
                return Err("labeller window is zero (queues could never release)".into());
            }
        }
        if let Some(t) = alarm_threshold {
            if !t.is_finite() {
                return Err(format!("alarm threshold {t} is not finite"));
            }
        }
        if let Some(s) = schema {
            s.validate().map_err(|e| format!("domain schema: {e}"))?;
            if let Some(w) = window {
                if w.n_base() != s.n_base_features() || w.n_features() != s.n_features() {
                    return Err(format!(
                        "window stage is {}→{} columns but the schema says {}→{}",
                        w.n_base(),
                        w.n_features(),
                        s.n_base_features(),
                        s.n_features()
                    ));
                }
            }
        } else if window.is_some() {
            return Err("window state present without a domain schema".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_core::OrfConfig;

    fn tiny() -> Checkpoint {
        let cols = vec![0usize, 2];
        let mut scaler = OnlineMinMax::new_log1p(&cols);
        scaler.update(&[1.0, 9.0, 3.0]);
        let mut forest = OnlineRandomForest::new(
            2,
            OrfConfig {
                n_trees: 2,
                warmup_age: 0,
                ..OrfConfig::default()
            },
            7,
        );
        forest.update(&[0.1, 0.9], true);
        let mut labeller = OnlineLabeller::new(7);
        labeller.observe_sample(3, 1, &[1.0, 9.0, 3.0]);
        Checkpoint::Online {
            scaler,
            forest,
            version: Some(CHECKPOINT_VERSION),
            labeller: Some(labeller),
            alarm_threshold: Some(0.4),
            alarms_raised: Some(5),
            next_seq: Some(42),
            events_ingested: Some(41),
            prep: Some(Preprocessor::new(&orfpred_prep::PrepConfig::tolerant())),
            adapt: None,
            schema: Some(DomainSchema::smart()),
            window: None,
        }
    }

    #[test]
    fn atomic_save_round_trips_byte_identically() {
        let ck = tiny();
        let path = std::env::temp_dir().join("orfpred_serve_ckpt_test.json");
        ck.save_atomic(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        // Byte-identity of re-serialization is the restore guarantee.
        assert_eq!(
            serde_json::to_string(&ck).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file renamed away"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_saved_model_without_serving_fields_loads() {
        let ck = tiny();
        // Strip the serving fields down to a v1 document by hand.
        let Checkpoint::Online { scaler, forest, .. } = ck;
        let v1 = format!(
            "{{\"Online\":{{\"scaler\":{},\"forest\":{}}}}}",
            serde_json::to_string(&scaler).unwrap(),
            serde_json::to_string(&forest).unwrap()
        );
        let loaded: Checkpoint = serde_json::from_str(&v1).unwrap();
        loaded.validate().unwrap();
        let Checkpoint::Online {
            version,
            labeller,
            alarm_threshold,
            next_seq,
            ..
        } = loaded;
        assert_eq!(version, None);
        assert!(labeller.is_none());
        assert!(alarm_threshold.is_none());
        assert!(next_seq.is_none());
    }

    #[test]
    fn missing_file_is_io_not_corrupt() {
        let path = std::env::temp_dir().join("orfpred_serve_ckpt_does_not_exist.json");
        match Checkpoint::load(&path) {
            Err(CheckpointError::Io { .. }) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_file_is_a_typed_corrupt_error() {
        let path = std::env::temp_dir().join("orfpred_serve_ckpt_trunc_test.json");
        let ck = tiny();
        ck.save_atomic(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        for frac in [0, full.len() / 3, full.len() - 1] {
            std::fs::write(&path, &full[..frac]).unwrap();
            match Checkpoint::load(&path) {
                Err(CheckpointError::Corrupt { detail, .. }) => {
                    assert!(!detail.is_empty());
                }
                other => panic!("truncation to {frac} bytes: expected Corrupt, got {other:?}"),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inconsistent_document_is_rejected_by_validate() {
        // Scaler for 2 columns, forest expecting 5: parses, must not load.
        let Checkpoint::Online { scaler, .. } = tiny();
        let forest = OnlineRandomForest::new(5, OrfConfig::default(), 7);
        let bad = Checkpoint::Online {
            scaler,
            forest,
            version: Some(CHECKPOINT_VERSION),
            labeller: None,
            alarm_threshold: Some(0.5),
            alarms_raised: None,
            next_seq: None,
            events_ingested: None,
            prep: None,
            adapt: None,
            schema: None,
            window: None,
        };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("forest expects"), "got: {err}");
        let path = std::env::temp_dir().join("orfpred_serve_ckpt_inconsistent_test.json");
        std::fs::write(&path, serde_json::to_vec(&bad).unwrap()).unwrap();
        assert!(matches!(
            Checkpoint::load(&path),
            Err(CheckpointError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_version_is_rejected() {
        let Checkpoint::Online { scaler, forest, .. } = tiny();
        let bad = Checkpoint::Online {
            scaler,
            forest,
            version: Some(CHECKPOINT_VERSION + 1),
            labeller: None,
            alarm_threshold: None,
            alarms_raised: None,
            next_seq: None,
            events_ingested: None,
            prep: None,
            adapt: None,
            schema: None,
            window: None,
        };
        assert!(bad.validate().unwrap_err().contains("newer"));
    }

    #[test]
    fn v3_checkpoint_with_non_default_domain_round_trips() {
        let schema = DomainSchema::mce();
        let mut window = WindowStage::new(&schema);
        // Give the window real per-disk history so the round trip covers it.
        for day in 0..4u16 {
            for disk in [2u32, 9] {
                let mut row = vec![0.0f32; schema.n_base_features()];
                row[1] = f32::from(day) * 3.0 + disk as f32;
                window.extend(disk, &mut row);
            }
        }
        let Checkpoint::Online {
            scaler,
            forest,
            labeller,
            ..
        } = tiny();
        let ck = Checkpoint::Online {
            scaler,
            forest,
            version: Some(CHECKPOINT_VERSION),
            labeller,
            alarm_threshold: Some(0.4),
            alarms_raised: Some(1),
            next_seq: Some(7),
            events_ingested: Some(6),
            prep: None,
            adapt: None,
            schema: Some(schema.clone()),
            window: Some(window),
        };
        let path = std::env::temp_dir().join("orfpred_serve_ckpt_v3_domain_test.json");
        ck.save_atomic(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(
            serde_json::to_string(&ck).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
        let Checkpoint::Online {
            schema: s,
            window: w,
            ..
        } = back;
        let s = s.unwrap();
        assert_eq!(s.fingerprint(), schema.fingerprint());
        let w = w.unwrap();
        assert_eq!(w.n_tracked(), 2, "per-disk history survived");
        assert_eq!(w.n_features(), schema.n_features());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_checkpoint_without_schema_loads_as_implicit_smart() {
        // A v2 document: everything tiny() has except the v3 fields.
        let Checkpoint::Online { scaler, forest, .. } = tiny();
        let v2 = format!(
            "{{\"Online\":{{\"scaler\":{},\"forest\":{},\"version\":2,\"alarm_threshold\":0.5}}}}",
            serde_json::to_string(&scaler).unwrap(),
            serde_json::to_string(&forest).unwrap()
        );
        let loaded: Checkpoint = serde_json::from_str(&v2).unwrap();
        loaded.validate().unwrap();
        let Checkpoint::Online { schema, window, .. } = loaded;
        assert!(
            schema.is_none(),
            "v2 files carry no schema (implicit SMART)"
        );
        assert!(window.is_none());
    }

    #[test]
    fn mismatched_window_and_schema_are_rejected() {
        let Checkpoint::Online { scaler, forest, .. } = tiny();
        let bad = Checkpoint::Online {
            scaler,
            forest,
            version: Some(CHECKPOINT_VERSION),
            labeller: None,
            alarm_threshold: None,
            alarms_raised: None,
            next_seq: None,
            events_ingested: None,
            prep: None,
            adapt: None,
            // SMART schema but a window stage built for the mce layout.
            schema: Some(DomainSchema::smart()),
            window: Some(WindowStage::new(&DomainSchema::mce())),
        };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("window stage"), "got: {err}");
    }
}
