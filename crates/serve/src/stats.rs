//! Live serving counters: lock-free atomics updated by the ingest path,
//! the shards, and the model writer; snapshotted on demand by `stats`
//! requests.

use orfpred_prep::PrepCounters;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of logarithmic latency buckets (bucket `i` holds durations with
/// 64-bit nanosecond values of `i` significant bits, i.e. `[2^(i-1), 2^i)`).
const N_BUCKETS: usize = 64;

/// Log-bucketed latency histogram with atomic counters.
///
/// Percentiles are approximate (upper bucket bound, i.e. within 2× of the
/// true value), which is plenty for spotting serving regressions live.
pub struct LatencyHistogram {
    buckets: [AtomicU64; N_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Record one duration.
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let bucket = (64 - ns.leading_zeros()) as usize; // 0 for ns == 0
        self.buckets[bucket.min(N_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Approximate `q`-quantile in nanoseconds (upper bound of the bucket
    /// containing it); 0 when nothing was recorded.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << i).saturating_sub(1).max(1)
                };
            }
        }
        u64::MAX
    }
}

/// Shared live counters for one [`crate::Engine`].
#[derive(Default)]
pub struct ServeStats {
    /// SMART snapshots accepted by `ingest`.
    pub samples_ingested: AtomicU64,
    /// Failure events accepted by `ingest`.
    pub failures_ingested: AtomicU64,
    /// Alarms the model writer has raised.
    pub alarms_raised: AtomicU64,
    /// Sequence numbers issued by the ingest path.
    pub events_issued: AtomicU64,
    /// Sequence numbers the writer has fully applied.
    pub events_applied: AtomicU64,
    /// Training samples the forest has consumed (mirrored from the writer).
    pub forest_samples_seen: AtomicU64,
    /// Trees discarded and regrown (mirrored from the writer).
    pub trees_replaced: AtomicU64,
    /// Model snapshots published for the lock-free scoring path.
    pub snapshots_published: AtomicU64,
    /// Distribution shifts the adaptation loop has declared (mirrored
    /// from the writer; stays 0 without an adaptation loop).
    pub drift_events: AtomicU64,
    /// Forests rebuilt by the long-term update policy (mirrored from the
    /// writer; stays 0 under `no-update` or without adaptation).
    pub model_rebuilds: AtomicU64,
    /// In-flight events per shard (sent by ingest, not yet picked up).
    pub shard_depths: Vec<AtomicU64>,
    /// Latency of snapshot scoring (`score` requests) and of the writer's
    /// in-stream scoring, pooled.
    pub score_latency: LatencyHistogram,
}

impl ServeStats {
    /// Counters for an engine with `n_shards` shards.
    pub fn new(n_shards: usize) -> Self {
        Self {
            shard_depths: (0..n_shards).map(|_| AtomicU64::new(0)).collect(),
            ..Self::default()
        }
    }

    /// Materialize a point-in-time report.
    pub fn report(&self) -> StatsReport {
        StatsReport {
            samples_ingested: self.samples_ingested.load(Ordering::Relaxed),
            failures_ingested: self.failures_ingested.load(Ordering::Relaxed),
            alarms_raised: self.alarms_raised.load(Ordering::Relaxed),
            events_issued: self.events_issued.load(Ordering::Relaxed),
            events_applied: self.events_applied.load(Ordering::Relaxed),
            forest_samples_seen: self.forest_samples_seen.load(Ordering::Relaxed),
            trees_replaced: self.trees_replaced.load(Ordering::Relaxed),
            snapshots_published: self.snapshots_published.load(Ordering::Relaxed),
            drift_events: self.drift_events.load(Ordering::Relaxed),
            model_rebuilds: self.model_rebuilds.load(Ordering::Relaxed),
            prep: None,
            shard_queue_depths: self
                .shard_depths
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
            scores_measured: self.score_latency.count(),
            score_latency_p50_ns: self.score_latency.quantile_ns(0.50),
            score_latency_p90_ns: self.score_latency.quantile_ns(0.90),
            score_latency_p99_ns: self.score_latency.quantile_ns(0.99),
        }
    }
}

/// Point-in-time snapshot of [`ServeStats`], as returned to `stats`
/// protocol requests and by [`crate::Engine::stats`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StatsReport {
    /// SMART snapshots accepted by `ingest`.
    pub samples_ingested: u64,
    /// Failure events accepted by `ingest`.
    pub failures_ingested: u64,
    /// Alarms the model writer has raised.
    pub alarms_raised: u64,
    /// Sequence numbers issued by the ingest path.
    pub events_issued: u64,
    /// Sequence numbers the writer has fully applied; `events_issued -
    /// events_applied` is the engine's total in-flight backlog.
    pub events_applied: u64,
    /// Training samples the forest has consumed.
    pub forest_samples_seen: u64,
    /// Trees discarded and regrown by the ORF's OOBE replacement.
    pub trees_replaced: u64,
    /// Model snapshots published for the lock-free scoring path.
    pub snapshots_published: u64,
    /// Distribution shifts the adaptation loop has declared.
    pub drift_events: u64,
    /// Forests rebuilt by the long-term update policy.
    pub model_rebuilds: u64,
    /// Per-rule repair counters of the ingest-side preprocessing stage;
    /// `None` when the engine runs without one.
    pub prep: Option<PrepCounters>,
    /// In-flight events per shard.
    pub shard_queue_depths: Vec<u64>,
    /// Observations in the score-latency histogram.
    pub scores_measured: u64,
    /// Approximate median scoring latency (ns).
    pub score_latency_p50_ns: u64,
    /// Approximate 90th-percentile scoring latency (ns).
    pub score_latency_p90_ns: u64,
    /// Approximate 99th-percentile scoring latency (ns).
    pub score_latency_p99_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record(Duration::from_nanos(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_nanos(1_000_000));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ns(0.5);
        assert!((64..=255).contains(&p50), "p50 bucket for 100ns: {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!(p99 >= 524_287, "p99 must land in the 1ms bucket: {p99}");
        assert!(h.quantile_ns(0.5) <= h.quantile_ns(0.99));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_ns(0.99), 0);
    }

    #[test]
    fn report_mirrors_counters() {
        let s = ServeStats::new(3);
        s.samples_ingested.store(7, Ordering::Relaxed);
        s.shard_depths[1].store(4, Ordering::Relaxed);
        let r = s.report();
        assert_eq!(r.samples_ingested, 7);
        assert_eq!(r.shard_queue_depths, vec![0, 4, 0]);
    }
}
