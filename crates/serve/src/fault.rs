//! Deterministic fault-injection points.
//!
//! The engine's correctness claim — alarms bit-identical to serial replay
//! across sharding, checkpoints, and crash/restore — is only worth much if
//! it survives the faults a real deployment sees: a process dying mid
//! checkpoint, a torn file on a non-atomic filesystem, a shard thread
//! dying with its queue state, channel delivery skew far beyond natural
//! scheduling jitter, and garbage on the wire.
//!
//! This module defines the [`FaultInjector`] trait the hot paths consult
//! at those exact points. Production uses [`NoFaults`], a zero-sized
//! implementation whose methods are trivially inlined no-ops; the
//! `orfpred-testkit` crate implements seeded fault *plans* on top of it
//! and drives the differential test suites in `tests/fault_*.rs`.
//!
//! Every hook is deterministic from the injector's own state — no clocks,
//! no OS randomness — so a failing fault schedule reproduces exactly from
//! a printed seed.

use std::path::Path;

/// What the checkpoint writer should do instead of a clean atomic save.
///
/// Returned by [`FaultInjector::checkpoint_fault`] just before the
/// write-tmp → fsync → rename sequence starts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointFault {
    /// No fault: perform the normal atomic save.
    None,
    /// Simulate a crash after the temporary file is written but before the
    /// rename: the target path keeps its previous content (or stays
    /// absent) and the call reports failure — the atomic-rename guarantee
    /// holding up under an ill-timed crash.
    CrashBeforeRename,
    /// Simulate a torn write on a filesystem without the rename guarantee:
    /// only the first `keep` bytes of the serialized checkpoint land in
    /// the *target* path, and the call reports failure. Loading the
    /// resulting file must yield [`CheckpointError::Corrupt`], never a
    /// panic.
    ///
    /// [`CheckpointError::Corrupt`]: crate::checkpoint::CheckpointError
    TornWrite {
        /// How many bytes of the serialized checkpoint survive.
        keep: usize,
    },
}

/// Injection points threaded through the serving engine and daemon.
///
/// All methods default to "no fault", so implementations override only the
/// points a test exercises. Implementations must be deterministic: the
/// same injector state and the same call sequence must produce the same
/// decisions (the testkit keys every fault off global sequence numbers and
/// consumes each one exactly once, so crash-recovery replays do not
/// re-fire it).
pub trait FaultInjector: Send + Sync + std::fmt::Debug {
    /// Called by a shard thread as it dequeues the event with global
    /// sequence number `seq`. Returning `true` makes the shard thread die
    /// on the spot — dropping its labelling queues and every event still
    /// in its channel, exactly the state loss of a crashed thread. The
    /// engine surfaces the death as [`ServeError::ShuttingDown`] on the
    /// next ingest routed to that shard.
    ///
    /// [`ServeError::ShuttingDown`]: crate::engine::ServeError
    fn kill_shard(&self, _shard: usize, _seq: u64) -> bool {
        false
    }

    /// Called by a shard thread just before forwarding the labelled
    /// message for `seq` to the model writer. Returning `n > 0` holds the
    /// message back until `n` later messages from the same shard have been
    /// forwarded first — forcing out-of-order delivery well beyond natural
    /// scheduling skew, which the writer's reorder buffer must absorb.
    /// Held messages are flushed before any checkpoint/shutdown barrier.
    fn delay_to_writer(&self, _shard: usize, _seq: u64) -> usize {
        0
    }

    /// Called by the checkpoint writer before persisting to `path`.
    fn checkpoint_fault(&self, _path: &Path) -> CheckpointFault {
        CheckpointFault::None
    }

    /// Called by the daemon loop for every primary-input line (0-based
    /// index, counted before blank-line filtering). Returning `Some`
    /// replaces the line — the hook tests force malformed bytes at chosen
    /// stream positions without rebuilding the input.
    fn mangle_line(&self, _idx: u64, _line: &str) -> Option<String> {
        None
    }

    /// Called by the *multi-tenant* daemon before processing primary-input
    /// line `idx`. Returning `Some((tenant, n_shards))` live-reshards that
    /// tenant first (an empty tenant name addresses the fleet's default
    /// tenant, the single-tenant convention). Lets fault plans exercise the
    /// reshard drain-barrier at exact stream positions.
    fn reshard_event(&self, _idx: u64) -> Option<(String, usize)> {
        None
    }

    /// Called by the *multi-tenant* daemon before processing primary-input
    /// line `idx`. Returning `Some(tenant)` kills that tenant on the spot —
    /// engine torn down, undrained state lost, no checkpoint written (an
    /// empty name addresses the default tenant). Crash-recovery tests
    /// restart the daemon afterwards and compare against a clean run.
    fn kill_tenant(&self, _idx: u64) -> Option<String> {
        None
    }
}

/// The production injector: every hook is a no-op.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_defaults_are_inert() {
        let inj = NoFaults;
        assert!(!inj.kill_shard(0, 0));
        assert_eq!(inj.delay_to_writer(3, 17), 0);
        assert_eq!(
            inj.checkpoint_fault(Path::new("/tmp/x")),
            CheckpointFault::None
        );
        assert!(inj.mangle_line(5, "{\"type\":\"stats\"}").is_none());
        assert!(inj.reshard_event(0).is_none());
        assert!(inj.kill_tenant(0).is_none());
    }
}
