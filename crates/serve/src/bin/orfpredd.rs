//! `orfpredd` — the ORF serving daemon.
//!
//! Reads line-delimited JSON protocol events from stdin, writes alarms and
//! replies to stdout, optionally serves the same protocol on a TCP port,
//! and checkpoints atomically. See the crate docs and `README.md`
//! ("Serving") for the protocol.
//!
//! ```text
//! orfpredd [--shards N] [--listen ADDR] [--checkpoint PATH]
//!          [--store DIR] [--threshold T] [--window W] [--seed S]
//!          [--trees K] [--queue-capacity Q] [--snapshot-every M]
//! ```

use orfpred_core::OnlinePredictorConfig;
use orfpred_serve::{daemon, DaemonConfig, ServeConfig};
use orfpred_smart::attrs::table2_feature_columns;
use std::io::Write;
use std::path::PathBuf;

const USAGE: &str = "\
orfpredd — sharded online disk-failure-prediction daemon

USAGE:
    orfpredd [OPTIONS]

OPTIONS:
    --shards N           labelling shard threads (default 4)
    --listen ADDR        also serve the protocol on this TCP address
    --checkpoint PATH    restore from PATH if it exists; checkpoint to it
                         on shutdown and on path-less checkpoint requests
    --store DIR          replay the telemetry store at DIR before going
                         live, skipping events the restored checkpoint
                         already covers
    --threshold T        alarm threshold (default 0.5)
    --window W           labelling window W in days (default 7)
    --seed S             forest RNG seed (default 42)
    --trees K            number of trees (default from OrfConfig)
    --queue-capacity Q   per-shard bounded queue capacity (default 1024)
    --snapshot-every M   publish a scoring snapshot every M samples
                         (default 256)
    -h, --help           print this help
";

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
    value
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag}: invalid value"))
}

fn build_config(mut argv: impl Iterator<Item = String>) -> Result<DaemonConfig, String> {
    let mut predictor = OnlinePredictorConfig::new(table2_feature_columns(), 42);
    let mut serve = ServeConfig::new(predictor.clone());
    let mut listen = None;
    let mut checkpoint_path = None;
    let mut catchup_store = None;

    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--shards" => serve.n_shards = parse("--shards", argv.next())?,
            "--listen" => listen = Some(argv.next().ok_or("--listen needs a value")?),
            "--checkpoint" => {
                checkpoint_path = Some(PathBuf::from(
                    argv.next().ok_or("--checkpoint needs a value")?,
                ));
            }
            "--store" => {
                catchup_store = Some(PathBuf::from(argv.next().ok_or("--store needs a value")?));
            }
            "--threshold" => predictor.alarm_threshold = parse("--threshold", argv.next())?,
            "--window" => predictor.window_days = parse("--window", argv.next())?,
            "--seed" => predictor.seed = parse("--seed", argv.next())?,
            "--trees" => predictor.orf.n_trees = parse("--trees", argv.next())?,
            "--queue-capacity" => {
                serve.queue_capacity = parse("--queue-capacity", argv.next())?;
            }
            "--snapshot-every" => {
                serve.snapshot_every = parse("--snapshot-every", argv.next())?;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }
    if serve.n_shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    serve.predictor = predictor;
    Ok(DaemonConfig {
        serve,
        listen,
        checkpoint_path,
        catchup_store,
    })
}

fn main() {
    let cfg = match build_config(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("orfpredd: {e}");
            std::process::exit(2);
        }
    };
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match daemon::run(&cfg, stdin.lock(), stdout.lock()) {
        Ok(finished) => {
            let stats = format!(
                "orfpredd: clean shutdown, {} alarms in stream",
                finished.alarms.len()
            );
            let _ = writeln!(std::io::stderr(), "{stats}");
        }
        Err(e) => {
            eprintln!("orfpredd: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> impl Iterator<Item = String> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn defaults_and_overrides_parse() {
        let cfg = build_config(args(&[])).unwrap();
        assert_eq!(cfg.serve.n_shards, 4);
        assert!(cfg.listen.is_none());

        let cfg = build_config(args(&[
            "--shards",
            "8",
            "--threshold",
            "0.7",
            "--checkpoint",
            "/tmp/ck.json",
            "--listen",
            "127.0.0.1:7077",
        ]))
        .unwrap();
        assert_eq!(cfg.serve.n_shards, 8);
        assert_eq!(cfg.serve.predictor.alarm_threshold, 0.7);
        assert_eq!(cfg.listen.as_deref(), Some("127.0.0.1:7077"));
        assert!(cfg.checkpoint_path.is_some());
    }

    #[test]
    fn bad_arguments_are_rejected() {
        assert!(build_config(args(&["--shards"])).is_err());
        assert!(build_config(args(&["--shards", "zero"])).is_err());
        assert!(build_config(args(&["--shards", "0"])).is_err());
        assert!(build_config(args(&["--frobnicate"])).is_err());
    }
}
