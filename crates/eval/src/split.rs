//! Stratified disk-level train/test splits (§4.4: 70 % of good and failed
//! disks each go to training, 30 % to test).
//!
//! Splitting by *disk* rather than by sample is essential: samples of one
//! disk are heavily correlated, and the paper's FDR/FAR are per-disk
//! quantities.

use orfpred_smart::record::Dataset;
use orfpred_util::Xoshiro256pp;

/// A disk-level split.
#[derive(Clone, Debug)]
pub struct DiskSplit {
    /// Disk ids in the training set.
    pub train: Vec<u32>,
    /// Disk ids in the test set.
    pub test: Vec<u32>,
    /// Membership mask indexed by disk id (`true` = training).
    pub is_train: Vec<bool>,
}

impl DiskSplit {
    /// Stratified split: `train_fraction` of the good disks and of the
    /// failed disks each go to training.
    pub fn stratified(ds: &Dataset, train_fraction: f64, rng: &mut Xoshiro256pp) -> Self {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "train_fraction must be in [0, 1]"
        );
        let mut train = Vec::new();
        let mut test = Vec::new();
        for failed in [false, true] {
            let mut ids: Vec<u32> = ds
                .disks
                .iter()
                .filter(|d| d.failed == failed)
                .map(|d| d.disk_id)
                .collect();
            rng.shuffle(&mut ids);
            let n_train = (ids.len() as f64 * train_fraction).round() as usize;
            train.extend_from_slice(&ids[..n_train]);
            test.extend_from_slice(&ids[n_train..]);
        }
        train.sort_unstable();
        test.sort_unstable();
        let mut is_train = vec![false; ds.disks.len()];
        for &d in &train {
            is_train[d as usize] = true;
        }
        Self {
            train,
            test,
            is_train,
        }
    }

    /// Number of failed disks in the test set.
    pub fn test_failed(&self, ds: &Dataset) -> usize {
        self.test
            .iter()
            .filter(|&&d| ds.disks[d as usize].failed)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_smart::gen::{FleetConfig, FleetSim, ScalePreset};

    fn dataset() -> Dataset {
        let mut cfg = FleetConfig::sta(ScalePreset::Tiny, 3);
        cfg.n_good = 100;
        cfg.n_failed = 20;
        cfg.duration_days = 150;
        FleetSim::collect(&cfg)
    }

    #[test]
    fn split_is_stratified_and_partitions() {
        let ds = dataset();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let split = DiskSplit::stratified(&ds, 0.7, &mut rng);
        assert_eq!(split.train.len() + split.test.len(), 120);
        let train_failed = split
            .train
            .iter()
            .filter(|&&d| ds.disks[d as usize].failed)
            .count();
        assert_eq!(train_failed, 14, "70% of 20 failed disks");
        assert_eq!(split.test_failed(&ds), 6);
        // No overlap.
        for &d in &split.train {
            assert!(split.is_train[d as usize]);
        }
        for &d in &split.test {
            assert!(!split.is_train[d as usize]);
        }
    }

    #[test]
    fn different_seeds_give_different_splits() {
        let ds = dataset();
        let a = DiskSplit::stratified(&ds, 0.7, &mut Xoshiro256pp::seed_from_u64(1));
        let b = DiskSplit::stratified(&ds, 0.7, &mut Xoshiro256pp::seed_from_u64(2));
        assert_ne!(a.train, b.train);
        let c = DiskSplit::stratified(&ds, 0.7, &mut Xoshiro256pp::seed_from_u64(1));
        assert_eq!(a.train, c.train, "same seed reproduces");
    }

    #[test]
    fn extreme_fractions() {
        let ds = dataset();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let all = DiskSplit::stratified(&ds, 1.0, &mut rng);
        assert_eq!(all.test.len(), 0);
        let none = DiskSplit::stratified(&ds, 0.0, &mut rng);
        assert_eq!(none.train.len(), 0);
    }
}
