//! Figures 4–7: simulating practical long-term use (§4.5).
//!
//! Four deployments are compared on the *whole* fleet, month by month:
//!
//! * **No updating** — an offline RF trained once on the initial months,
//!   operating point fixed at deployment. Model aging makes its FAR climb
//!   and FDR sag as the SMART distribution drifts.
//! * **1-month replacing** — retrained each month on only the previous
//!   month's labelled samples (Zhu et al.'s replacing strategy).
//! * **Accumulation** — retrained each month on everything labelled so far.
//! * **ORF** — one online model consuming the live stream through
//!   Algorithm 2; *predictions are causal* (each sample is scored by the
//!   model state at its arrival instant) and no retraining ever happens.
//!
//! For month `i`, offline strategies train on data visible at the end of
//! month `i−1` (their operating point tuned on that same visible past) and
//! are then measured on month `i`'s samples.

use crate::metrics::{monthly_outcome_with, scored_disks_censored, MonthlyOutcome};
use crate::prep::{build_matrix, training_labels, training_labels_range};
use crate::report::{Figure, Series};
use crate::scorer::{FrozenScorer, Scorer};
use crate::split::DiskSplit;
use orfpred_core::{AdaptConfig, OnlinePredictor, OnlinePredictorConfig, OrfConfig};
use orfpred_smart::record::Dataset;
use orfpred_trees::{ForestConfig, RandomForest};
use orfpred_util::Xoshiro256pp;
use serde::{Deserialize, Serialize};

/// Configuration for the long-term simulation.
#[derive(Clone, Debug)]
pub struct LongtermConfig {
    /// Feature columns.
    pub cols: Vec<usize>,
    /// Prediction window in days.
    pub window: u16,
    /// Days per month.
    pub month_days: u16,
    /// Months of initial training before deployment (paper: 6 for STA,
    /// 4 for STB).
    pub initial_months: usize,
    /// Last month evaluated (inclusive).
    pub end_month: usize,
    /// NegSampleRatio for the offline RF.
    pub lambda: Option<f64>,
    /// FAR target used when fixing/tuning operating points.
    pub target_far: f64,
    /// Lower bound on tuned alarm thresholds. Operating points are tuned
    /// on the model's own (in-sample) past, where good-disk scores are
    /// systematically deflated; without a floor an occasional over-confident
    /// month tunes τ into the noise band and the next month's
    /// out-of-sample scores blow the FAR up. 0.2 is far below any sensible
    /// forest operating point yet above the noise floor.
    pub tau_floor: f32,
    /// Offline RF settings.
    pub forest: ForestConfig,
    /// ORF settings.
    pub orf: OrfConfig,
    /// Master seed.
    pub seed: u64,
}

impl LongtermConfig {
    /// Paper-like defaults.
    pub fn new(cols: Vec<usize>, initial_months: usize, end_month: usize, seed: u64) -> Self {
        Self {
            cols,
            window: 7,
            month_days: 30,
            initial_months,
            end_month,
            lambda: Some(3.0),
            target_far: 0.01,
            tau_floor: 0.2,
            forest: ForestConfig::default(),
            orf: OrfConfig::default(),
            seed,
        }
    }
}

/// Monthly FDR/FAR series of one deployment strategy.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StrategySeries {
    /// Strategy label.
    pub name: String,
    /// Evaluated months.
    pub months: Vec<usize>,
    /// Monthly outcomes (percentages; `NaN` = no data that month).
    pub fdr: Vec<f64>,
    /// Monthly FARs (%).
    pub far: Vec<f64>,
}

impl StrategySeries {
    fn push(&mut self, o: &MonthlyOutcome) {
        self.months.push(o.month);
        self.fdr.push(o.fdr * 100.0);
        self.far.push(o.far * 100.0);
    }
}

/// Result of the long-term simulation: one series per strategy.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LongtermResult {
    /// Offline RF frozen at deployment.
    pub no_update: StrategySeries,
    /// Offline RF retrained on the last month only.
    pub replacing: StrategySeries,
    /// Offline RF retrained on all data so far.
    pub accumulation: StrategySeries,
    /// Online Random Forest (no retraining).
    pub orf: StrategySeries,
}

impl LongtermResult {
    /// Figure of the FAR series (Figures 4–5).
    pub fn far_figure(&self, title: &str) -> Figure {
        self.figure(title, "FAR", |s| (s.months.clone(), s.far.clone()))
    }

    /// Figure of the FDR series (Figures 6–7).
    pub fn fdr_figure(&self, title: &str) -> Figure {
        self.figure(title, "FDR", |s| (s.months.clone(), s.fdr.clone()))
    }

    fn figure(
        &self,
        title: &str,
        ylabel: &str,
        pick: impl Fn(&StrategySeries) -> (Vec<usize>, Vec<f64>),
    ) -> Figure {
        let series = [
            &self.no_update,
            &self.replacing,
            &self.accumulation,
            &self.orf,
        ]
        .iter()
        .map(|s| {
            let (m, y) = pick(s);
            Series {
                name: s.name.clone(),
                x: m.into_iter().map(|v| v as f64).collect(),
                y,
            }
        })
        .collect();
        Figure {
            title: title.into(),
            xlabel: "month".into(),
            ylabel: ylabel.into(),
            series,
        }
    }
}

/// Run the long-term simulation.
pub fn run_longterm(ds: &Dataset, cfg: &LongtermConfig) -> LongtermResult {
    let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
    let all_disks: Vec<u32> = ds.disks.iter().map(|d| d.disk_id).collect();
    let w0 = cfg.initial_months as u16 * cfg.month_days;

    // Offline strategies train on 85% of the disks and tune their operating
    // points on the held-out 15% (within the visible past). Tuning on the
    // training disks themselves systematically deflates good-disk scores
    // (the model has memorised them as negative) and occasionally tunes τ
    // into the noise band, blowing up the next month's FAR.
    let tune_split = DiskSplit::stratified(ds, 0.85, &mut rng);

    // ---- ORF: causal scores over the whole stream. ----
    let mut predictor_cfg = OnlinePredictorConfig::new(cfg.cols.clone(), rng.next_u64());
    predictor_cfg.orf = cfg.orf.clone();
    predictor_cfg.window_days = cfg.window as usize;
    let mut predictor = OnlinePredictor::new(&predictor_cfg);
    let mut causal_scores = vec![0.0f32; ds.records.len()];
    for (pos, rec) in ds.records.iter().enumerate() {
        // Deployment behaviour: each sample is scored by the model state at
        // its arrival instant, then the model learns whatever just became
        // labelled.
        causal_scores[pos] = predictor.observe_sample_scored(rec).0;
        let info = &ds.disks[rec.disk_id as usize];
        if info.failed && rec.day == info.last_day {
            predictor.observe_failure(rec.disk_id);
        }
    }
    let orf_score_fn = |pos: usize, _rec: &orfpred_smart::record::DiskDay| causal_scores[pos];

    // ---- No-update RF: trained once on the initial window. ----
    // The model is fixed for the whole horizon, so every record is
    // pre-scored once through the frozen batch kernel; tuning and each
    // month's evaluation then index the same array.
    let initial_labels = training_labels(ds, &tune_split.is_train, w0, cfg.window);
    let frozen_scores =
        build_matrix(ds, &initial_labels, &cfg.cols, cfg.lambda, &mut rng).map(|tm| {
            let model = RandomForest::fit(&tm.x, &tm.y, &cfg.forest, rng.next_u64());
            let scorer = FrozenScorer {
                forest: model.freeze(),
                scaler: tm.scaler,
            };
            prescore_range(ds, &scorer, 0, ds.duration_days.saturating_add(1))
        });
    let frozen_tau = frozen_scores.as_ref().map(|scores| {
        let scored = scored_disks_censored(
            ds,
            &tune_split.test,
            &|pos, _| scores[pos],
            cfg.window,
            0,
            w0 + 1,
            Some(w0),
        );
        scored.tune_for_far(cfg.target_far).tau.max(cfg.tau_floor)
    });

    let mut result = LongtermResult {
        no_update: StrategySeries {
            name: "No updating".into(),
            ..Default::default()
        },
        replacing: StrategySeries {
            name: "1-month replacing".into(),
            ..Default::default()
        },
        accumulation: StrategySeries {
            name: "Accumulation".into(),
            ..Default::default()
        },
        orf: StrategySeries {
            name: "ORF".into(),
            ..Default::default()
        },
    };

    for month in (cfg.initial_months + 1)..=cfg.end_month {
        let train_end = (month as u16 - 1) * cfg.month_days; // end of month i−1
        if train_end >= ds.duration_days {
            break;
        }

        // ORF: causal scores; the *model* is never retrained, but the alarm
        // threshold is recalibrated each month from the trailing month of
        // observed scores — an online model's score distribution keeps
        // moving as trees grow and are replaced, so a deployment-frozen τ
        // silently drifts off its FAR target (any production deployment
        // recalibrates operating points from live alarm statistics).
        let tune_from = train_end.saturating_sub(cfg.month_days);
        let orf_tau = scored_disks_censored(
            ds,
            &all_disks,
            &orf_score_fn,
            cfg.window,
            tune_from,
            train_end + 1,
            Some(train_end),
        )
        .tune_for_far(cfg.target_far)
        .tau
        .max(cfg.tau_floor);
        result.orf.push(&monthly_outcome_with(
            ds,
            &all_disks,
            &orf_score_fn,
            orf_tau,
            cfg.window,
            month,
            cfg.month_days,
        ));

        // No updating (frozen model, frozen tau, pre-scored records).
        if let (Some(scores), Some(tau)) = (&frozen_scores, frozen_tau) {
            result.no_update.push(&monthly_outcome_with(
                ds,
                &all_disks,
                &|pos, _| scores[pos],
                tau,
                cfg.window,
                month,
                cfg.month_days,
            ));
        } else {
            result.no_update.push(&nan_outcome(month));
        }

        // Accumulation: train on everything up to train_end, tune on the
        // recent visible past (last three months — tuning on the whole
        // history would both leak stale distributions into the operating
        // point and dominate runtime), evaluate on month i.
        let labels = training_labels(ds, &tune_split.is_train, train_end, cfg.window);
        let tune_from = train_end.saturating_sub(3 * cfg.month_days);
        result.accumulation.push(&train_and_eval(
            ds,
            &all_disks,
            &tune_split.test,
            &labels,
            tune_from,
            train_end,
            cfg,
            month,
            &mut rng,
        ));

        // 1-month replacing: train on month i−1 only (tune on the trailing
        // three months — a single month of per-disk maxima is too coarse to
        // pin a 1% FAR).
        let from = train_end.saturating_sub(cfg.month_days);
        let labels = training_labels_range(ds, &tune_split.is_train, from, train_end, cfg.window);
        result.replacing.push(&train_and_eval(
            ds,
            &all_disks,
            &tune_split.test,
            &labels,
            tune_from,
            train_end,
            cfg,
            month,
            &mut rng,
        ));
    }
    result
}

/// Result of one closed-loop run: the monthly series plus the adaptation
/// loop's own counters (how often drift fired, how often the policy
/// actually rebuilt the forest).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ClosedLoopResult {
    /// Monthly FDR/FAR of the adaptive deployment.
    pub series: StrategySeries,
    /// Distribution shifts the detector declared over the stream.
    pub drift_events: u64,
    /// Forests rebuilt by the policy (0 under `no-update`).
    pub rebuilds: u64,
}

/// §4.5 closed loop, offline: one serial Algorithm-2 predictor with the
/// drift-triggered long-term update policy armed, scored causally and
/// measured month by month with the same monthly τ-recalibration protocol
/// as the ORF strategy in [`run_longterm`].
///
/// This is the reference the live daemon is checked against
/// (`tests/serve_adapt.rs`): the serving engine running the same policy on
/// the same fleet must land on the identical model state, so this offline
/// series *is* the live deployment's series.
pub fn run_closed_loop(
    ds: &Dataset,
    cfg: &LongtermConfig,
    adapt: &AdaptConfig,
) -> ClosedLoopResult {
    let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
    let all_disks: Vec<u32> = ds.disks.iter().map(|d| d.disk_id).collect();

    let mut predictor_cfg = OnlinePredictorConfig::new(cfg.cols.clone(), rng.next_u64());
    predictor_cfg.orf = cfg.orf.clone();
    predictor_cfg.window_days = cfg.window as usize;
    predictor_cfg.adapt = Some(adapt.clone());
    let policy = adapt.policy;

    let mut predictor = OnlinePredictor::new(&predictor_cfg);
    let mut causal_scores = vec![0.0f32; ds.records.len()];
    for (pos, rec) in ds.records.iter().enumerate() {
        causal_scores[pos] = predictor.observe_sample_scored(rec).0;
        let info = &ds.disks[rec.disk_id as usize];
        if info.failed && rec.day == info.last_day {
            predictor.observe_failure(rec.disk_id);
        }
    }
    let score_fn = |pos: usize, _rec: &orfpred_smart::record::DiskDay| causal_scores[pos];

    let mut series = StrategySeries {
        name: format!("ORF + {}", policy.as_str()),
        ..Default::default()
    };
    for month in (cfg.initial_months + 1)..=cfg.end_month {
        let train_end = (month as u16 - 1) * cfg.month_days;
        if train_end >= ds.duration_days {
            break;
        }
        let tune_from = train_end.saturating_sub(cfg.month_days);
        let tau = scored_disks_censored(
            ds,
            &all_disks,
            &score_fn,
            cfg.window,
            tune_from,
            train_end + 1,
            Some(train_end),
        )
        .tune_for_far(cfg.target_far)
        .tau
        .max(cfg.tau_floor);
        series.push(&monthly_outcome_with(
            ds,
            &all_disks,
            &score_fn,
            tau,
            cfg.window,
            month,
            cfg.month_days,
        ));
    }

    let (drift_events, rebuilds) = predictor
        .adaptive()
        .map(|a| (a.drift_events(), a.rebuilds()))
        .unwrap_or((0, 0));
    ClosedLoopResult {
        series,
        drift_events,
        rebuilds,
    }
}

fn nan_outcome(month: usize) -> MonthlyOutcome {
    MonthlyOutcome {
        month,
        fdr: f64::NAN,
        far: f64::NAN,
        n_failed: 0,
        n_good: 0,
    }
}

/// Pre-score every record with `rec.day` in `[from, to)` through the
/// scorer's batch path ([`Scorer::score_raw_many`] — the frozen
/// breadth-first kernels for tree scorers). Positions outside the range
/// stay 0.0; the day-range-filtered consumers
/// ([`scored_disks_censored`], [`monthly_outcome_with`]) never read them.
fn prescore_range<S: Scorer>(ds: &Dataset, scorer: &S, from: u16, to: u16) -> Vec<f32> {
    let mut idx = Vec::new();
    let mut rows: Vec<&[f32]> = Vec::new();
    for (pos, rec) in ds.records.iter().enumerate() {
        if rec.day >= from && rec.day < to {
            idx.push(pos);
            rows.push(&rec.features);
        }
    }
    let scores = scorer.score_raw_many(&rows);
    let mut out = vec![0.0f32; ds.records.len()];
    for (pos, s) in idx.into_iter().zip(scores) {
        out[pos] = s;
    }
    out
}

/// Train an RF on `labels`, tune its operating point on the held-out
/// `tune_disks` over the visible past `[tune_from, train_end]`, and
/// evaluate it on `month` over `disks`.
#[allow(clippy::too_many_arguments)]
fn train_and_eval(
    ds: &Dataset,
    disks: &[u32],
    tune_disks: &[u32],
    labels: &[orfpred_smart::label::Labeled],
    tune_from: u16,
    train_end: u16,
    cfg: &LongtermConfig,
    month: usize,
    rng: &mut Xoshiro256pp,
) -> MonthlyOutcome {
    let Some(tm) = build_matrix(ds, labels, &cfg.cols, cfg.lambda, rng) else {
        return nan_outcome(month);
    };
    let model = RandomForest::fit(&tm.x, &tm.y, &cfg.forest, rng.next_u64());
    let scorer = FrozenScorer {
        forest: model.freeze(),
        scaler: tm.scaler,
    };
    // This month's scorer only ever sees days in [tune_from, month end):
    // batch-score that span once and index into it.
    let scores = prescore_range(ds, &scorer, tune_from, month as u16 * cfg.month_days);
    let score_fn = |pos: usize, _rec: &orfpred_smart::record::DiskDay| scores[pos];
    // Tune on held-out disks over the visible past only (no future leakage,
    // no in-sample deflation).
    let scored = scored_disks_censored(
        ds,
        tune_disks,
        &score_fn,
        cfg.window,
        tune_from,
        train_end + 1,
        Some(train_end),
    );
    let tau = scored.tune_for_far(cfg.target_far).tau.max(cfg.tau_floor);
    monthly_outcome_with(ds, disks, &score_fn, tau, cfg.window, month, cfg.month_days)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_smart::attrs::table2_feature_columns;
    use orfpred_smart::gen::{FleetConfig, FleetSim, ScalePreset};
    use orfpred_util::stats::mean;

    #[test]
    fn longterm_produces_all_four_series() {
        let mut c = FleetConfig::sta(ScalePreset::Tiny, 21);
        c.n_good = 150;
        c.n_failed = 40;
        c.duration_days = 420;
        let ds = FleetSim::collect(&c);

        let mut cfg = LongtermConfig::new(table2_feature_columns(), 4, 13, 3);
        cfg.forest.n_trees = 12;
        cfg.orf.n_trees = 12;
        cfg.orf.n_tests = 80;
        cfg.orf.min_parent_size = 40.0;
        cfg.orf.min_gain = 0.02;
        cfg.orf.warmup_age = 10;
        cfg.target_far = 0.05;

        let r = run_longterm(&ds, &cfg);
        let n = r.orf.months.len();
        assert!(n >= 8, "months evaluated: {n}");
        for s in [&r.no_update, &r.replacing, &r.accumulation, &r.orf] {
            assert_eq!(s.months.len(), n, "{}", s.name);
        }
        // The adaptive strategies should do reasonably on late months.
        let late = n.saturating_sub(4)..n;
        let acc_late: Vec<f64> = late.clone().map(|i| r.accumulation.fdr[i]).collect();
        let acc_fdr = mean(
            &acc_late
                .iter()
                .copied()
                .filter(|v| !v.is_nan())
                .collect::<Vec<_>>(),
        );
        assert!(acc_fdr > 30.0, "accumulation late FDR {acc_fdr}");
        // Figures render.
        assert!(r.far_figure("Fig 4").render().contains("No updating"));
        assert!(r.fdr_figure("Fig 6").render().contains("Accumulation"));
    }

    #[test]
    fn closed_loop_detects_drift_and_applies_the_policy() {
        let mut c = FleetConfig::sta(ScalePreset::Tiny, 33);
        c.n_good = 100;
        c.n_failed = 25;
        c.duration_days = 300;
        let ds = FleetSim::collect(&c);

        let mut cfg = LongtermConfig::new(table2_feature_columns(), 4, 9, 5);
        cfg.forest.n_trees = 8;
        cfg.orf.n_trees = 8;
        cfg.orf.n_tests = 40;
        cfg.orf.min_parent_size = 40.0;
        cfg.orf.warmup_age = 10;
        cfg.target_far = 0.05;

        let mut adapt =
            orfpred_core::AdaptConfig::new(orfpred_core::UpdatePolicy::Replace, cfg.cols.clone());
        adapt.detector.window = 128;
        adapt.detector.check_every = 64;
        adapt.detector.z_threshold = 5.0;
        let replace = run_closed_loop(&ds, &cfg, &adapt);
        adapt.policy = orfpred_core::UpdatePolicy::NoUpdate;
        let no_update = run_closed_loop(&ds, &cfg, &adapt);

        assert!(!replace.series.months.is_empty());
        assert_eq!(replace.series.months, no_update.series.months);
        // The simulator's cumulative attributes drift by construction, so
        // the detector must fire on this horizon.
        assert!(replace.drift_events > 0, "no drift detected");
        // The detector watches the released stream, which no policy can
        // alter — shift counts are policy-independent.
        assert_eq!(replace.drift_events, no_update.drift_events);
        assert_eq!(
            replace.rebuilds, replace.drift_events,
            "replace rebuilds on every shift"
        );
        assert_eq!(no_update.rebuilds, 0, "no-update never rebuilds");
    }
}
