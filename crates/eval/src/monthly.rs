//! Figures 2–3: monthly convergence of ORF toward the offline models.
//!
//! Protocol (§4.4): one stratified 70/30 disk split. Every month:
//!
//! * the **offline** models (RF, DT, SVM) are retrained from scratch on all
//!   training-disk samples labelled so far (λ-downsampled);
//! * the **ORF** has simply kept consuming the training-disk event stream
//!   through its online labeller — no retraining;
//! * each model's vote threshold is tuned so FAR ≈ the target (the paper
//!   pins 1.0 %), and the FDR at that operating point is recorded.

use crate::metrics::score_test_disks;
use crate::prep::{build_matrix, training_labels};
use crate::report::{Figure, Series};
use crate::scorer::{FrozenOrfScorer, FrozenScorer, SvmScorer};
use crate::split::DiskSplit;
use orfpred_core::{OnlinePredictor, OnlinePredictorConfig, OrfConfig};
use orfpred_smart::record::Dataset;
use orfpred_svm::{Kernel, Svm, SvmConfig};
use orfpred_trees::{CartConfig, DecisionTree, ForestConfig, RandomForest};
use orfpred_util::{Matrix, Xoshiro256pp};
use serde::{Deserialize, Serialize};

/// SVM grid-search settings (§4.4: "grid search for the highest FDR with a
/// FAR less than 1 %"), with caps keeping the O(n²·grid) cost sane.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SvmGrid {
    /// Candidate penalty values.
    pub c_values: Vec<f64>,
    /// Candidate RBF γ values.
    pub gammas: Vec<f64>,
    /// Max training rows (random subsample beyond this).
    pub train_cap: usize,
    /// Max good test disks scored (all failed test disks are always kept).
    pub test_good_cap: usize,
}

impl Default for SvmGrid {
    fn default() -> Self {
        Self {
            c_values: vec![1.0, 10.0],
            gammas: vec![0.5, 2.0],
            train_cap: 3_000,
            test_good_cap: 250,
        }
    }
}

/// Configuration of the monthly-convergence experiment.
#[derive(Clone, Debug)]
pub struct MonthlyConfig {
    /// Feature columns (Table 2 selection).
    pub cols: Vec<usize>,
    /// Prediction window in days.
    pub window: u16,
    /// FAR the operating points are pinned to (paper: 0.01).
    pub target_far: f64,
    /// Days per month.
    pub month_days: u16,
    /// First/last month evaluated (inclusive; paper plots 2–21).
    pub start_month: usize,
    /// Last month evaluated.
    pub end_month: usize,
    /// NegSampleRatio for the offline models (paper: 3).
    pub lambda: Option<f64>,
    /// Offline RF settings.
    pub forest: ForestConfig,
    /// DT baseline settings (Matlab-like: 100 splits).
    pub dt: CartConfig,
    /// ORF settings.
    pub orf: OrfConfig,
    /// SVM grid (set `None` to skip the SVM — it dominates runtime).
    pub svm: Option<SvmGrid>,
    /// Master seed.
    pub seed: u64,
}

impl MonthlyConfig {
    /// Paper-like defaults over the given columns.
    pub fn new(cols: Vec<usize>, seed: u64) -> Self {
        Self {
            cols,
            window: 7,
            target_far: 0.01,
            month_days: 30,
            start_month: 2,
            end_month: 21,
            lambda: Some(3.0),
            forest: ForestConfig::default(),
            dt: CartConfig {
                max_splits: Some(100),
                max_depth: 30,
                // A lone tree with singleton leaves memorises the training
                // set and alarms on 80%+ of good disks under the per-disk
                // any-sample FAR; a minimum leaf mass is the standard cure.
                min_samples_leaf: 15,
                ..CartConfig::default()
            },
            orf: OrfConfig::default(),
            svm: Some(SvmGrid::default()),
            seed,
        }
    }
}

/// Per-model FDR (and diagnostic FAR) series at the pinned operating point.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MonthlyResult {
    /// Evaluated months.
    pub months: Vec<usize>,
    /// ORF FDR (%) per month.
    pub orf_fdr: Vec<f64>,
    /// Offline RF FDR (%) per month.
    pub rf_fdr: Vec<f64>,
    /// DT FDR (%) per month.
    pub dt_fdr: Vec<f64>,
    /// SVM FDR (%) per month (`NaN` when skipped/untrainable).
    pub svm_fdr: Vec<f64>,
    /// Achieved FARs (%) per month per model, for the paper's "around 1 %"
    /// check: `[orf, rf, dt, svm]`.
    pub fars: Vec<[f64; 4]>,
}

impl MonthlyResult {
    /// Convert to a renderable figure (Figures 2 and 3).
    pub fn figure(&self, title: &str) -> Figure {
        let x: Vec<f64> = self.months.iter().map(|&m| m as f64).collect();
        Figure {
            title: title.into(),
            xlabel: "month".into(),
            ylabel: "FDR".into(),
            series: vec![
                Series {
                    name: "ORF".into(),
                    x: x.clone(),
                    y: self.orf_fdr.clone(),
                },
                Series {
                    name: "Offline RF".into(),
                    x: x.clone(),
                    y: self.rf_fdr.clone(),
                },
                Series {
                    name: "DT".into(),
                    x: x.clone(),
                    y: self.dt_fdr.clone(),
                },
                Series {
                    name: "SVM".into(),
                    x,
                    y: self.svm_fdr.clone(),
                },
            ],
        }
    }
}

/// Run the experiment.
pub fn run_monthly(ds: &Dataset, cfg: &MonthlyConfig) -> MonthlyResult {
    let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
    let split = DiskSplit::stratified(ds, 0.7, &mut rng);

    // ORF consumes the training-disk stream through Algorithm 2.
    let mut predictor_cfg = OnlinePredictorConfig::new(cfg.cols.clone(), rng.next_u64());
    predictor_cfg.orf = cfg.orf.clone();
    predictor_cfg.window_days = cfg.window as usize;
    let mut predictor = OnlinePredictor::new(&predictor_cfg);

    let mut result = MonthlyResult::default();
    let mut cursor = 0usize; // position in the chronological record stream

    for month in cfg.start_month..=cfg.end_month {
        let cutoff = (month as u16).saturating_mul(cfg.month_days);
        if cutoff > ds.duration_days + cfg.month_days {
            break;
        }

        // Advance the ORF through this month's training-disk events.
        while cursor < ds.records.len() && ds.records[cursor].day < cutoff {
            let rec = &ds.records[cursor];
            let info = &ds.disks[rec.disk_id as usize];
            if split.is_train[rec.disk_id as usize] {
                predictor.observe_sample(rec);
                if info.failed && rec.day == info.last_day {
                    predictor.observe_failure(rec.disk_id);
                }
            }
            cursor += 1;
        }

        // Evaluate every model on the full test set at FAR ≈ target. The
        // ORF is frozen at the month boundary — batch evaluation scores a
        // fixed model state, so the flat representation applies.
        let (orf_frozen, orf_scaler) = predictor.freeze();
        let orf_scored = score_test_disks(
            ds,
            &split.test,
            &FrozenOrfScorer {
                forest: orf_frozen,
                scaler: orf_scaler,
            },
            cfg.window,
        );
        let orf_op = orf_scored.tune_for_far(cfg.target_far);

        let labels = training_labels(ds, &split.is_train, cutoff, cfg.window);
        let tm = build_matrix(ds, &labels, &cfg.cols, cfg.lambda, &mut rng);

        let (rf_op, dt_op, svm_op) = match &tm {
            None => (None, None, None),
            Some(tm) => {
                let rf = RandomForest::fit(&tm.x, &tm.y, &cfg.forest, rng.next_u64());
                let rf_scorer = FrozenScorer {
                    forest: rf.freeze(),
                    scaler: tm.scaler.clone(),
                };
                let rf_scored = score_test_disks(ds, &split.test, &rf_scorer, cfg.window);

                // DT: a single tree's scores are too coarse to tune a
                // threshold against a tight FAR target, so — like the
                // paper, which adjusts Matlab's class `Weights` — sweep the
                // positive-class weight and keep the best admissible point.
                let dt_op = [0.1f64, 0.25, 0.5, 1.0, 2.0, 4.0]
                    .iter()
                    .map(|&w| {
                        let dt_cfg = CartConfig {
                            pos_weight: w,
                            ..cfg.dt.clone()
                        };
                        let dt = DecisionTree::fit(&tm.x, &tm.y, &dt_cfg, &mut rng);
                        let dt_scorer = FrozenScorer {
                            forest: dt.freeze(),
                            scaler: tm.scaler.clone(),
                        };
                        score_test_disks(ds, &split.test, &dt_scorer, cfg.window)
                            .tune_for_far(cfg.target_far)
                    })
                    .max_by(|a, b| a.fdr.partial_cmp(&b.fdr).unwrap());

                let svm_op = cfg
                    .svm
                    .as_ref()
                    .and_then(|grid| svm_grid_search(ds, &split, tm, grid, cfg, &mut rng));
                (Some(rf_scored.tune_for_far(cfg.target_far)), dt_op, svm_op)
            }
        };

        result.months.push(month);
        result.orf_fdr.push(orf_op.fdr * 100.0);
        result
            .rf_fdr
            .push(rf_op.map_or(f64::NAN, |o| o.fdr * 100.0));
        result
            .dt_fdr
            .push(dt_op.map_or(f64::NAN, |o| o.fdr * 100.0));
        result
            .svm_fdr
            .push(svm_op.map_or(f64::NAN, |o| o.fdr * 100.0));
        result.fars.push([
            orf_op.far * 100.0,
            rf_op.map_or(f64::NAN, |o| o.far * 100.0),
            dt_op.map_or(f64::NAN, |o| o.far * 100.0),
            svm_op.map_or(f64::NAN, |o| o.far * 100.0),
        ]);
    }
    result
}

/// Grid-search the SVM and return its best operating point on the (capped)
/// test subset.
fn svm_grid_search(
    ds: &Dataset,
    split: &DiskSplit,
    tm: &crate::prep::TrainMatrix,
    grid: &SvmGrid,
    cfg: &MonthlyConfig,
    rng: &mut Xoshiro256pp,
) -> Option<crate::metrics::OperatingPoint> {
    // Cap training rows.
    let n = tm.x.n_rows();
    let (x, y): (Matrix, Vec<bool>) = if n > grid.train_cap {
        let keep = rng.sample_indices(n, grid.train_cap);
        let mut x = Matrix::with_capacity(tm.x.n_cols(), keep.len());
        let mut y = Vec::with_capacity(keep.len());
        for &k in &keep {
            x.push_row(tm.x.row(k));
            y.push(tm.y[k]);
        }
        (x, y)
    } else {
        (tm.x.clone(), tm.y.clone())
    };
    if !y.iter().any(|&b| b) || !y.iter().any(|&b| !b) {
        return None;
    }

    // Cap good test disks (keep all failed ones): per-disk FAR resolution
    // drops, but the grid stays tractable.
    let mut test: Vec<u32> = split
        .test
        .iter()
        .copied()
        .filter(|&d| ds.disks[d as usize].failed)
        .collect();
    let good: Vec<u32> = split
        .test
        .iter()
        .copied()
        .filter(|&d| !ds.disks[d as usize].failed)
        .collect();
    test.extend(good.iter().take(grid.test_good_cap));

    let mut best: Option<crate::metrics::OperatingPoint> = None;
    for &c in &grid.c_values {
        for &gamma in &grid.gammas {
            let svm_cfg = SvmConfig {
                c_pos: c,
                c_neg: c,
                kernel: Kernel::Rbf { gamma },
                max_iter: 50_000,
                ..SvmConfig::default()
            };
            let model = Svm::fit(&x, &y, &svm_cfg);
            let scorer = SvmScorer {
                model,
                scaler: tm.scaler.clone(),
            };
            let scored = score_test_disks(ds, &test, &scorer, cfg.window);
            let op = scored.tune_for_far(cfg.target_far);
            if best.as_ref().is_none_or(|b| op.fdr > b.fdr) {
                best = Some(op);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_smart::attrs::table2_feature_columns;
    use orfpred_smart::gen::{FleetConfig, FleetSim, ScalePreset};

    #[test]
    fn monthly_run_produces_series_and_orf_improves() {
        let mut c = FleetConfig::sta(ScalePreset::Tiny, 9);
        c.n_good = 120;
        c.n_failed = 30;
        c.duration_days = 330;
        let ds = FleetSim::collect(&c);

        let mut cfg = MonthlyConfig::new(table2_feature_columns(), 5);
        cfg.start_month = 3;
        cfg.end_month = 10;
        cfg.svm = None; // runtime
        cfg.forest.n_trees = 12;
        cfg.orf.n_trees = 12;
        cfg.orf.n_tests = 80;
        cfg.orf.min_parent_size = 40.0;
        cfg.orf.min_gain = 0.02;
        cfg.orf.warmup_age = 10;
        cfg.target_far = 0.05; // tiny test set → coarse FAR resolution

        let r = run_monthly(&ds, &cfg);
        assert_eq!(r.months.len(), 8);
        assert_eq!(r.rf_fdr.len(), 8);
        // All operating points satisfy the FAR constraint.
        for fars in &r.fars {
            assert!(fars[0] <= 5.0 + 1e-9, "ORF FAR {}", fars[0]);
            assert!(fars[1].is_nan() || fars[1] <= 5.0 + 1e-9);
        }
        // Late ORF should beat early ORF (convergence).
        let early = r.orf_fdr[0];
        let late = *r.orf_fdr.last().unwrap();
        assert!(
            late >= early,
            "ORF should not degrade: early {early} late {late}"
        );
        // By the end RF and ORF should both detect a decent share.
        assert!(*r.rf_fdr.last().unwrap() > 40.0, "RF {:?}", r.rf_fdr);
        assert!(late > 30.0, "ORF {:?}", r.orf_fdr);
        // Figure rendering works.
        let fig = r.figure("Fig 2");
        assert!(fig.render().contains("Offline RF"));
    }

    #[test]
    fn svm_column_is_populated_when_enabled() {
        let mut c = FleetConfig::sta(ScalePreset::Tiny, 4);
        c.n_good = 80;
        c.n_failed = 20;
        c.duration_days = 240;
        let ds = FleetSim::collect(&c);

        let mut cfg = MonthlyConfig::new(table2_feature_columns(), 2);
        cfg.start_month = 6;
        cfg.end_month = 7;
        cfg.target_far = 0.10;
        cfg.forest.n_trees = 8;
        cfg.orf.n_trees = 8;
        cfg.orf.n_tests = 40;
        cfg.orf.min_parent_size = 30.0;
        cfg.svm = Some(SvmGrid {
            c_values: vec![10.0],
            gammas: vec![1.0],
            train_cap: 800,
            test_good_cap: 60,
        });
        let r = run_monthly(&ds, &cfg);
        assert_eq!(r.months, vec![6, 7]);
        // The SVM column must contain real numbers once training data
        // exists (not NaN).
        assert!(
            r.svm_fdr.iter().any(|v| !v.is_nan()),
            "svm fdr: {:?}",
            r.svm_fdr
        );
        for f in &r.fars {
            assert!(f[3].is_nan() || f[3] <= 10.0 + 1e-9, "svm FAR {f:?}");
        }
    }
}
