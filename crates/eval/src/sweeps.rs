//! Hyper-parameter sweeps: Table 3 (λ on offline RF) and Table 4 (λn on
//! ORF).
//!
//! Protocol (§4.4): stratified 70/30 disk split, labels over the full
//! window, model trained with the swept balance parameter, FDR/FAR measured
//! on the test disks at the *default* vote threshold (0.5) — the tables
//! show how the balance knob itself trades detection against false alarms,
//! so no operating-point tuning is applied. Each setting repeats
//! `repeats` times over different splits; cells are `mean ± sd`.

use crate::metrics::score_test_disks;
use crate::prep::{build_matrix, stream_orf, training_labels};
use crate::report::{SweepRow, SweepTable};
use crate::scorer::{OrfScorer, RfScorer};
use crate::split::DiskSplit;
use orfpred_core::OrfConfig;
use orfpred_smart::record::Dataset;
use orfpred_trees::{ForestConfig, RandomForest};
use orfpred_util::stats::{mean, std_dev};
use orfpred_util::Xoshiro256pp;

/// Shared sweep settings.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Feature columns (Table 2 selection).
    pub cols: Vec<usize>,
    /// Prediction window in days.
    pub window: u16,
    /// Number of repeats (the paper uses 5).
    pub repeats: usize,
    /// Master seed.
    pub seed: u64,
    /// Fixed vote threshold for both models.
    pub tau: f32,
    /// Offline RF settings.
    pub forest: ForestConfig,
    /// ORF settings (λn overridden per row).
    pub orf: OrfConfig,
}

impl SweepConfig {
    /// Defaults matching §4.4.
    pub fn new(cols: Vec<usize>, seed: u64) -> Self {
        Self {
            cols,
            window: 7,
            repeats: 5,
            seed,
            tau: 0.5,
            forest: ForestConfig::default(),
            orf: OrfConfig::default(),
        }
    }
}

/// Table 3: FDR/FAR of the offline RF as `λ` (NegSampleRatio) varies.
/// `None` is the paper's "Max" row (no downsampling).
pub fn table3(
    ds: &Dataset,
    dataset_label: &str,
    lambdas: &[Option<f64>],
    cfg: &SweepConfig,
) -> SweepTable {
    let mut rows = Vec::new();
    for (li, &lambda) in lambdas.iter().enumerate() {
        let mut fdrs = Vec::new();
        let mut fars = Vec::new();
        for rep in 0..cfg.repeats {
            let mut rng =
                Xoshiro256pp::seed_from_u64(cfg.seed ^ (rep as u64) << 8 ^ (li as u64) << 32);
            let split = DiskSplit::stratified(ds, 0.7, &mut rng);
            let labels = training_labels(ds, &split.is_train, ds.duration_days, cfg.window);
            let Some(tm) = build_matrix(ds, &labels, &cfg.cols, lambda, &mut rng) else {
                continue;
            };
            let model = RandomForest::fit(&tm.x, &tm.y, &cfg.forest, rng.next_u64());
            let scorer = RfScorer {
                model,
                scaler: tm.scaler,
            };
            let scored = score_test_disks(ds, &split.test, &scorer, cfg.window);
            fdrs.push(scored.fdr(cfg.tau) * 100.0);
            fars.push(scored.far(cfg.tau) * 100.0);
        }
        rows.push(SweepRow {
            param: lambda.map_or("Max".to_string(), |l| format!("{l}")),
            fdr_mean: mean(&fdrs),
            fdr_sd: std_dev(&fdrs),
            far_mean: mean(&fars),
            far_sd: std_dev(&fars),
        });
    }
    SweepTable {
        title: "Table 3: Impact of λ on Offline RF".into(),
        param_name: "λ".into(),
        dataset: dataset_label.into(),
        rows,
    }
}

/// Table 4: FDR/FAR of ORF as `λn` varies (`λp = 1`). Training replays the
/// labelled training-disk samples chronologically.
pub fn table4(
    ds: &Dataset,
    dataset_label: &str,
    lambda_ns: &[f64],
    cfg: &SweepConfig,
) -> SweepTable {
    let mut rows = Vec::new();
    for (li, &lambda_n) in lambda_ns.iter().enumerate() {
        let mut fdrs = Vec::new();
        let mut fars = Vec::new();
        for rep in 0..cfg.repeats {
            let mut rng = Xoshiro256pp::seed_from_u64(
                cfg.seed ^ (rep as u64) << 8 ^ (li as u64) << 40 ^ 0x5eed,
            );
            let split = DiskSplit::stratified(ds, 0.7, &mut rng);
            let labels = training_labels(ds, &split.is_train, ds.duration_days, cfg.window);
            let orf_cfg = OrfConfig {
                lambda_neg: lambda_n,
                ..cfg.orf.clone()
            };
            let (forest, scaler) = stream_orf(ds, &labels, &cfg.cols, &orf_cfg, rng.next_u64());
            let scorer = OrfScorer {
                forest: &forest,
                scaler: &scaler,
            };
            let scored = score_test_disks(ds, &split.test, &scorer, cfg.window);
            fdrs.push(scored.fdr(cfg.tau) * 100.0);
            fars.push(scored.far(cfg.tau) * 100.0);
        }
        rows.push(SweepRow {
            param: format!("{lambda_n}"),
            fdr_mean: mean(&fdrs),
            fdr_sd: std_dev(&fdrs),
            far_mean: mean(&fars),
            far_sd: std_dev(&fars),
        });
    }
    SweepTable {
        title: "Table 4: Impact of λn on ORF".into(),
        param_name: "λn".into(),
        dataset: dataset_label.into(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_smart::attrs::table2_feature_columns;
    use orfpred_smart::gen::{FleetConfig, FleetSim, ScalePreset};

    fn tiny_dataset() -> Dataset {
        let mut c = FleetConfig::sta(ScalePreset::Tiny, 5);
        c.n_good = 80;
        c.n_failed = 25;
        c.duration_days = 300;
        FleetSim::collect(&c)
    }

    fn tiny_cfg() -> SweepConfig {
        let mut cfg = SweepConfig::new(table2_feature_columns(), 3);
        cfg.repeats = 2;
        cfg.forest.n_trees = 12;
        cfg.orf.n_trees = 12;
        cfg.orf.n_tests = 60;
        cfg.orf.min_parent_size = 50.0;
        cfg.orf.min_gain = 0.02;
        cfg.orf.warmup_age = 10;
        cfg
    }

    #[test]
    fn table3_shape_lambda_max_collapses_fdr() {
        let ds = tiny_dataset();
        let t = table3(&ds, "tiny", &[Some(1.0), None], &tiny_cfg());
        assert_eq!(t.rows.len(), 2);
        let balanced = &t.rows[0];
        let unbalanced = &t.rows[1];
        // With only ~8 failed test disks the FDR cells are noise (the Max
        // collapse is asserted at harness scale in EXPERIMENTS.md); the
        // robust tiny-scale invariant is the FAR ordering of Eq. 4.
        assert!(
            unbalanced.far_mean <= balanced.far_mean + 1e-9,
            "Max FAR {} must not exceed balanced FAR {}",
            unbalanced.far_mean,
            balanced.far_mean
        );
        for row in &t.rows {
            assert!((0.0..=100.0).contains(&row.fdr_mean));
            assert!((0.0..=100.0).contains(&row.far_mean));
        }
    }

    #[test]
    fn table4_shape_lambda_n_trades_fdr_for_far() {
        let ds = tiny_dataset();
        let t = table4(&ds, "tiny", &[0.02, 1.0], &tiny_cfg());
        assert_eq!(t.rows.len(), 2);
        assert!(
            t.rows[0].fdr_mean > t.rows[1].fdr_mean,
            "small λn {} must beat λn=1 {} on FDR",
            t.rows[0].fdr_mean,
            t.rows[1].fdr_mean
        );
    }
}
