//! Report containers: tables (mean ± sd rows) and figure series, rendered
//! as aligned text (what `repro` prints) and JSON (what `EXPERIMENTS.md`
//! is regenerated from).

use serde::{Deserialize, Serialize};

/// One row of a hyper-parameter sweep table (Tables 3–4).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepRow {
    /// Parameter value rendered as text ("3", "0.02", "Max", …).
    pub param: String,
    /// Mean FDR over repeats, in percent.
    pub fdr_mean: f64,
    /// FDR standard deviation, in percent.
    pub fdr_sd: f64,
    /// Mean FAR over repeats, in percent.
    pub far_mean: f64,
    /// FAR standard deviation, in percent.
    pub far_sd: f64,
}

/// A sweep table for one dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepTable {
    /// Table caption.
    pub title: String,
    /// Name of the swept parameter.
    pub param_name: String,
    /// Dataset label (STA / STB).
    pub dataset: String,
    /// Rows in sweep order.
    pub rows: Vec<SweepRow>,
}

impl SweepTable {
    /// Render as an aligned text table (paper-style `mean ± sd`).
    pub fn render(&self) -> String {
        let mut out = format!("{} — {}\n", self.title, self.dataset);
        out.push_str(&format!(
            "{:>8} | {:>16} | {:>16}\n",
            self.param_name, "FDR(%)", "FAR(%)"
        ));
        out.push_str(&format!("{:->8}-+-{:->16}-+-{:->16}\n", "", "", ""));
        for r in &self.rows {
            out.push_str(&format!(
                "{:>8} | {:>7.2} ± {:>6.2} | {:>7.2} ± {:>6.2}\n",
                r.param, r.fdr_mean, r.fdr_sd, r.far_mean, r.far_sd
            ));
        }
        out
    }
}

/// One named series of a figure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// X values (months).
    pub x: Vec<f64>,
    /// Y values (percent); `NaN` = no data point that month.
    pub y: Vec<f64>,
}

/// A figure: several series over a shared x-axis.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Figure {
    /// Figure caption.
    pub title: String,
    /// X axis label.
    pub xlabel: String,
    /// Y axis label.
    pub ylabel: String,
    /// The plotted series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Render as a month-by-month text table, one column per series.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        out.push_str(&format!("{:>8}", self.xlabel));
        for s in &self.series {
            out.push_str(&format!(" | {:>14}", s.name));
        }
        out.push('\n');
        out.push_str(&format!("{:->8}", ""));
        for _ in &self.series {
            out.push_str(&format!("-+-{:->14}", ""));
        }
        out.push('\n');
        // Union of x values across series.
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.x.iter().copied())
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup();
        for &x in &xs {
            out.push_str(&format!("{x:>8.0}"));
            for s in &self.series {
                let y =
                    s.x.iter()
                        .position(|&v| v == x)
                        .map(|i| s.y[i])
                        .unwrap_or(f64::NAN);
                if y.is_nan() {
                    out.push_str(&format!(" | {:>14}", "-"));
                } else {
                    out.push_str(&format!(" | {y:>14.2}"));
                }
            }
            out.push('\n');
        }
        out.push_str(&format!("({} in %)\n", self.ylabel));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_table_renders_every_row() {
        let t = SweepTable {
            title: "Impact of λ on Offline RF".into(),
            param_name: "λ".into(),
            dataset: "STA".into(),
            rows: vec![
                SweepRow {
                    param: "1".into(),
                    fdr_mean: 98.22,
                    fdr_sd: 0.25,
                    far_mean: 11.88,
                    far_sd: 2.62,
                },
                SweepRow {
                    param: "Max".into(),
                    fdr_mean: 35.14,
                    fdr_sd: 0.18,
                    far_mean: 0.0,
                    far_sd: 0.0,
                },
            ],
        };
        let s = t.render();
        assert!(s.contains("98.22"));
        assert!(s.contains("Max"));
        // title + header + separator + one line per row
        assert_eq!(s.lines().count(), 3 + 2);
    }

    #[test]
    fn figure_renders_union_of_months_with_gaps() {
        let f = Figure {
            title: "FDR".into(),
            xlabel: "month".into(),
            ylabel: "FDR".into(),
            series: vec![
                Series {
                    name: "ORF".into(),
                    x: vec![2.0, 3.0],
                    y: vec![50.0, 60.0],
                },
                Series {
                    name: "RF".into(),
                    x: vec![3.0],
                    y: vec![70.0],
                },
            ],
        };
        let s = f.render();
        assert!(s.contains("ORF"));
        assert!(s.contains("70.00"));
        // Month 2 has no RF point → a dash somewhere on that line.
        let line2 = s.lines().find(|l| l.trim_start().starts_with('2')).unwrap();
        assert!(line2.contains('-'));
    }

    #[test]
    fn reports_serialize_to_json() {
        let f = Figure {
            title: "t".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            series: vec![],
        };
        let j = serde_json::to_string(&f).unwrap();
        let back: Figure = serde_json::from_str(&j).unwrap();
        assert_eq!(back.title, "t");
    }
}
