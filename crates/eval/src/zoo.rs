//! The model zoo: every predictor family in the paper's lineage trained and
//! evaluated under one protocol — the `repro baselines` extension.
//!
//! Protocol: stratified 70/30 disk split, 7-day labelling over the full
//! window, λ-downsampled training matrix shared by all supervised models
//! (the Mahalanobis detector fits on the healthy rows only — it is
//! unsupervised), per-disk FDR at the FAR-pinned operating point plus AUC.

use crate::prep::{build_matrix, stream_orf, training_labels};
use crate::scorer::{
    FrozenOrfScorer, FrozenScorer, GbdtScorer, MdScorer, NbScorer, Scorer, SvmScorer,
    ThresholdScorer,
};
use crate::split::DiskSplit;
use orfpred_baselines::{GaussianNaiveBayes, Gbdt, GbdtConfig, MahalanobisDetector};
use orfpred_core::OrfConfig;
use orfpred_smart::record::Dataset;
use orfpred_svm::{Kernel, Svm, SvmConfig};
use orfpred_trees::threshold::ThresholdModel;
use orfpred_trees::{CartConfig, DecisionTree, ForestConfig, RandomForest};
use orfpred_util::{Matrix, Xoshiro256pp};
use serde::{Deserialize, Serialize};

/// One model's showing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ZooRow {
    /// Model name.
    pub model: String,
    /// Literature reference the implementation follows.
    pub reference: String,
    /// FDR (%) at the FAR-pinned operating point.
    pub fdr: f64,
    /// Achieved FAR (%).
    pub far: f64,
    /// Per-disk AUC.
    pub auc: f64,
    /// Wall-clock training time in milliseconds.
    pub train_ms: u64,
}

/// Zoo configuration.
#[derive(Clone, Debug)]
pub struct ZooConfig {
    /// Feature columns.
    pub cols: Vec<usize>,
    /// FAR target for operating points.
    pub target_far: f64,
    /// NegSampleRatio for the shared training matrix.
    pub lambda: Option<f64>,
    /// Offline RF settings.
    pub forest: ForestConfig,
    /// ORF settings.
    pub orf: OrfConfig,
    /// Cap on SVM/GBDT training rows.
    pub heavy_train_cap: usize,
    /// Seed.
    pub seed: u64,
}

impl ZooConfig {
    /// Defaults over the given columns.
    pub fn new(cols: Vec<usize>, seed: u64) -> Self {
        Self {
            cols,
            target_far: 0.01,
            lambda: Some(3.0),
            forest: ForestConfig::default(),
            orf: OrfConfig::default(),
            heavy_train_cap: 4_000,
            seed,
        }
    }
}

/// Start a wall-clock stopwatch for a `train_ms` report column.
///
/// The only clock read in the eval crate: `train_ms` is *display-only*
/// timing in [`ZooRow`] — no score, label, split, or operating point
/// depends on it, so replay equivalence is unaffected.
fn train_timer() -> std::time::Instant {
    // lint: allow(nondeterminism, reason="wall-clock feeds only the ZooRow::train_ms display column; no model output depends on it")
    std::time::Instant::now()
}

/// Train and evaluate the whole zoo on one dataset.
pub fn run_zoo(ds: &Dataset, cfg: &ZooConfig) -> Vec<ZooRow> {
    let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
    let split = DiskSplit::stratified(ds, 0.7, &mut rng);
    let labels = training_labels(ds, &split.is_train, ds.duration_days, 7);
    let Some(tm) = build_matrix(ds, &labels, &cfg.cols, cfg.lambda, &mut rng) else {
        return Vec::new();
    };

    let mut rows = Vec::new();
    let mut add = |model: &str, reference: &str, train_ms: u64, scorer: &dyn Scorer| {
        let scored = score_disks_serial(ds, &split.test, scorer);
        let op = scored.tune_for_far(cfg.target_far);
        rows.push(ZooRow {
            model: model.into(),
            reference: reference.into(),
            fdr: op.fdr * 100.0,
            far: op.far * 100.0,
            auc: scored.auc(),
            train_ms,
        });
    };

    // Vendor threshold (no training).
    add(
        "SMART threshold",
        "vendor firmware (§2)",
        0,
        &ThresholdScorer {
            model: ThresholdModel::conservative(),
        },
    );

    // Mahalanobis: unsupervised, healthy rows only.
    let t0 = train_timer();
    let healthy_rows: Vec<Vec<f32>> =
        tm.x.rows()
            .zip(&tm.y)
            .filter(|(_, &y)| !y)
            .map(|(r, _)| r.to_vec())
            .collect();
    let md = MahalanobisDetector::fit(healthy_rows.iter().map(|r| r.as_slice()), 1e-4);
    add(
        "Mahalanobis",
        "Wang et al. 2013",
        t0.elapsed().as_millis() as u64,
        &MdScorer {
            model: md,
            scaler: tm.scaler.clone(),
        },
    );

    // Naive Bayes.
    let t0 = train_timer();
    let nb = GaussianNaiveBayes::fit(tm.x.rows(), &tm.y);
    add(
        "Naive Bayes",
        "Hamerly & Elkan 2001",
        t0.elapsed().as_millis() as u64,
        &NbScorer {
            model: nb,
            scaler: tm.scaler.clone(),
        },
    );

    // Decision tree.
    let t0 = train_timer();
    let dt = DecisionTree::fit(
        &tm.x,
        &tm.y,
        &CartConfig {
            max_splits: Some(100),
            min_samples_leaf: 15,
            ..CartConfig::default()
        },
        &mut rng,
    );
    add(
        "Decision tree",
        "Li et al. 2014 (CART)",
        t0.elapsed().as_millis() as u64,
        &FrozenScorer {
            forest: dt.freeze(),
            scaler: tm.scaler.clone(),
        },
    );

    // SVM (capped rows).
    let (hx, hy) = cap_rows(&tm.x, &tm.y, cfg.heavy_train_cap, &mut rng);
    let t0 = train_timer();
    let svm = Svm::fit(
        &hx,
        &hy,
        &SvmConfig {
            c_pos: 10.0,
            c_neg: 10.0,
            kernel: Kernel::Rbf { gamma: 1.0 },
            max_iter: 50_000,
            ..SvmConfig::default()
        },
    );
    add(
        "SVM (RBF)",
        "Murray et al. 2005 / LIBSVM",
        t0.elapsed().as_millis() as u64,
        &SvmScorer {
            model: svm,
            scaler: tm.scaler.clone(),
        },
    );

    // GBDT (capped rows).
    let t0 = train_timer();
    let gbdt = Gbdt::fit(&hx, &hy, &GbdtConfig::default());
    add(
        "GBDT",
        "Li et al. 2017 (GBRT)",
        t0.elapsed().as_millis() as u64,
        &GbdtScorer {
            model: gbdt,
            scaler: tm.scaler.clone(),
        },
    );

    // Random forest.
    let t0 = train_timer();
    let rf = RandomForest::fit(&tm.x, &tm.y, &cfg.forest, rng.next_u64());
    add(
        "Random forest",
        "Breiman 2001 (paper's offline RF)",
        t0.elapsed().as_millis() as u64,
        &FrozenScorer {
            forest: rf.freeze(),
            scaler: tm.scaler.clone(),
        },
    );

    // ORF (chronological replay; frozen for the fixed-state evaluation).
    let t0 = train_timer();
    let (forest, scaler) = stream_orf(ds, &labels, &cfg.cols, &cfg.orf, cfg.seed ^ 0x0f);
    add(
        "ORF (this paper)",
        "Xiao et al. 2018",
        t0.elapsed().as_millis() as u64,
        &FrozenOrfScorer {
            forest: forest.freeze(),
            scaler,
        },
    );

    rows
}

/// Batched variant of [`score_test_disks`] for `dyn Scorer`: all eligible
/// samples go through one [`Scorer::score_raw_many`] call (the frozen
/// scorers route it to the breadth-first batch kernels), then per-disk
/// maxima fold over contiguous spans — bit-identical to the old per-row
/// loop.
fn score_disks_serial(
    ds: &Dataset,
    disks: &[u32],
    scorer: &dyn Scorer,
) -> crate::metrics::ScoredDisks {
    let by_disk = ds.records_by_disk();
    let mut rows: Vec<&[f32]> = Vec::new();
    let mut spans: Vec<(bool, usize)> = Vec::with_capacity(disks.len());
    for &disk_id in disks {
        let info = &ds.disks[disk_id as usize];
        let mut n = 0usize;
        for &pos in &by_disk[disk_id as usize] {
            let rec = &ds.records[pos];
            let in_window = rec.day + 7 > info.last_day;
            if info.failed == in_window {
                rows.push(&rec.features);
                n += 1;
            }
        }
        spans.push((info.failed, n));
    }
    let scores = scorer.score_raw_many(&rows);
    let mut out = crate::metrics::ScoredDisks::default();
    let mut offset = 0usize;
    for (failed, n) in spans {
        let mut best = f32::NEG_INFINITY;
        for &s in &scores[offset..offset + n] {
            best = best.max(s);
        }
        offset += n;
        if best.is_finite() {
            if failed {
                out.failed_window_max.push(best);
            } else {
                out.good_outside_max.push(best);
            }
        }
    }
    out
}

/// Random row subsample preserving both classes.
fn cap_rows(x: &Matrix, y: &[bool], cap: usize, rng: &mut Xoshiro256pp) -> (Matrix, Vec<bool>) {
    if x.n_rows() <= cap {
        return (x.clone(), y.to_vec());
    }
    let keep = rng.sample_indices(x.n_rows(), cap);
    let mut cx = Matrix::with_capacity(x.n_cols(), keep.len());
    let mut cy = Vec::with_capacity(keep.len());
    for &k in &keep {
        cx.push_row(x.row(k));
        cy.push(y[k]);
    }
    (cx, cy)
}

/// Render the zoo as an aligned table.
pub fn render(rows: &[ZooRow], dataset: &str) -> String {
    let mut out = format!("Model zoo — {dataset} (FDR at FAR-pinned operating point)\n");
    out.push_str(&format!(
        "{:>18} | {:>30} | {:>8} | {:>8} | {:>7} | {:>9}\n",
        "model", "reference", "FDR(%)", "FAR(%)", "AUC", "train(ms)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>18} | {:>30} | {:>8.2} | {:>8.2} | {:>7.3} | {:>9}\n",
            r.model, r.reference, r.fdr, r.far, r.auc, r.train_ms
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_smart::attrs::table2_feature_columns;
    use orfpred_smart::gen::{FleetConfig, FleetSim, ScalePreset};

    #[test]
    fn zoo_runs_and_learned_models_beat_the_vendor_threshold() {
        let mut c = FleetConfig::sta(ScalePreset::Tiny, 17);
        c.n_good = 120;
        c.n_failed = 30;
        c.duration_days = 360;
        let ds = FleetSim::collect(&c);
        let mut cfg = ZooConfig::new(table2_feature_columns(), 5);
        cfg.target_far = 0.05;
        cfg.forest.n_trees = 10;
        cfg.orf.n_trees = 10;
        cfg.orf.n_tests = 60;
        cfg.orf.min_parent_size = 40.0;
        cfg.orf.warmup_age = 10;
        cfg.heavy_train_cap = 1_500;
        let rows = run_zoo(&ds, &cfg);
        assert_eq!(rows.len(), 8);
        let get = |name: &str| rows.iter().find(|r| r.model.starts_with(name)).unwrap();
        let rf = get("Random forest");
        let thr = get("SMART threshold");
        assert!(
            rf.fdr > thr.fdr,
            "RF ({:.1}) must beat vendor thresholds ({:.1})",
            rf.fdr,
            thr.fdr
        );
        assert!(rf.auc > 0.8, "RF AUC {:.3}", rf.auc);
        let orf = get("ORF");
        assert!(orf.fdr > 30.0, "ORF FDR {:.1}", orf.fdr);
        assert!(render(&rows, "tiny").contains("Mahalanobis"));
    }
}
