//! Multi-level health assessment (extension).
//!
//! The paper's related work (Xu et al.'s RNNs, Li et al.'s GBRTs) reframes
//! binary failure prediction as *health-degree* assessment: predict which
//! residual-life band a disk is in, so operators can triage ("migrate
//! today" vs "schedule for next week" vs "healthy"). This module grafts
//! that formulation onto the substrates built here: one-vs-rest Random
//! Forests over residual-life bands, evaluated with the ACC-on-failed-
//! samples metric those papers report.

use crate::split::DiskSplit;
use orfpred_smart::record::Dataset;
use orfpred_smart::scale::MinMaxScaler;
use orfpred_trees::{ForestConfig, RandomForest};
use orfpred_util::{Matrix, Xoshiro256pp};
use serde::{Deserialize, Serialize};

/// Residual-life bands (days until failure). The paper's related work uses
/// similar 3–6 level schemes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthLevel {
    /// Fails within 7 days — act now.
    Critical,
    /// Fails within 8–30 days — schedule migration.
    Warning,
    /// No failure within 30 days.
    Healthy,
}

/// All levels, in severity order.
pub const LEVELS: [HealthLevel; 3] = [
    HealthLevel::Critical,
    HealthLevel::Warning,
    HealthLevel::Healthy,
];

/// Residual-life band of a sample, given the disk's metadata.
/// `None` when the true band is unknowable (survivor's final 30 days).
pub fn health_label(failed: bool, last_day: u16, day: u16) -> Option<HealthLevel> {
    let days_left = u32::from(last_day) - u32::from(day);
    if failed {
        Some(if days_left < 7 {
            HealthLevel::Critical
        } else if days_left < 30 {
            HealthLevel::Warning
        } else {
            HealthLevel::Healthy
        })
    } else if days_left >= 30 {
        Some(HealthLevel::Healthy)
    } else {
        None
    }
}

/// A fitted multi-level assessor: one-vs-rest forests.
pub struct HealthAssessor {
    critical: RandomForest,
    warning: RandomForest,
    scaler: MinMaxScaler,
}

/// Per-level evaluation on held-out failed-disk samples.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HealthReport {
    /// Fraction of held-out *failed-disk* samples assigned their true band
    /// (the "ACC on failed samples" of Xu et al.; their RNN reports
    /// 40–60 %).
    pub acc_failed: f64,
    /// Per-true-level recall over failed-disk samples
    /// (critical, warning, healthy).
    pub recall: [f64; 3],
    /// Confusion counts `confusion[true][predicted]` over failed samples.
    pub confusion: [[u64; 3]; 3],
    /// Held-out failed samples evaluated.
    pub n_samples: u64,
}

impl HealthAssessor {
    /// Train on the training-disk samples of `ds` (balanced per level).
    pub fn fit(
        ds: &Dataset,
        is_train: &[bool],
        cols: &[usize],
        forest: &ForestConfig,
        rng: &mut Xoshiro256pp,
    ) -> Option<Self> {
        // Collect per-level sample indices.
        let mut by_level: [Vec<usize>; 3] = Default::default();
        for (pos, rec) in ds.records.iter().enumerate() {
            if !is_train[rec.disk_id as usize] {
                continue;
            }
            let info = &ds.disks[rec.disk_id as usize];
            if let Some(level) = health_label(info.failed, info.last_day, rec.day) {
                by_level[level_index(level)].push(pos);
            }
        }
        let n_crit = by_level[0].len();
        if n_crit == 0 || by_level[1].is_empty() {
            return None;
        }
        // Downsample the flood levels to ~3× the critical band.
        let cap = 3 * n_crit;
        for lvl in [1usize, 2] {
            if by_level[lvl].len() > cap {
                let keep = rng.sample_indices(by_level[lvl].len(), cap);
                by_level[lvl] = keep.into_iter().map(|k| by_level[lvl][k]).collect();
            }
        }
        let all: Vec<(usize, usize)> = by_level
            .iter()
            .enumerate()
            .flat_map(|(lvl, v)| v.iter().map(move |&p| (lvl, p)))
            .collect();
        let scaler = MinMaxScaler::fit_log1p(
            all.iter().map(|&(_, p)| ds.records[p].features.as_slice()),
            cols,
        );
        let mut x = Matrix::with_capacity(cols.len(), all.len());
        for &(_, p) in &all {
            x.push_row(&scaler.transform(&ds.records[p].features));
        }
        let y_crit: Vec<bool> = all.iter().map(|&(lvl, _)| lvl == 0).collect();
        // "Warning or worse" vs healthy: a monotone severity cascade.
        let y_warn: Vec<bool> = all.iter().map(|&(lvl, _)| lvl <= 1).collect();
        let critical = RandomForest::fit(&x, &y_crit, forest, rng.next_u64());
        let warning = RandomForest::fit(&x, &y_warn, forest, rng.next_u64());
        Some(Self {
            critical,
            warning,
            scaler,
        })
    }

    /// Predicted band for a raw snapshot (severity cascade at τ = 0.5).
    pub fn assess(&self, features: &[f32]) -> HealthLevel {
        let row = self.scaler.transform(features);
        if self.critical.score(&row) >= 0.5 {
            HealthLevel::Critical
        } else if self.warning.score(&row) >= 0.5 {
            HealthLevel::Warning
        } else {
            HealthLevel::Healthy
        }
    }

    /// Evaluate on the held-out failed disks' samples.
    pub fn evaluate(&self, ds: &Dataset, is_train: &[bool]) -> HealthReport {
        let mut confusion = [[0u64; 3]; 3];
        for rec in &ds.records {
            if is_train[rec.disk_id as usize] {
                continue;
            }
            let info = &ds.disks[rec.disk_id as usize];
            if !info.failed {
                continue;
            }
            let Some(truth) = health_label(true, info.last_day, rec.day) else {
                continue;
            };
            let pred = self.assess(&rec.features);
            confusion[level_index(truth)][level_index(pred)] += 1;
        }
        let n_samples: u64 = confusion.iter().flatten().sum();
        let correct: u64 = (0..3).map(|i| confusion[i][i]).sum();
        let mut recall = [0.0f64; 3];
        for (i, r) in recall.iter_mut().enumerate() {
            let row_total: u64 = confusion[i].iter().sum();
            *r = if row_total > 0 {
                confusion[i][i] as f64 / row_total as f64
            } else {
                f64::NAN
            };
        }
        HealthReport {
            acc_failed: if n_samples > 0 {
                correct as f64 / n_samples as f64
            } else {
                f64::NAN
            },
            recall,
            confusion,
            n_samples,
        }
    }
}

fn level_index(level: HealthLevel) -> usize {
    match level {
        HealthLevel::Critical => 0,
        HealthLevel::Warning => 1,
        HealthLevel::Healthy => 2,
    }
}

/// Convenience: split, fit, evaluate.
pub fn run_health(
    ds: &Dataset,
    cols: &[usize],
    forest: &ForestConfig,
    seed: u64,
) -> Option<HealthReport> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let split = DiskSplit::stratified(ds, 0.7, &mut rng);
    let assessor = HealthAssessor::fit(ds, &split.is_train, cols, forest, &mut rng)?;
    Some(assessor.evaluate(ds, &split.is_train))
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_smart::attrs::table2_feature_columns;
    use orfpred_smart::gen::{FleetConfig, FleetSim, ScalePreset};

    #[test]
    fn health_label_bands_are_correct() {
        // Failed disk, last_day 100.
        assert_eq!(health_label(true, 100, 100), Some(HealthLevel::Critical));
        assert_eq!(health_label(true, 100, 94), Some(HealthLevel::Critical));
        assert_eq!(health_label(true, 100, 93), Some(HealthLevel::Warning));
        assert_eq!(health_label(true, 100, 71), Some(HealthLevel::Warning));
        assert_eq!(health_label(true, 100, 70), Some(HealthLevel::Healthy));
        // Survivor observed to day 100.
        assert_eq!(health_label(false, 100, 70), Some(HealthLevel::Healthy));
        assert_eq!(health_label(false, 100, 71), None, "status unknowable");
    }

    #[test]
    fn assessor_beats_chance_on_failed_samples() {
        let mut cfg = FleetConfig::sta(ScalePreset::Tiny, 41);
        cfg.n_good = 150;
        cfg.n_failed = 40;
        cfg.duration_days = 360;
        let ds = FleetSim::collect(&cfg);
        let forest = ForestConfig {
            n_trees: 12,
            ..ForestConfig::default()
        };
        let report = run_health(&ds, &table2_feature_columns(), &forest, 3).expect("trainable");
        assert!(report.n_samples > 500);
        // Three bands: chance ≈ 1/3 only if balanced; failed-disk samples
        // are mostly healthy-band, so demand a real margin over the trivial
        // all-healthy classifier is unfair — instead require critical-band
        // recall (the operationally vital one) to be substantial.
        assert!(
            report.recall[0] > 0.5,
            "critical recall {:.2} (confusion {:?})",
            report.recall[0],
            report.confusion
        );
        assert!(
            report.acc_failed > 0.5,
            "ACC {:.2} (related work reports 40-60%)",
            report.acc_failed
        );
    }
}
