//! A uniform scoring interface over every model family.
//!
//! Each wrapper owns its fitted scaler, so callers hand in **raw 48-column
//! snapshots** and every model sees exactly the preprocessing it was
//! trained with. Higher scores mean "more likely to fail within the
//! window"; scores need not be probabilities (the SVM emits decision
//! values) — the metrics only use their ordering.

use orfpred_baselines::{GaussianNaiveBayes, Gbdt, MahalanobisDetector};
use orfpred_core::{OnlinePredictor, OnlineRandomForest};
use orfpred_smart::scale::{MinMaxScaler, OnlineMinMax};
use orfpred_svm::Svm;
use orfpred_trees::threshold::ThresholdModel;
use orfpred_trees::{DecisionTree, FrozenForest, RandomForest};
use orfpred_util::Matrix;

/// Anything that can score a raw SMART snapshot.
pub trait Scorer: Sync {
    /// Risk score of a raw 48-column snapshot (higher = riskier).
    fn score_raw(&self, features: &[f32]) -> f32;

    /// Batch scoring: must return exactly what mapping [`Self::score_raw`]
    /// over `rows` would, bit for bit. The default does just that; the
    /// frozen tree scorers override it to run the breadth-first interleaved
    /// batch kernels, which the eval harnesses (monthly / longterm /
    /// streaming / zoo) all funnel through.
    fn score_raw_many(&self, rows: &[&[f32]]) -> Vec<f32> {
        rows.iter().map(|r| self.score_raw(r)).collect()
    }
}

/// Offline Random Forest + its scaler.
pub struct RfScorer {
    /// Fitted forest.
    pub model: RandomForest,
    /// Scaler fitted on the forest's training rows.
    pub scaler: MinMaxScaler,
}

impl Scorer for RfScorer {
    fn score_raw(&self, features: &[f32]) -> f32 {
        self.model.score(&self.scaler.transform(features))
    }
}

/// Single decision tree + its scaler (the paper's DT baseline).
pub struct DtScorer {
    /// Fitted tree.
    pub model: DecisionTree,
    /// Scaler fitted on the tree's training rows.
    pub scaler: MinMaxScaler,
}

impl Scorer for DtScorer {
    fn score_raw(&self, features: &[f32]) -> f32 {
        self.model.score(&self.scaler.transform(features))
    }
}

/// SVM + its scaler; scores are decision values (unbounded, monotone in
/// risk), which is all the operating-point machinery needs.
pub struct SvmScorer {
    /// Fitted C-SVC model.
    pub model: Svm,
    /// Scaler fitted on the SVM's training rows.
    pub scaler: MinMaxScaler,
}

impl Scorer for SvmScorer {
    fn score_raw(&self, features: &[f32]) -> f32 {
        self.model.decision(&self.scaler.transform(features)) as f32
    }
}

/// The vendor threshold baseline (binary score: 1 = alarm).
pub struct ThresholdScorer {
    /// Static rules over unscaled values.
    pub model: ThresholdModel,
}

impl Scorer for ThresholdScorer {
    fn score_raw(&self, features: &[f32]) -> f32 {
        f32::from(u8::from(self.model.predict(features)))
    }
}

/// An ORF snapshot + the streaming scaler state it was trained with.
pub struct OrfScorer<'a> {
    /// The live forest.
    pub forest: &'a OnlineRandomForest,
    /// The streaming scaler at the same point in the stream.
    pub scaler: &'a OnlineMinMax,
}

impl Scorer for OrfScorer<'_> {
    fn score_raw(&self, features: &[f32]) -> f32 {
        let mut scaled = vec![0.0f32; self.scaler.n_outputs()];
        self.scaler.transform_into(features, &mut scaled);
        self.forest.score(&scaled)
    }
}

/// A frozen forest + the offline scaler it was trained behind — the batch
/// scoring path every *offline* tree model (DT, RF) funnels through after
/// `freeze()`. Scores are bit-identical to the live model's.
pub struct FrozenScorer {
    /// Compiled forest.
    pub forest: FrozenForest,
    /// Scaler fitted on the model's training rows.
    pub scaler: MinMaxScaler,
}

impl Scorer for FrozenScorer {
    fn score_raw(&self, features: &[f32]) -> f32 {
        self.forest.score(&self.scaler.transform(features))
    }

    fn score_raw_many(&self, rows: &[&[f32]]) -> Vec<f32> {
        self.score_raw_batch(rows)
    }
}

impl FrozenScorer {
    /// Batch-score raw rows: scale once into a [`Matrix`], then run the
    /// frozen batch kernel. Equivalent to mapping [`Scorer::score_raw`].
    pub fn score_raw_batch(&self, rows: &[&[f32]]) -> Vec<f32> {
        let mut scaled = Matrix::with_capacity(self.scaler.n_outputs(), rows.len());
        for r in rows {
            scaled.push_row(&self.scaler.transform(r));
        }
        self.forest.score_batch(&scaled)
    }

    /// Batch-score raw *columns* (one slice per raw feature, equal
    /// lengths): scale column-wise, then run the frozen columnar kernel.
    /// This is the telemetry-store replay path — a decoded segment feeds
    /// straight in with no row materialization — and every element goes
    /// through the same arithmetic as [`Scorer::score_raw`], so scores are
    /// bit-identical to the row paths.
    pub fn score_raw_columns(&self, cols: &[&[f32]]) -> Vec<f32> {
        let scaled = self.scaler.transform_columns(cols);
        let refs: Vec<&[f32]> = scaled.iter().map(|c| c.as_slice()).collect();
        self.forest.score_columns(&refs)
    }
}

/// A frozen forest + the *streaming* scaler state it was frozen with — the
/// batch scoring path for online models (ORF, `OnlinePredictor::freeze`).
pub struct FrozenOrfScorer {
    /// Compiled forest (the mature scoring pool at freeze time).
    pub forest: FrozenForest,
    /// Streaming scaler at the same point in the stream.
    pub scaler: OnlineMinMax,
}

impl Scorer for FrozenOrfScorer {
    fn score_raw(&self, features: &[f32]) -> f32 {
        let mut scaled = vec![0.0f32; self.scaler.n_outputs()];
        self.scaler.transform_into(features, &mut scaled);
        self.forest.score(&scaled)
    }

    fn score_raw_many(&self, rows: &[&[f32]]) -> Vec<f32> {
        self.score_raw_batch(rows)
    }
}

impl FrozenOrfScorer {
    /// Batch-score raw rows: scale once into a [`Matrix`], then run the
    /// frozen batch kernel. Equivalent to mapping [`Scorer::score_raw`].
    pub fn score_raw_batch(&self, rows: &[&[f32]]) -> Vec<f32> {
        let mut scaled_row = vec![0.0f32; self.scaler.n_outputs()];
        let mut scaled = Matrix::with_capacity(self.scaler.n_outputs(), rows.len());
        for r in rows {
            self.scaler.transform_into(r, &mut scaled_row);
            scaled.push_row(&scaled_row);
        }
        self.forest.score_batch(&scaled)
    }

    /// Batch-score raw *columns* (one slice per raw feature, equal
    /// lengths): scale column-wise with the streaming bounds, then run the
    /// frozen columnar kernel — the store-fed ORF path. Bit-identical to
    /// the row paths (same scaling expression, same kernel arithmetic).
    pub fn score_raw_columns(&self, cols: &[&[f32]]) -> Vec<f32> {
        let scaled = self.scaler.transform_columns(cols);
        let refs: Vec<&[f32]> = scaled.iter().map(|c| c.as_slice()).collect();
        self.forest.score_columns(&refs)
    }
}

/// Gaussian naive Bayes + its scaler (Hamerly & Elkan baseline).
pub struct NbScorer {
    /// Fitted model.
    pub model: GaussianNaiveBayes,
    /// Scaler fitted on the training rows.
    pub scaler: MinMaxScaler,
}

impl Scorer for NbScorer {
    fn score_raw(&self, features: &[f32]) -> f32 {
        self.model.score(&self.scaler.transform(features))
    }
}

/// Mahalanobis-distance detector + its scaler (Wang et al. baseline);
/// scores are distances (unbounded, monotone in risk).
pub struct MdScorer {
    /// Fitted detector.
    pub model: MahalanobisDetector,
    /// Scaler fitted on the (healthy) training rows.
    pub scaler: MinMaxScaler,
}

impl Scorer for MdScorer {
    fn score_raw(&self, features: &[f32]) -> f32 {
        self.model.score(&self.scaler.transform(features))
    }
}

/// Gradient-boosted trees + scaler (Li et al.-style GBRT comparator).
pub struct GbdtScorer {
    /// Fitted ensemble.
    pub model: Gbdt,
    /// Scaler fitted on the training rows.
    pub scaler: MinMaxScaler,
}

impl Scorer for GbdtScorer {
    fn score_raw(&self, features: &[f32]) -> f32 {
        self.model.score(&self.scaler.transform(features))
    }
}

/// A full [`OnlinePredictor`] used as a scorer (Algorithm 2 deployment).
pub struct PredictorScorer<'a> {
    /// The live pipeline.
    pub predictor: &'a OnlinePredictor,
}

impl Scorer for PredictorScorer<'_> {
    fn score_raw(&self, features: &[f32]) -> f32 {
        self.predictor.score_row(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_smart::attrs::N_FEATURES;
    use orfpred_util::{Matrix, Xoshiro256pp};

    /// All scorer wrappers must agree with their wrapped model on the
    /// scaled row; spot-check the RF wrapper end to end.
    #[test]
    fn rf_scorer_applies_scaling_before_the_model() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        // Train on scaled column 3 of raw rows whose raw range is [0, 100].
        let mut raw_rows: Vec<[f32; N_FEATURES]> = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let mut row = [0.0f32; N_FEATURES];
            row[3] = (i % 100) as f32;
            raw_rows.push(row);
            y.push(row[3] > 50.0);
        }
        let scaler = MinMaxScaler::fit(raw_rows.iter().map(|r| r.as_slice()), &[3]);
        let mut x = Matrix::new(1);
        for r in &raw_rows {
            x.push_row(&scaler.transform(r));
        }
        let model = orfpred_trees::RandomForest::fit(
            &x,
            &y,
            &orfpred_trees::ForestConfig::default(),
            rng.next_u64(),
        );
        let scorer = RfScorer { model, scaler };
        let mut risky = [0.0f32; N_FEATURES];
        risky[3] = 90.0;
        let mut safe = [0.0f32; N_FEATURES];
        safe[3] = 10.0;
        assert!(scorer.score_raw(&risky) > 0.9);
        assert!(scorer.score_raw(&safe) < 0.1);
    }

    #[test]
    fn frozen_scorer_matches_live_rf_scorer_bitwise() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut raw_rows: Vec<[f32; N_FEATURES]> = Vec::new();
        let mut y = Vec::new();
        for _ in 0..300 {
            let mut row = [0.0f32; N_FEATURES];
            row[3] = rng.next_f32() * 100.0;
            row[7] = rng.next_f32() * 10.0;
            y.push(row[3] > 50.0);
            raw_rows.push(row);
        }
        let scaler = MinMaxScaler::fit(raw_rows.iter().map(|r| r.as_slice()), &[3, 7]);
        let mut x = Matrix::new(2);
        for r in &raw_rows {
            x.push_row(&scaler.transform(r));
        }
        let model = orfpred_trees::RandomForest::fit(
            &x,
            &y,
            &orfpred_trees::ForestConfig::default(),
            rng.next_u64(),
        );
        let frozen = FrozenScorer {
            forest: model.freeze(),
            scaler: scaler.clone(),
        };
        let live = RfScorer { model, scaler };
        let refs: Vec<&[f32]> = raw_rows.iter().map(|r| r.as_slice()).collect();
        let batch = frozen.score_raw_batch(&refs);
        let cols: Vec<Vec<f32>> = (0..N_FEATURES)
            .map(|c| raw_rows.iter().map(|r| r[c]).collect())
            .collect();
        let col_refs: Vec<&[f32]> = cols.iter().map(|c| c.as_slice()).collect();
        let by_col = frozen.score_raw_columns(&col_refs);
        for (i, r) in refs.iter().enumerate() {
            let f = frozen.score_raw(r);
            assert_eq!(f.to_bits(), live.score_raw(r).to_bits(), "row {i}");
            assert_eq!(f.to_bits(), batch[i].to_bits(), "batch row {i}");
            assert_eq!(f.to_bits(), by_col[i].to_bits(), "columnar row {i}");
        }
    }

    #[test]
    fn threshold_scorer_is_binary() {
        let scorer = ThresholdScorer {
            model: ThresholdModel::conservative(),
        };
        let healthy = [100.0f32; N_FEATURES];
        assert_eq!(scorer.score_raw(&healthy), 0.0);
        let mut dead = [100.0f32; N_FEATURES];
        let col =
            orfpred_smart::attrs::feature_index(5, orfpred_smart::attrs::FeatureKind::Normalized)
                .unwrap();
        dead[col] = 1.0;
        assert_eq!(scorer.score_raw(&dead), 1.0);
    }
}
