//! ORF design-choice ablations.
//!
//! The paper motivates several mechanisms without isolating them; this
//! harness does the isolation. Each variant modifies exactly one knob of
//! the base configuration and is trained/evaluated with the Table 4
//! protocol (chronological replay of labelled training-disk samples,
//! FDR at the FAR ≈ 1 % operating point on held-out disks):
//!
//! * `no-imbalance (λn=1)` — drops Eq. 3; shows why naive online bagging
//!   fails on disk data;
//! * `no-replacement` — disables the OOBE discard mechanism (Algorithm 1
//!   line 24), the paper's defence against model aging;
//! * `no-warmup` — fresh trees vote immediately after replacement;
//! * `tests=N` — the per-leaf random-test pool size (paper uses 5 000; the
//!   ablation shows the diminishing returns that justify a smaller pool).

use crate::metrics::score_test_disks;
use crate::prep::{stream_orf, training_labels};
use crate::scorer::OrfScorer;
use crate::split::DiskSplit;
use orfpred_core::OrfConfig;
use orfpred_smart::record::Dataset;
use orfpred_util::Xoshiro256pp;
use serde::{Deserialize, Serialize};

/// One ablation outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// FDR (%) at the FAR-pinned operating point.
    pub fdr: f64,
    /// Achieved FAR (%).
    pub far: f64,
    /// Operating threshold.
    pub tau: f32,
    /// Trees discarded and regrown during the stream.
    pub trees_replaced: u64,
    /// Total splits across the forest at the end.
    pub total_splits: usize,
}

/// The standard variant set derived from `base`.
pub fn standard_variants(base: &OrfConfig) -> Vec<(String, OrfConfig)> {
    vec![
        ("base".into(), base.clone()),
        (
            "no-imbalance (λn=1)".into(),
            OrfConfig {
                lambda_neg: 1.0,
                ..base.clone()
            },
        ),
        (
            "no-replacement".into(),
            OrfConfig {
                age_threshold: u64::MAX,
                ..base.clone()
            },
        ),
        (
            "no-warmup".into(),
            OrfConfig {
                warmup_age: 0,
                ..base.clone()
            },
        ),
        (
            "tests=50".into(),
            OrfConfig {
                n_tests: 50,
                ..base.clone()
            },
        ),
        (
            format!("tests={}", base.n_tests * 4),
            OrfConfig {
                n_tests: base.n_tests * 4,
                ..base.clone()
            },
        ),
    ]
}

/// Run the ablation suite on one dataset.
pub fn run_ablation(
    ds: &Dataset,
    cols: &[usize],
    base: &OrfConfig,
    target_far: f64,
    seed: u64,
) -> Vec<AblationRow> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let split = DiskSplit::stratified(ds, 0.7, &mut rng);
    let labels = training_labels(ds, &split.is_train, ds.duration_days, 7);
    standard_variants(base)
        .into_iter()
        .map(|(variant, cfg)| {
            let (forest, scaler) = stream_orf(ds, &labels, cols, &cfg, seed ^ 0xAB1A7E);
            let scored = score_test_disks(
                ds,
                &split.test,
                &OrfScorer {
                    forest: &forest,
                    scaler: &scaler,
                },
                7,
            );
            let op = scored.tune_for_far(target_far);
            AblationRow {
                variant,
                fdr: op.fdr * 100.0,
                far: op.far * 100.0,
                tau: op.tau,
                trees_replaced: forest.trees_replaced(),
                total_splits: forest.tree_stats().iter().map(|(_, _, s)| s).sum(),
            }
        })
        .collect()
}

/// Render rows as an aligned text table.
pub fn render(rows: &[AblationRow], dataset: &str) -> String {
    let mut out = format!("ORF ablations — {dataset} (FDR at FAR-pinned operating point)\n");
    out.push_str(&format!(
        "{:>22} | {:>8} | {:>8} | {:>7} | {:>9} | {:>7}\n",
        "variant", "FDR(%)", "FAR(%)", "τ", "replaced", "splits"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>22} | {:>8.2} | {:>8.2} | {:>7.3} | {:>9} | {:>7}\n",
            r.variant, r.fdr, r.far, r.tau, r.trees_replaced, r.total_splits
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_smart::attrs::table2_feature_columns;
    use orfpred_smart::gen::{FleetConfig, FleetSim, ScalePreset};

    #[test]
    fn ablation_suite_runs_and_imbalance_variant_hurts() {
        let mut c = FleetConfig::sta(ScalePreset::Tiny, 13);
        c.n_good = 120;
        c.n_failed = 30;
        c.duration_days = 360;
        let ds = FleetSim::collect(&c);
        let base = OrfConfig {
            n_trees: 12,
            n_tests: 80,
            min_parent_size: 40.0,
            min_gain: 0.02,
            warmup_age: 10,
            ..OrfConfig::default()
        };
        let rows = run_ablation(&ds, &table2_feature_columns(), &base, 0.05, 3);
        assert_eq!(rows.len(), 6);
        let get = |name: &str| rows.iter().find(|r| r.variant.starts_with(name)).unwrap();
        let base_row = get("base");
        let naive = get("no-imbalance");
        assert!(
            base_row.fdr >= naive.fdr,
            "λn thinning should not hurt: base {:.1} vs naive {:.1}",
            base_row.fdr,
            naive.fdr
        );
        assert!(render(&rows, "tiny").contains("no-replacement"));
    }
}
