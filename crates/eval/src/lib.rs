//! Evaluation methodology of the paper (§4.3–§4.5).
//!
//! * [`metrics`] — per-disk FDR/FAR (a failed disk counts as detected iff
//!   any sample in its final week scores positive; a good disk counts as a
//!   false alarm iff any sample outside the latest week does) and operating
//!   point search ("all points ensure FAR around 1.0 %");
//! * [`split`] — stratified 70/30 disk-level train/test splits;
//! * [`prep`] — glue from labelled datasets to training matrices (scaling,
//!   λ-downsampling, chronological sample streams);
//! * [`scorer`] — a common scoring interface over every model family (RF,
//!   DT, SVM, threshold baseline, ORF);
//! * [`sweeps`] — Table 3 (λ on offline RF) and Table 4 (λn on ORF);
//! * [`monthly`] — Figures 2–3 (monthly convergence, ORF vs offline
//!   RF/DT/SVM at FAR ≈ 1 %);
//! * [`longterm`] — Figures 4–7 (practical long-term use: no-update /
//!   1-month replacing / accumulation / ORF);
//! * [`ablation`] — single-knob ORF design-choice ablations;
//! * [`zoo`] — the whole related-work model lineage under one protocol;
//! * [`streaming`] — two-pass paper-scale evaluation with O(disks) memory;
//! * [`health`] — multi-level residual-life assessment (extension);
//! * [`report`] — table/series containers with text and JSON rendering.

#![warn(missing_docs)]

pub mod ablation;
pub mod health;
pub mod longterm;
pub mod metrics;
pub mod monthly;
pub mod prep;
pub mod report;
pub mod scorer;
pub mod split;
pub mod streaming;
pub mod sweeps;
pub mod zoo;

pub use metrics::{score_test_disks, ScoredDisks};
pub use scorer::Scorer;
pub use split::DiskSplit;
