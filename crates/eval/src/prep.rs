//! Glue from labelled datasets to trained models.
//!
//! Implements the offline training pipeline of §4.4 — label with the 7-day
//! window, keep the training disks, λ-downsample the negatives (Eq. 4), fit
//! the min–max scaler on the kept rows, build the matrix — plus the
//! chronological streaming protocol used to train ORF in Tables 4 and
//! Figures 2–3 ("we simulate the sequential arrival of training data
//! according to the timestamp of labeled samples").

use orfpred_core::{OnlineRandomForest, OrfConfig};
use orfpred_smart::label::{LabelPolicy, Labeled};
use orfpred_smart::record::Dataset;
use orfpred_smart::scale::{MinMaxScaler, OnlineMinMax};
use orfpred_trees::downsample_negatives;
use orfpred_util::{Matrix, Xoshiro256pp};

/// Labelled samples of the training disks, observable up to `cutoff`.
pub fn training_labels(ds: &Dataset, is_train: &[bool], cutoff: u16, window: u16) -> Vec<Labeled> {
    let policy = LabelPolicy {
        window_days: window,
    };
    policy
        .label_dataset(ds, cutoff)
        .into_iter()
        .filter(|l| is_train[ds.records[l.record].disk_id as usize])
        .collect()
}

/// Labelled training-disk samples within `(from, to]` (the 1-month
/// replacing strategy of §4.5).
pub fn training_labels_range(
    ds: &Dataset,
    is_train: &[bool],
    from: u16,
    to: u16,
    window: u16,
) -> Vec<Labeled> {
    let policy = LabelPolicy {
        window_days: window,
    };
    policy
        .label_range(ds, from, to)
        .into_iter()
        .filter(|l| is_train[ds.records[l.record].disk_id as usize])
        .collect()
}

/// A ready-to-train design matrix plus the scaler that produced it.
pub struct TrainMatrix {
    /// Scaled feature rows.
    pub x: Matrix,
    /// Labels aligned with `x`.
    pub y: Vec<bool>,
    /// Scaler fitted on the kept (post-downsampling) rows.
    pub scaler: MinMaxScaler,
}

impl TrainMatrix {
    /// Number of positive labels.
    pub fn n_pos(&self) -> usize {
        self.y.iter().filter(|&&b| b).count()
    }
}

/// Downsample (λ = `lambda`, `None` = keep all), fit the scaler, build the
/// matrix. Returns `None` when no positives survive (a model cannot be
/// trained yet — early months of the stream).
pub fn build_matrix(
    ds: &Dataset,
    labeled: &[Labeled],
    cols: &[usize],
    lambda: Option<f64>,
    rng: &mut Xoshiro256pp,
) -> Option<TrainMatrix> {
    if labeled.is_empty() {
        return None;
    }
    let y_all: Vec<bool> = labeled.iter().map(|l| l.positive).collect();
    if !y_all.iter().any(|&b| b) {
        return None;
    }
    let keep = downsample_negatives(&y_all, lambda, rng);
    // log1p + min–max: heavy-tailed counters need the compression (see
    // `orfpred_smart::scale`).
    let scaler = MinMaxScaler::fit_log1p(
        keep.iter()
            .map(|&k| ds.records[labeled[k].record].features.as_slice()),
        cols,
    );
    let mut x = Matrix::with_capacity(cols.len(), keep.len());
    let mut y = Vec::with_capacity(keep.len());
    let mut buf = vec![0.0f32; cols.len()];
    for &k in &keep {
        scaler.transform_into(&ds.records[labeled[k].record].features, &mut buf);
        x.push_row(&buf);
        y.push(labeled[k].positive);
    }
    Some(TrainMatrix { x, y, scaler })
}

/// Train an ORF by replaying the labelled samples in timestamp order
/// (batched per day so tree updates parallelize), with a streaming scaler
/// that widens as data arrives — no future peeking.
///
/// Returns the forest and the scaler state at the end of the stream.
pub fn stream_orf(
    ds: &Dataset,
    labeled: &[Labeled],
    cols: &[usize],
    cfg: &OrfConfig,
    seed: u64,
) -> (OnlineRandomForest, OnlineMinMax) {
    let mut forest = OnlineRandomForest::new(cols.len(), cfg.clone(), seed);
    let mut scaler = OnlineMinMax::new_log1p(cols);
    stream_orf_continue(ds, labeled, &mut forest, &mut scaler);
    (forest, scaler)
}

/// Continue an existing ORF stream with more labelled samples (the monthly
/// harness feeds increments between evaluation points).
///
/// `labeled` must be sorted by record position (= chronological), which is
/// what [`training_labels`] produces.
pub fn stream_orf_continue(
    ds: &Dataset,
    labeled: &[Labeled],
    forest: &mut OnlineRandomForest,
    scaler: &mut OnlineMinMax,
) {
    let mut i = 0usize;
    let mut scaled_rows: Vec<(Vec<f32>, bool)> = Vec::new();
    while i < labeled.len() {
        // One calendar day per batch.
        let day = ds.records[labeled[i].record].day;
        let mut j = i;
        scaled_rows.clear();
        while j < labeled.len() && ds.records[labeled[j].record].day == day {
            let rec = &ds.records[labeled[j].record];
            scaler.update(&rec.features);
            scaled_rows.push((scaler.transform(&rec.features), labeled[j].positive));
            j += 1;
        }
        let batch: Vec<(&[f32], bool)> = scaled_rows
            .iter()
            .map(|(v, p)| (v.as_slice(), *p))
            .collect();
        forest.update_batch(&batch);
        i = j;
    }
}

/// Truncate a dataset at `cutoff` (inclusive): drop later records, clamp
/// observation windows, and mark disks failing after the cutoff as (still)
/// good. This is "the world as known at `cutoff`" — used to tune operating
/// points on training-period data without leaking the future (§4.5).
pub fn truncate_dataset(ds: &Dataset, cutoff: u16) -> Dataset {
    let records = ds
        .records
        .iter()
        .filter(|r| r.day <= cutoff)
        .cloned()
        .collect();
    let disks = ds
        .disks
        .iter()
        .map(|d| {
            let mut d = *d;
            if d.install_day > cutoff {
                // Not yet installed: collapse to an empty window at the
                // cutoff (no records reference it).
                d.install_day = cutoff;
                d.last_day = cutoff;
                d.failed = false;
            } else if d.last_day > cutoff {
                d.last_day = cutoff;
                d.failed = false;
            }
            d
        })
        .collect();
    Dataset {
        model: ds.model.clone(),
        duration_days: cutoff.min(ds.duration_days),
        records,
        disks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_smart::attrs::{feature_index, FeatureKind};
    use orfpred_smart::gen::{FleetConfig, FleetSim, ScalePreset};

    fn dataset() -> Dataset {
        let mut cfg = FleetConfig::sta(ScalePreset::Tiny, 11);
        cfg.n_good = 60;
        cfg.n_failed = 12;
        cfg.duration_days = 240;
        FleetSim::collect(&cfg)
    }

    fn cols() -> Vec<usize> {
        vec![
            feature_index(5, FeatureKind::Raw).unwrap(),
            feature_index(187, FeatureKind::Raw).unwrap(),
            feature_index(197, FeatureKind::Raw).unwrap(),
            feature_index(9, FeatureKind::Raw).unwrap(),
        ]
    }

    #[test]
    fn training_labels_only_cover_train_disks_and_cutoff() {
        let ds = dataset();
        let mut is_train = vec![false; ds.disks.len()];
        is_train[..30].fill(true);
        let labels = training_labels(&ds, &is_train, 100, 7);
        assert!(!labels.is_empty());
        for l in &labels {
            let rec = &ds.records[l.record];
            assert!(is_train[rec.disk_id as usize]);
            assert!(rec.day <= 100);
        }
    }

    #[test]
    fn build_matrix_balances_and_scales() {
        let ds = dataset();
        let is_train = vec![true; ds.disks.len()];
        let labels = training_labels(&ds, &is_train, ds.duration_days, 7);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let tm = build_matrix(&ds, &labels, &cols(), Some(3.0), &mut rng).unwrap();
        let n_pos = tm.n_pos();
        assert!(n_pos > 0);
        let n_neg = tm.y.len() - n_pos;
        assert!(
            (n_neg as f64 / n_pos as f64 - 3.0).abs() < 0.2,
            "ratio {} with {n_pos} positives",
            n_neg as f64 / n_pos as f64
        );
        for i in 0..tm.x.n_rows() {
            for &v in tm.x.row(i) {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn build_matrix_without_positives_returns_none() {
        let ds = dataset();
        let is_train = vec![true; ds.disks.len()];
        // Cutoff before any failure can be observed.
        let labels = training_labels(&ds, &is_train, 10, 7);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        assert!(build_matrix(&ds, &labels, &cols(), Some(3.0), &mut rng).is_none());
    }

    #[test]
    fn stream_orf_learns_the_failure_signature() {
        let ds = dataset();
        let is_train = vec![true; ds.disks.len()];
        let labels = training_labels(&ds, &is_train, ds.duration_days, 7);
        let cfg = OrfConfig {
            n_trees: 15,
            n_tests: 60,
            min_parent_size: 40.0,
            min_gain: 0.02,
            lambda_neg: 0.05,
            warmup_age: 10,
            ..OrfConfig::default()
        };
        let (forest, scaler) = stream_orf(&ds, &labels, &cols(), &cfg, 7);
        assert!(forest.samples_seen() > 100);
        // Failure signature: large raw counters → high score.
        let mut sick = [0.0f32; orfpred_smart::attrs::N_FEATURES];
        for &c in &cols() {
            sick[c] = 1e9;
        }
        let healthy = [0.0f32; orfpred_smart::attrs::N_FEATURES];
        let mut s_buf = vec![0.0f32; 4];
        scaler.transform_into(&sick, &mut s_buf);
        let sick_score = forest.score(&s_buf);
        scaler.transform_into(&healthy, &mut s_buf);
        let healthy_score = forest.score(&s_buf);
        assert!(
            sick_score > healthy_score + 0.25,
            "sick {sick_score} vs healthy {healthy_score}"
        );
    }

    #[test]
    fn truncate_dataset_hides_the_future() {
        let ds = dataset();
        let cutoff = 120u16;
        let cut = truncate_dataset(&ds, cutoff);
        cut.validate().unwrap();
        assert!(cut.records.iter().all(|r| r.day <= cutoff));
        for (orig, t) in ds.disks.iter().zip(&cut.disks) {
            if orig.failed && orig.last_day <= cutoff {
                assert!(t.failed, "observed failures stay failures");
            }
            if orig.last_day > cutoff {
                assert!(!t.failed, "future failures are invisible");
                assert_eq!(t.last_day, cutoff.max(t.install_day));
            }
        }
        assert!(cut.n_failed() <= ds.n_failed());
    }
}
