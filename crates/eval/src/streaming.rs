//! Paper-scale evaluation without materialising the dataset.
//!
//! The full Table 1 populations (36,531 STA disks ≈ 25M daily snapshots)
//! do not fit in memory as a `Dataset` (≈ 5 GB), but nothing about the
//! §4.4 protocol actually needs them to: labels are a pure function of the
//! per-disk metadata (which the simulator knows up front), training needs
//! only the positives plus a λ-thinned negative sample, ORF is online by
//! construction, and the per-disk FDR/FAR reduce to streaming maxima.
//!
//! Two passes over the (regenerable, seeded) event stream:
//!
//! 1. collect the training matrix (all positive samples + Bernoulli-thinned
//!    negatives at the rate that lands λ·|positives| in expectation) and
//!    run the ORF over the training disks' chronological samples;
//! 2. re-generate the stream and score every test-disk sample with the
//!    fitted offline RF and the final ORF, folding into per-disk maxima.
//!
//! Peak memory: the training matrix + O(#disks) accumulators.

use crate::metrics::ScoredDisks;
use orfpred_core::{OnlineRandomForest, OrfConfig};
use orfpred_smart::gen::{FleetConfig, FleetEvent, FleetSim, MceSim};
use orfpred_smart::record::DiskInfo;
use orfpred_smart::scale::{MinMaxScaler, OnlineMinMax};
use orfpred_trees::{ForestConfig, RandomForest};
use orfpred_util::{Matrix, Xoshiro256pp};
use serde::{Deserialize, Serialize};

/// Configuration for the streaming evaluation.
#[derive(Clone, Debug)]
pub struct StreamingConfig {
    /// Feature columns.
    pub cols: Vec<usize>,
    /// Prediction window in days.
    pub window: u16,
    /// NegSampleRatio for the offline RF.
    pub lambda: f64,
    /// FAR target for the reported operating points.
    pub target_far: f64,
    /// Offline RF settings.
    pub forest: ForestConfig,
    /// ORF settings.
    pub orf: OrfConfig,
    /// Seed for split/thinning (the fleet's own seed lives in its config).
    pub seed: u64,
}

impl StreamingConfig {
    /// Paper-like defaults over the given columns.
    pub fn new(cols: Vec<usize>, seed: u64) -> Self {
        Self {
            cols,
            window: 7,
            lambda: 3.0,
            target_far: 0.01,
            forest: ForestConfig::default(),
            orf: OrfConfig::default(),
            seed,
        }
    }
}

/// One model's headline numbers.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ModelOutcome {
    /// FDR (%) at the FAR-pinned operating point.
    pub fdr: f64,
    /// Achieved FAR (%).
    pub far: f64,
    /// Operating threshold.
    pub tau: f32,
    /// Per-disk AUC.
    pub auc: f64,
}

/// Result of the streaming evaluation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StreamingResult {
    /// Offline RF (λ-downsampled training).
    pub rf: ModelOutcome,
    /// ORF after the full chronological stream.
    pub orf: ModelOutcome,
    /// Positive training samples collected.
    pub n_train_pos: usize,
    /// Negative training samples kept after thinning.
    pub n_train_neg: usize,
    /// Negative training samples seen before thinning.
    pub n_train_neg_total: u64,
    /// Failed / good disks in the test set.
    pub n_test_failed: usize,
    /// Good disks in the test set.
    pub n_test_good: usize,
    /// Total snapshots streamed (both passes count once).
    pub n_samples: u64,
}

/// Oracle label for a sample, from the predetermined per-disk metadata:
/// `Some(true)` inside a failed disk's final window, `None` in a survivor's
/// final (status-unknown) week, `Some(false)` otherwise.
fn oracle_label(info: &DiskInfo, day: u16, window: u16) -> Option<bool> {
    if day + window > info.last_day {
        if info.failed {
            Some(true)
        } else {
            None
        }
    } else {
        Some(false)
    }
}

/// Run the two-pass streaming evaluation on a fleet configuration.
pub fn run_streaming(fleet: &FleetConfig, cfg: &StreamingConfig) -> StreamingResult {
    let infos = FleetSim::new(fleet).disk_infos();
    run_streaming_with(cfg, &infos, || FleetSim::new(fleet))
}

/// Run the streaming evaluation replaying a recorded telemetry store
/// instead of the simulator. The store is fully verified (CRCs, ordering,
/// manifest consistency) before the evaluation starts, so replay inside
/// the passes cannot fail; given a store recorded from the same fleet
/// configuration, results are bit-identical to [`run_streaming`] because
/// the replayed event stream is bit-identical.
pub fn run_streaming_store(
    store: &orfpred_store::Store,
    cfg: &StreamingConfig,
) -> Result<StreamingResult, orfpred_store::StoreError> {
    store.verify()?;
    Ok(run_streaming_with(cfg, &store.meta().disks, || {
        store
            .events()
            .map(|e| e.expect("store verified before replay"))
    }))
}

/// Run the streaming evaluation on the mce (correctable-memory-error)
/// domain. The simulated DIMM stream carries base-width rows; a fresh
/// [`WindowStage`] is folded over each pass so every row reaches the
/// models extended with the schema's windowed delta/mean/std columns —
/// `cfg.cols` may therefore index derived columns (`>= n_base_features`).
/// Both passes build the stage from scratch over the same seeded stream,
/// so the evaluation stays bit-deterministic in `(mce.seed, cfg.seed)`.
///
/// [`WindowStage`]: orfpred_smart::WindowStage
pub fn run_streaming_mce(
    mce: &orfpred_smart::gen::MceFleetConfig,
    cfg: &StreamingConfig,
) -> StreamingResult {
    use orfpred_smart::{DomainSchema, WindowStage};
    let schema = DomainSchema::mce();
    let infos = MceSim::new(mce).disk_infos();
    run_streaming_with(cfg, &infos, || {
        let mut w = WindowStage::new(&schema);
        MceSim::new(mce).map(move |mut ev| {
            match &mut ev {
                FleetEvent::Sample(rec) => w.extend(rec.disk_id, &mut rec.features),
                FleetEvent::Failure { disk_id, .. } => w.forget(*disk_id),
            }
            ev
        })
    })
}

/// The two-pass §4.4 protocol over any twice-replayable event source: the
/// factory is called once per pass and must yield the same stream both
/// times (a seeded simulator, a verified store, …).
pub fn run_streaming_with<I, F>(
    cfg: &StreamingConfig,
    infos: &[DiskInfo],
    events: F,
) -> StreamingResult
where
    I: Iterator<Item = FleetEvent>,
    F: Fn() -> I,
{
    let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);

    // ---- Pass 0: metadata (fates are fixed before any sample). ----
    let is_train = stratified_mask(infos, 0.7, &mut rng);

    // Exact expected counts → thinning probability for λ·|pos| negatives.
    let mut exp_pos = 0u64;
    let mut exp_neg = 0u64;
    for info in infos.iter().filter(|i| is_train[i.disk_id as usize]) {
        let days = u64::from(info.observed_days());
        let w = u64::from(cfg.window);
        if info.failed {
            exp_pos += days.min(w);
            exp_neg += days.saturating_sub(w);
        } else {
            exp_neg += days.saturating_sub(w);
        }
    }
    let p_keep = ((cfg.lambda * exp_pos as f64) / (exp_neg.max(1) as f64)).min(1.0);

    // ---- Pass 1: training collection + ORF stream. ----
    let mut pos_rows: Vec<Box<[f32]>> = Vec::with_capacity(exp_pos as usize);
    let mut neg_rows: Vec<Box<[f32]>> = Vec::new();
    let mut n_neg_total = 0u64;
    let mut n_samples = 0u64;
    let mut orf = OnlineRandomForest::new(cfg.cols.len(), cfg.orf.clone(), cfg.seed ^ 0x0e);
    let mut orf_scaler = OnlineMinMax::new_log1p(&cfg.cols);
    let mut scratch = vec![0.0f32; cfg.cols.len()];
    // ORF trains in chronological order on the oracle-labelled training
    // samples (the Table 4 protocol), thinning nothing — λn does the
    // thinning inside the forest.
    for ev in events() {
        let FleetEvent::Sample(rec) = ev else {
            continue;
        };
        n_samples += 1;
        if !is_train[rec.disk_id as usize] {
            continue;
        }
        let info = &infos[rec.disk_id as usize];
        let Some(positive) = oracle_label(info, rec.day, cfg.window) else {
            continue;
        };
        orf_scaler.update(&rec.features);
        orf_scaler.transform_into(&rec.features, &mut scratch);
        orf.update(&scratch, positive);
        if positive {
            pos_rows.push(rec.features.as_slice().into());
        } else {
            n_neg_total += 1;
            if rng.bernoulli(p_keep) {
                neg_rows.push(rec.features.as_slice().into());
            }
        }
    }

    // ---- Offline RF on the collected matrix. ----
    let scaler = MinMaxScaler::fit_log1p(
        pos_rows.iter().chain(neg_rows.iter()).map(|r| &**r),
        &cfg.cols,
    );
    let mut x = Matrix::with_capacity(cfg.cols.len(), pos_rows.len() + neg_rows.len());
    let mut y = Vec::with_capacity(pos_rows.len() + neg_rows.len());
    for r in &pos_rows {
        x.push_row(&scaler.transform(r));
        y.push(true);
    }
    for r in &neg_rows {
        x.push_row(&scaler.transform(r));
        y.push(false);
    }
    let rf = RandomForest::fit(&x, &y, &cfg.forest, rng.next_u64());

    // ---- Pass 2: score the test disks with both final models. ----
    // Both models are fixed from here on, so they are frozen into the flat
    // scoring representation and rows are scored in batches: accumulate a
    // chunk of scaled rows per model, fan the chunk out through the frozen
    // batch kernel, then fold scores into the per-disk maxima (per-disk max
    // is order-insensitive, so chunking cannot change the result).
    let rf_frozen = rf.freeze();
    let orf_frozen = orf.freeze();
    #[derive(Clone, Copy)]
    struct Maxima {
        rf: f32,
        orf: f32,
    }
    let mut maxima = vec![
        Maxima {
            rf: f32::NEG_INFINITY,
            orf: f32::NEG_INFINITY
        };
        infos.len()
    ];
    const CHUNK_ROWS: usize = 4096;
    let mut buf = vec![0.0f32; cfg.cols.len()];
    let mut rf_chunk = Matrix::with_capacity(cfg.cols.len(), CHUNK_ROWS);
    let mut orf_chunk = Matrix::with_capacity(cfg.cols.len(), CHUNK_ROWS);
    let mut chunk_disks: Vec<u32> = Vec::with_capacity(CHUNK_ROWS);
    let mut flush = |rf_chunk: &mut Matrix, orf_chunk: &mut Matrix, chunk_disks: &mut Vec<u32>| {
        let rf_scores = rf_frozen.score_batch(rf_chunk);
        let orf_scores = orf_frozen.score_batch(orf_chunk);
        for (i, &disk) in chunk_disks.iter().enumerate() {
            let m = &mut maxima[disk as usize];
            m.rf = m.rf.max(rf_scores[i]);
            m.orf = m.orf.max(orf_scores[i]);
        }
        *rf_chunk = Matrix::with_capacity(cfg.cols.len(), CHUNK_ROWS);
        *orf_chunk = Matrix::with_capacity(cfg.cols.len(), CHUNK_ROWS);
        chunk_disks.clear();
    };
    for ev in events() {
        let FleetEvent::Sample(rec) = ev else {
            continue;
        };
        if is_train[rec.disk_id as usize] {
            continue;
        }
        let info = &infos[rec.disk_id as usize];
        let in_window = rec.day + cfg.window > info.last_day;
        // FDR needs failed-disk window samples; FAR needs good-disk
        // outside samples; everything else is irrelevant.
        if info.failed != in_window {
            continue;
        }
        scaler.transform_into(&rec.features, &mut buf);
        rf_chunk.push_row(&buf);
        orf_scaler.transform_into(&rec.features, &mut buf);
        orf_chunk.push_row(&buf);
        chunk_disks.push(rec.disk_id);
        if chunk_disks.len() == CHUNK_ROWS {
            flush(&mut rf_chunk, &mut orf_chunk, &mut chunk_disks);
        }
    }
    flush(&mut rf_chunk, &mut orf_chunk, &mut chunk_disks);

    let mut rf_scored = ScoredDisks::default();
    let mut orf_scored = ScoredDisks::default();
    let mut n_test_failed = 0;
    let mut n_test_good = 0;
    for info in infos.iter().filter(|i| !is_train[i.disk_id as usize]) {
        let m = maxima[info.disk_id as usize];
        if !m.rf.is_finite() {
            continue;
        }
        if info.failed {
            n_test_failed += 1;
            rf_scored.failed_window_max.push(m.rf);
            orf_scored.failed_window_max.push(m.orf);
        } else {
            n_test_good += 1;
            rf_scored.good_outside_max.push(m.rf);
            orf_scored.good_outside_max.push(m.orf);
        }
    }

    let outcome = |scored: &ScoredDisks| {
        let op = scored.tune_for_far(cfg.target_far);
        ModelOutcome {
            fdr: op.fdr * 100.0,
            far: op.far * 100.0,
            tau: op.tau,
            auc: scored.auc(),
        }
    };
    StreamingResult {
        rf: outcome(&rf_scored),
        orf: outcome(&orf_scored),
        n_train_pos: pos_rows.len(),
        n_train_neg: neg_rows.len(),
        n_train_neg_total: n_neg_total,
        n_test_failed,
        n_test_good,
        n_samples,
    }
}

/// Stratified 70/30 mask over disk metadata (train = true).
fn stratified_mask(infos: &[DiskInfo], train_fraction: f64, rng: &mut Xoshiro256pp) -> Vec<bool> {
    let mut mask = vec![false; infos.len()];
    for failed in [false, true] {
        let mut ids: Vec<u32> = infos
            .iter()
            .filter(|d| d.failed == failed)
            .map(|d| d.disk_id)
            .collect();
        rng.shuffle(&mut ids);
        let n_train = (ids.len() as f64 * train_fraction).round() as usize;
        for &d in &ids[..n_train] {
            mask[d as usize] = true;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_smart::attrs::table2_feature_columns;
    use orfpred_smart::gen::ScalePreset;

    fn tiny_fleet() -> FleetConfig {
        let mut f = FleetConfig::sta(ScalePreset::Tiny, 23);
        f.n_good = 150;
        f.n_failed = 35;
        f.duration_days = 400;
        f
    }

    fn tiny_cfg() -> StreamingConfig {
        let mut cfg = StreamingConfig::new(table2_feature_columns(), 9);
        cfg.target_far = 0.05;
        cfg.forest.n_trees = 12;
        cfg.orf.n_trees = 12;
        cfg.orf.n_tests = 80;
        cfg.orf.min_parent_size = 40.0;
        cfg.orf.warmup_age = 10;
        cfg
    }

    #[test]
    fn streaming_matches_the_materialised_protocol_in_spirit() {
        let fleet = tiny_fleet();
        let cfg = tiny_cfg();
        let r = run_streaming(&fleet, &cfg);
        // Counts are sane.
        let n_test = r.n_test_failed + r.n_test_good;
        // 30% of 185 disks, minus any disk with no scoreable samples.
        assert!((52..=56).contains(&n_test), "test disks {n_test}");
        assert!(r.n_train_pos > 100, "positives {}", r.n_train_pos);
        let ratio = r.n_train_neg as f64 / r.n_train_pos as f64;
        assert!(
            (ratio - cfg.lambda).abs() < 0.8,
            "thinning should land near λ: ratio {ratio}"
        );
        // Models learned something real.
        assert!(r.rf.fdr > 60.0, "RF FDR {}", r.rf.fdr);
        assert!(r.rf.far <= 5.0 + 1e-9);
        assert!(r.orf.fdr > 40.0, "ORF FDR {}", r.orf.fdr);
        assert!(r.rf.auc > 0.8, "RF AUC {}", r.rf.auc);
        assert!(r.n_samples > 30_000);
    }

    #[test]
    fn mce_streaming_evaluation_learns_from_windowed_columns() {
        use orfpred_smart::gen::MceFleetConfig;
        use orfpred_smart::DomainSchema;

        let mut mce = MceFleetConfig::preset(ScalePreset::Tiny, 31);
        mce.n_good = 120;
        mce.n_failed = 30;
        mce.duration_days = 200;

        // Mix base columns with the windowed delta/mean/std columns so the
        // evaluation exercises the derived half of the layout.
        let schema = DomainSchema::mce();
        let n_base = schema.n_base_features();
        let cols: Vec<usize> = (0..n_base).chain(n_base..schema.n_features()).collect();
        let mut cfg = StreamingConfig::new(cols, 9);
        cfg.target_far = 0.05;
        cfg.forest.n_trees = 12;
        cfg.orf.n_trees = 12;
        cfg.orf.n_tests = 80;
        cfg.orf.min_parent_size = 40.0;
        cfg.orf.warmup_age = 10;

        let a = run_streaming_mce(&mce, &cfg);
        assert!(a.n_train_pos > 50, "positives {}", a.n_train_pos);
        assert!(a.n_samples > 10_000, "samples {}", a.n_samples);
        // The failure signature (CE-rate ramp) is learnable.
        assert!(a.rf.auc > 0.7, "RF AUC {}", a.rf.auc);
        assert!(a.rf.fdr > 40.0, "RF FDR {}", a.rf.fdr);
        // Both passes rebuild the window stage: the run is reproducible.
        let b = run_streaming_mce(&mce, &cfg);
        assert_eq!(a.rf.fdr.to_bits(), b.rf.fdr.to_bits());
        assert_eq!(a.orf.fdr.to_bits(), b.orf.fdr.to_bits());
        assert_eq!(a.orf.tau.to_bits(), b.orf.tau.to_bits());
        assert_eq!(a.n_samples, b.n_samples);
    }

    #[test]
    fn oracle_label_matches_label_policy_semantics() {
        let failed = DiskInfo {
            disk_id: 0,
            install_day: 0,
            last_day: 100,
            failed: true,
        };
        let good = DiskInfo {
            disk_id: 1,
            install_day: 0,
            last_day: 100,
            failed: false,
        };
        assert_eq!(oracle_label(&failed, 94, 7), Some(true));
        assert_eq!(oracle_label(&failed, 93, 7), Some(false));
        assert_eq!(oracle_label(&good, 94, 7), None);
        assert_eq!(oracle_label(&good, 93, 7), Some(false));
    }

    #[test]
    fn store_replay_reproduces_the_simulator_run_exactly() {
        let fleet = tiny_fleet();
        let cfg = tiny_cfg();
        let from_sim = run_streaming(&fleet, &cfg);

        let dir = std::env::temp_dir().join(format!(
            "orfpred-eval-store-{}-{}",
            std::process::id(),
            fleet.seed
        ));
        let _ = std::fs::remove_dir_all(&dir);
        orfpred_store::record_fleet(
            &dir,
            &fleet,
            orfpred_store::StoreConfig {
                segment_rows: 4096,
                ..Default::default()
            },
        )
        .unwrap();
        let store = orfpred_store::Store::open(&dir).unwrap();
        let from_store = run_streaming_store(&store, &cfg).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();

        // Same events + same seeds → the whole evaluation is bit-identical.
        assert_eq!(from_sim.n_samples, from_store.n_samples);
        assert_eq!(from_sim.n_train_pos, from_store.n_train_pos);
        assert_eq!(from_sim.n_train_neg, from_store.n_train_neg);
        assert_eq!(from_sim.rf.fdr.to_bits(), from_store.rf.fdr.to_bits());
        assert_eq!(from_sim.rf.auc.to_bits(), from_store.rf.auc.to_bits());
        assert_eq!(from_sim.orf.fdr.to_bits(), from_store.orf.fdr.to_bits());
        assert_eq!(from_sim.orf.tau.to_bits(), from_store.orf.tau.to_bits());
    }

    #[test]
    fn two_generations_of_the_same_fleet_are_identical() {
        // The two-pass design relies on the stream being regenerable.
        let fleet = tiny_fleet();
        let a: Vec<(u32, u16, f32)> = FleetSim::new(&fleet)
            .filter_map(|ev| match ev {
                FleetEvent::Sample(r) => Some((r.disk_id, r.day, r.features[7])),
                FleetEvent::Failure { .. } => None,
            })
            .take(5_000)
            .collect();
        let b: Vec<(u32, u16, f32)> = FleetSim::new(&fleet)
            .filter_map(|ev| match ev {
                FleetEvent::Sample(r) => Some((r.disk_id, r.day, r.features[7])),
                FleetEvent::Failure { .. } => None,
            })
            .take(5_000)
            .collect();
        assert_eq!(a, b);
    }
}
