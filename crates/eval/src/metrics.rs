//! Failure Detection Rate and False Alarm Rate (§4.3), plus operating-point
//! search.
//!
//! Both metrics are **per-disk**:
//!
//! * a failed disk is *detected* iff at least one sample collected in the
//!   last `window` days before its failure scores at or above the alarm
//!   threshold;
//! * a good disk is a *false alarm* iff any sample outside its latest
//!   `window` days does.
//!
//! Because both are monotone in the threshold, it suffices to keep each
//! disk's maximum score over the relevant samples; every threshold-dependent
//! quantity (FDR/FAR curves, FAR-pinned operating points) then comes free.

use crate::scorer::Scorer;
use orfpred_smart::record::Dataset;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Per-disk maximum scores over the relevant sample sets.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ScoredDisks {
    /// Per failed disk: max score over its final-week samples.
    pub failed_window_max: Vec<f32>,
    /// Per good disk: max score over samples outside the latest week.
    pub good_outside_max: Vec<f32>,
}

/// A tuned operating point.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Alarm threshold.
    pub tau: f32,
    /// FDR at `tau`.
    pub fdr: f64,
    /// FAR at `tau`.
    pub far: f64,
}

impl ScoredDisks {
    /// FDR at threshold `tau` (alarm fires when `score >= tau`).
    pub fn fdr(&self, tau: f32) -> f64 {
        if self.failed_window_max.is_empty() {
            return 0.0;
        }
        let detected = self.failed_window_max.iter().filter(|&&s| s >= tau).count();
        detected as f64 / self.failed_window_max.len() as f64
    }

    /// FAR at threshold `tau`.
    pub fn far(&self, tau: f32) -> f64 {
        if self.good_outside_max.is_empty() {
            return 0.0;
        }
        let alarms = self.good_outside_max.iter().filter(|&&s| s >= tau).count();
        alarms as f64 / self.good_outside_max.len() as f64
    }

    /// Smallest threshold whose FAR does not exceed `target_far` — i.e. the
    /// highest-FDR operating point satisfying the FAR constraint (the
    /// paper's "FAR around 1.0 %" protocol).
    pub fn tune_for_far(&self, target_far: f64) -> OperatingPoint {
        // Candidate thresholds: every observed score (FAR only changes
        // there), plus one value above the maximum (FAR = 0 fallback).
        let mut candidates: Vec<f32> = self
            .good_outside_max
            .iter()
            .chain(self.failed_window_max.iter())
            .copied()
            .collect();
        let above_max = candidates.iter().fold(0.0f32, |a, &b| a.max(b)).max(1.0) * 1.0001 + 1e-6;
        candidates.push(above_max);
        candidates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        candidates.dedup();
        for &tau in &candidates {
            let far = self.far(tau);
            if far <= target_far {
                return OperatingPoint {
                    tau,
                    fdr: self.fdr(tau),
                    far,
                };
            }
        }
        // Unreachable: the above-max candidate always has FAR = 0.
        OperatingPoint {
            tau: above_max,
            fdr: self.fdr(above_max),
            far: 0.0,
        }
    }

    /// Number of failed / good disks covered.
    pub fn counts(&self) -> (usize, usize) {
        (self.failed_window_max.len(), self.good_outside_max.len())
    }

    /// The full per-disk ROC curve: one point per distinct threshold where
    /// FDR or FAR changes, ordered by increasing FAR (decreasing τ).
    pub fn roc(&self) -> Vec<RocPoint> {
        let mut taus: Vec<f32> = self
            .good_outside_max
            .iter()
            .chain(self.failed_window_max.iter())
            .copied()
            .collect();
        taus.sort_by(|a, b| b.partial_cmp(a).unwrap());
        taus.dedup();
        let mut points = Vec::with_capacity(taus.len() + 1);
        // τ above every score: the (0, 0) corner.
        let above = taus.first().copied().unwrap_or(1.0) + 1.0;
        points.push(RocPoint {
            tau: above,
            fdr: 0.0,
            far: 0.0,
        });
        for tau in taus {
            points.push(RocPoint {
                tau,
                fdr: self.fdr(tau),
                far: self.far(tau),
            });
        }
        points
    }

    /// Area under the (FAR, FDR) curve via the trapezoid rule. 0.5 is
    /// chance level for the *per-disk* operating characteristic; 1.0 is a
    /// perfect ranking. Returns `NaN` when either class is empty.
    pub fn auc(&self) -> f64 {
        if self.failed_window_max.is_empty() || self.good_outside_max.is_empty() {
            return f64::NAN;
        }
        let roc = self.roc();
        let mut area = 0.0;
        for w in roc.windows(2) {
            area += (w[1].far - w[0].far) * (w[1].fdr + w[0].fdr) / 2.0;
        }
        // Close the curve to (1, 1).
        if let Some(last) = roc.last() {
            area += (1.0 - last.far) * (last.fdr + 1.0) / 2.0;
        }
        area
    }
}

/// One point of the per-disk ROC curve.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RocPoint {
    /// Alarm threshold.
    pub tau: f32,
    /// FDR at `tau`.
    pub fdr: f64,
    /// FAR at `tau`.
    pub far: f64,
}

/// Score the listed disks with `scorer` and reduce to per-disk maxima.
///
/// `window` is the prediction horizon (7 days in the paper). Gathers every
/// eligible sample into one flat batch and scores it via
/// [`Scorer::score_raw_many`], so frozen scorers run their interleaved
/// breadth-first kernels; the per-disk maxima are then folded from
/// contiguous spans of the batch. Bit-identical to scoring row by row with
/// [`scored_disks_with`] (same eligibility filter, same `>` max fold).
pub fn score_test_disks<S: Scorer>(
    ds: &Dataset,
    disks: &[u32],
    scorer: &S,
    window: u16,
) -> ScoredDisks {
    let to = ds.duration_days.saturating_add(1);
    let by_disk = ds.records_by_disk();
    let mut rows: Vec<&[f32]> = Vec::new();
    // Per disk: (failed, number of eligible rows pushed).
    let mut spans: Vec<(bool, usize)> = Vec::with_capacity(disks.len());
    for &disk_id in disks {
        let info = &ds.disks[disk_id as usize];
        let mut n = 0usize;
        for &pos in &by_disk[disk_id as usize] {
            let rec = &ds.records[pos];
            if rec.day >= to {
                continue;
            }
            let in_window = rec.day + window > info.last_day;
            // Failed disks: only final-week samples matter (FDR).
            // Good disks: only outside-week samples matter (FAR).
            if info.failed == in_window {
                rows.push(&rec.features);
                n += 1;
            }
        }
        spans.push((info.failed, n));
    }
    let scores = scorer.score_raw_many(&rows);
    let mut out = ScoredDisks::default();
    let mut offset = 0usize;
    for (failed, n) in spans {
        let mut best = f32::NEG_INFINITY;
        for &s in &scores[offset..offset + n] {
            if s > best {
                best = s;
            }
        }
        offset += n;
        if !best.is_finite() {
            // Disk had no relevant samples (e.g. installed in the final
            // week); treat as silent.
            continue;
        }
        if failed {
            out.failed_window_max.push(best);
        } else {
            out.good_outside_max.push(best);
        }
    }
    out
}

/// Generalised per-disk maxima: scores come from a closure over the record
/// position (enabling precomputed causal ORF scores), and only samples with
/// `from <= day < to` are considered — the range restriction behind the
/// §4.5 training-period operating-point tuning.
pub fn scored_disks_with(
    ds: &Dataset,
    disks: &[u32],
    score_fn: &(dyn Fn(usize, &orfpred_smart::record::DiskDay) -> f32 + Sync),
    window: u16,
    from: u16,
    to: u16,
) -> ScoredDisks {
    scored_disks_censored(ds, disks, score_fn, window, from, to, None)
}

/// [`scored_disks_with`] under right-censoring: the world as known at
/// `censor` — disks failing later count as good, observation windows clamp,
/// and later samples are invisible. Equivalent to scoring
/// `prep::truncate_dataset(ds, censor)` but without cloning the records
/// (the §4.5 harness tunes operating points on censored views every month).
pub fn scored_disks_censored(
    ds: &Dataset,
    disks: &[u32],
    score_fn: &(dyn Fn(usize, &orfpred_smart::record::DiskDay) -> f32 + Sync),
    window: u16,
    from: u16,
    to: u16,
    censor: Option<u16>,
) -> ScoredDisks {
    let by_disk = ds.records_by_disk();
    let maxima: Vec<(bool, f32)> = disks
        .par_iter()
        .map(|&disk_id| {
            let mut info = ds.disks[disk_id as usize];
            if let Some(cut) = censor {
                if info.install_day > cut {
                    return (false, f32::NEG_INFINITY);
                }
                if info.last_day > cut {
                    info.last_day = cut;
                    info.failed = false;
                }
            }
            let to = censor.map_or(to, |cut| to.min(cut + 1));
            let mut best = f32::NEG_INFINITY;
            for &pos in &by_disk[disk_id as usize] {
                let rec = &ds.records[pos];
                if rec.day < from || rec.day >= to {
                    continue;
                }
                let in_window = rec.day + window > info.last_day;
                // Failed disks: only final-week samples matter (FDR).
                // Good disks: only outside-week samples matter (FAR).
                if info.failed == in_window {
                    let s = score_fn(pos, rec);
                    if s > best {
                        best = s;
                    }
                }
            }
            (info.failed, best)
        })
        .collect();
    let mut out = ScoredDisks::default();
    for (failed, best) in maxima {
        if !best.is_finite() {
            // Disk had no relevant samples (e.g. installed in the final
            // week); treat as silent.
            continue;
        }
        if failed {
            out.failed_window_max.push(best);
        } else {
            out.good_outside_max.push(best);
        }
    }
    out
}

/// FDR/FAR measured on the samples of a single calendar month (§4.5).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MonthlyOutcome {
    /// 1-based month index.
    pub month: usize,
    /// Fraction of disks failing this month that were detected.
    pub fdr: f64,
    /// Fraction of good disks active this month with a false alarm.
    pub far: f64,
    /// Number of disks failing this month.
    pub n_failed: usize,
    /// Number of good (this month) disks.
    pub n_good: usize,
}

/// Evaluate a model's *practical* performance on month `month` (1-based,
/// days `[(month-1)·month_days, month·month_days)`):
///
/// * disks failing inside the month count toward FDR (detected iff one of
///   their in-window samples this month alarms);
/// * disks active in the month that survive it — and survive `window` days
///   past its end — count toward FAR.
pub fn monthly_outcome<S: Scorer>(
    ds: &Dataset,
    disks: &[u32],
    scorer: &S,
    tau: f32,
    window: u16,
    month: usize,
    month_days: u16,
) -> MonthlyOutcome {
    monthly_outcome_with(
        ds,
        disks,
        &|_, rec| scorer.score_raw(&rec.features),
        tau,
        window,
        month,
        month_days,
    )
}

/// [`monthly_outcome`] over a record-position score closure (for
/// precomputed causal scores).
pub fn monthly_outcome_with(
    ds: &Dataset,
    disks: &[u32],
    score_fn: &(dyn Fn(usize, &orfpred_smart::record::DiskDay) -> f32 + Sync),
    tau: f32,
    window: u16,
    month: usize,
    month_days: u16,
) -> MonthlyOutcome {
    assert!(month >= 1, "months are 1-based");
    let start = (month as u16 - 1) * month_days;
    let end = month as u16 * month_days; // exclusive
    let by_disk = ds.records_by_disk();

    let verdicts: Vec<Option<(bool, bool)>> = disks
        .par_iter()
        .map(|&disk_id| {
            let info = &ds.disks[disk_id as usize];
            if info.install_day >= end {
                return None; // not yet installed
            }
            let fails_this_month = info.failed && info.last_day >= start && info.last_day < end;
            if !fails_this_month {
                // Good-this-month only if it survives the month plus the
                // window (otherwise its true label is positive/unknown).
                let survives = if info.failed {
                    info.last_day >= end + window
                } else {
                    info.last_day + 1 >= end.min(ds.duration_days)
                };
                if !survives || info.last_day < start {
                    return None;
                }
            }
            let mut alarmed = false;
            for &pos in &by_disk[disk_id as usize] {
                let rec = &ds.records[pos];
                if rec.day < start || rec.day >= end {
                    continue;
                }
                if fails_this_month {
                    // Only in-window samples legitimise a detection.
                    if rec.day + window <= info.last_day {
                        continue;
                    }
                } else if !info.failed && rec.day + window > info.last_day {
                    // Survivor's final observed week: status unknown.
                    continue;
                }
                if score_fn(pos, rec) >= tau {
                    alarmed = true;
                    break;
                }
            }
            Some((fails_this_month, alarmed))
        })
        .collect();

    let mut n_failed = 0;
    let mut detected = 0;
    let mut n_good = 0;
    let mut false_alarms = 0;
    for v in verdicts.into_iter().flatten() {
        match v {
            (true, hit) => {
                n_failed += 1;
                detected += usize::from(hit);
            }
            (false, hit) => {
                n_good += 1;
                false_alarms += usize::from(hit);
            }
        }
    }
    MonthlyOutcome {
        month,
        fdr: if n_failed > 0 {
            detected as f64 / n_failed as f64
        } else {
            f64::NAN
        },
        far: if n_good > 0 {
            false_alarms as f64 / n_good as f64
        } else {
            f64::NAN
        },
        n_failed,
        n_good,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_smart::attrs::N_FEATURES;
    use orfpred_smart::record::{DiskDay, DiskInfo};

    /// Scorer reading feature column 0 directly.
    struct Passthrough;
    impl Scorer for Passthrough {
        fn score_raw(&self, features: &[f32]) -> f32 {
            features[0]
        }
    }

    fn rec(disk_id: u32, day: u16, score: f32) -> DiskDay {
        let mut features = vec![0.0f32; N_FEATURES];
        features[0] = score;
        DiskDay {
            disk_id,
            day,
            features,
        }
    }

    /// Two failed + two good disks with hand-placed scores.
    fn fixture() -> Dataset {
        let mut records = Vec::new();
        // Disk 0: fails day 30; ramp in final week (detected at tau 0.5).
        for day in 0..=30u16 {
            records.push(rec(0, day, if day + 7 > 30 { 0.9 } else { 0.1 }));
        }
        // Disk 1: fails day 40; silent (missed at tau 0.5).
        for day in 0..=40u16 {
            records.push(rec(1, day, 0.1));
        }
        // Disk 2: good; clean.
        for day in 0..=60u16 {
            records.push(rec(2, day, 0.2));
        }
        // Disk 3: good but one spike outside the final week (false alarm).
        for day in 0..=60u16 {
            records.push(rec(3, day, if day == 10 { 0.95 } else { 0.2 }));
        }
        records.sort_by_key(|r| (r.day, r.disk_id));
        Dataset {
            model: "T".into(),
            duration_days: 60,
            records,
            disks: vec![
                DiskInfo {
                    disk_id: 0,
                    install_day: 0,
                    last_day: 30,
                    failed: true,
                },
                DiskInfo {
                    disk_id: 1,
                    install_day: 0,
                    last_day: 40,
                    failed: true,
                },
                DiskInfo {
                    disk_id: 2,
                    install_day: 0,
                    last_day: 60,
                    failed: false,
                },
                DiskInfo {
                    disk_id: 3,
                    install_day: 0,
                    last_day: 60,
                    failed: false,
                },
            ],
        }
    }

    #[test]
    fn fdr_and_far_match_hand_computation() {
        let ds = fixture();
        let scored = score_test_disks(&ds, &[0, 1, 2, 3], &Passthrough, 7);
        assert_eq!(scored.counts(), (2, 2));
        assert!(
            (scored.fdr(0.5) - 0.5).abs() < 1e-12,
            "disk 0 detected, 1 missed"
        );
        assert!((scored.far(0.5) - 0.5).abs() < 1e-12, "disk 3 false-alarms");
        // Threshold above the spike silences the false alarm but keeps the
        // detection.
        assert!((scored.fdr(0.96) - 0.0).abs() < 1e-12);
        assert!((scored.far(0.96) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn good_disk_final_week_spike_is_not_a_false_alarm() {
        // A spike inside the latest week of a good disk must not count
        // (§4.3: "outside the latest week").
        let mut ds = fixture();
        for r in &mut ds.records {
            if r.disk_id == 2 && r.day == 58 {
                r.features[0] = 0.99;
            }
        }
        let scored = score_test_disks(&ds, &[2], &Passthrough, 7);
        assert_eq!(scored.far(0.9), 0.0);
    }

    #[test]
    fn failed_disk_early_spike_does_not_count_as_detection() {
        let mut ds = fixture();
        // Disk 1 spikes at day 5 — way before its final week.
        for r in &mut ds.records {
            if r.disk_id == 1 && r.day == 5 {
                r.features[0] = 0.99;
            }
        }
        let scored = score_test_disks(&ds, &[1], &Passthrough, 7);
        assert_eq!(scored.fdr(0.5), 0.0, "early spike is not a detection");
    }

    #[test]
    fn tune_for_far_pins_the_operating_point() {
        let ds = fixture();
        let scored = score_test_disks(&ds, &[0, 1, 2, 3], &Passthrough, 7);
        // target 0.5: one of two good disks may alarm → tau can drop to
        // catch disk 0 (max window score 0.9).
        let op = scored.tune_for_far(0.5);
        assert!(op.far <= 0.5);
        assert!((op.fdr - 0.5).abs() < 1e-12);
        // target 0: threshold must climb above the 0.95 spike.
        let op0 = scored.tune_for_far(0.0);
        assert_eq!(op0.far, 0.0);
        assert!(op0.tau > 0.95);
    }

    #[test]
    fn roc_is_monotone_and_anchored() {
        let ds = fixture();
        let scored = score_test_disks(&ds, &[0, 1, 2, 3], &Passthrough, 7);
        let roc = scored.roc();
        assert_eq!(roc[0].fdr, 0.0);
        assert_eq!(roc[0].far, 0.0);
        for w in roc.windows(2) {
            assert!(
                w[1].far >= w[0].far,
                "FAR must not decrease along the curve"
            );
            assert!(
                w[1].fdr >= w[0].fdr,
                "FDR must not decrease along the curve"
            );
            assert!(w[1].tau < w[0].tau, "thresholds strictly decrease");
        }
    }

    #[test]
    fn auc_bounds_and_perfect_ranking() {
        // Perfect separation: every failed window max above every good max.
        let perfect = ScoredDisks {
            failed_window_max: vec![0.9, 0.8],
            good_outside_max: vec![0.1, 0.2, 0.3],
        };
        assert!((perfect.auc() - 1.0).abs() < 1e-12, "auc {}", perfect.auc());
        // Inverted ranking: AUC 0.
        let inverted = ScoredDisks {
            failed_window_max: vec![0.1],
            good_outside_max: vec![0.9],
        };
        assert!(inverted.auc() < 1e-12);
        // Degenerate inputs.
        assert!(ScoredDisks::default().auc().is_nan());
    }

    #[test]
    fn tune_for_far_with_no_disks_is_safe() {
        let empty = ScoredDisks::default();
        let op = empty.tune_for_far(0.01);
        assert_eq!(op.fdr, 0.0);
        assert_eq!(op.far, 0.0);
    }

    #[test]
    fn monthly_outcome_attributes_failures_to_their_month() {
        let ds = fixture();
        // Month 1 = days 0..30; month 2 = days 30..60.
        // Disk 0 fails day 30 → month 2. Disk 1 fails day 40 → month 2.
        let m1 = monthly_outcome(&ds, &[0, 1, 2, 3], &Passthrough, 0.5, 7, 1, 30);
        assert_eq!(m1.n_failed, 0);
        // Disk 0 fails within 7 days of month 1's end → neither failed-this-
        // month nor clean-good. Disk 1 fails on day 40, beyond the window,
        // so in month 1 it is a good disk; disk 3's day-10 spike false-alarms.
        assert_eq!(m1.n_good, 3);
        assert!((m1.far - 1.0 / 3.0).abs() < 1e-12);
        let m2 = monthly_outcome(&ds, &[0, 1, 2, 3], &Passthrough, 0.5, 7, 2, 30);
        assert_eq!(m2.n_failed, 2);
        assert!((m2.fdr - 0.5).abs() < 1e-12, "disk 0 detected in month 2");
        assert_eq!(m2.n_good, 2);
        assert!((m2.far - 0.0).abs() < 1e-12, "no spikes in month 2");
    }

    #[test]
    fn batched_scoring_matches_the_closure_path_bitwise() {
        // score_test_disks now flattens rows into one score_raw_many call;
        // it must reproduce the per-row closure path exactly, including
        // disk order and the silent-disk (no eligible samples) skip.
        let mut ds = fixture();
        // Give disk 3 an install inside the final week → zero eligible rows.
        ds.disks[3].install_day = 55;
        ds.records.retain(|r| r.disk_id != 3 || r.day >= 55);
        let disks = [0u32, 1, 2, 3];
        let batched = score_test_disks(&ds, &disks, &Passthrough, 7);
        let closure = scored_disks_with(
            &ds,
            &disks,
            &|_, rec| Passthrough.score_raw(&rec.features),
            7,
            0,
            ds.duration_days.saturating_add(1),
        );
        let bits = |v: &[f32]| v.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&batched.failed_window_max),
            bits(&closure.failed_window_max)
        );
        assert_eq!(
            bits(&batched.good_outside_max),
            bits(&closure.good_outside_max)
        );
    }

    #[test]
    fn monthly_outcome_skips_uninstalled_disks() {
        let mut ds = fixture();
        ds.disks[2].install_day = 50;
        // Records before install are invalid; strip them.
        ds.records.retain(|r| r.disk_id != 2 || r.day >= 50);
        let m1 = monthly_outcome(&ds, &[2], &Passthrough, 0.5, 7, 1, 30);
        assert_eq!(m1.n_good, 0);
        assert!(m1.far.is_nan());
    }
}
