//! Offline labelling with the 7-day prediction window (§3 and §4.4).
//!
//! The task is: *will this disk fail within the next `window_days` days?*
//! Given full knowledge up to a `cutoff` day:
//!
//! * samples of a disk that failed on `f ≤ cutoff`: **positive** in the last
//!   `window_days` before `f`, **negative** earlier;
//! * samples of a disk still operating at `cutoff`: **negative** if at least
//!   `window_days` old at the cutoff (the disk demonstrably did not fail in
//!   the following week), **unlabeled** otherwise — exactly the rule the
//!   paper uses for good disks in the training set.
//!
//! Note the deliberate label noise the paper accepts: a disk that fails
//! *after* the cutoff contributes negative samples that may already show
//! symptoms. ORF's robustness to this noise is part of the claim.

use crate::record::{Dataset, DiskDay, DiskInfo};
use serde::{Deserialize, Serialize};

/// Labelling policy parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LabelPolicy {
    /// Prediction horizon: a sample is positive if the disk fails within
    /// this many days. The paper fixes 7.
    pub window_days: u16,
}

impl Default for LabelPolicy {
    fn default() -> Self {
        Self { window_days: 7 }
    }
}

/// A labelled training sample (indices into a [`Dataset`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Labeled {
    /// Position in `Dataset::records`.
    pub record: usize,
    /// True = the disk failed within the window after this sample.
    pub positive: bool,
}

impl LabelPolicy {
    /// Label one sample given knowledge up to `cutoff` (inclusive).
    /// Returns `None` for unlabeled samples.
    pub fn label(&self, rec: &DiskDay, info: &DiskInfo, cutoff: u16) -> Option<bool> {
        debug_assert_eq!(rec.disk_id, info.disk_id);
        if rec.day > cutoff {
            return None; // sample not yet observed
        }
        if info.failed && info.last_day <= cutoff {
            // Failure already observed: positive iff inside the window.
            Some(rec.day + self.window_days > info.last_day)
        } else {
            // Still operating at the cutoff (from the cutoff's viewpoint a
            // disk failing later is indistinguishable from a good one).
            if rec.day + self.window_days > cutoff {
                None
            } else {
                Some(false)
            }
        }
    }

    /// Label every sample of `ds` observable up to `cutoff`.
    pub fn label_dataset(&self, ds: &Dataset, cutoff: u16) -> Vec<Labeled> {
        let mut out = Vec::new();
        for (i, rec) in ds.records.iter().enumerate() {
            if rec.day > cutoff {
                break; // records are chronological
            }
            let info = &ds.disks[rec.disk_id as usize];
            if let Some(positive) = self.label(rec, info, cutoff) {
                out.push(Labeled {
                    record: i,
                    positive,
                });
            }
        }
        out
    }

    /// Label samples within the day range `(from, to]` only — used by the
    /// 1-month replacing update strategy of §4.5.
    pub fn label_range(&self, ds: &Dataset, from: u16, to: u16) -> Vec<Labeled> {
        self.label_dataset(ds, to)
            .into_iter()
            .filter(|l| ds.records[l.record].day > from)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::N_FEATURES;

    fn rec(disk_id: u32, day: u16) -> DiskDay {
        DiskDay {
            disk_id,
            day,
            features: vec![0.0; N_FEATURES],
        }
    }

    fn failed(last_day: u16) -> DiskInfo {
        DiskInfo {
            disk_id: 0,
            install_day: 0,
            last_day,
            failed: true,
        }
    }

    fn good(last_day: u16) -> DiskInfo {
        DiskInfo {
            disk_id: 0,
            install_day: 0,
            last_day,
            failed: false,
        }
    }

    #[test]
    fn failed_disk_window_is_positive() {
        let p = LabelPolicy::default();
        let info = failed(100);
        // Days 94..=100 are within 7 days of failure.
        assert_eq!(p.label(&rec(0, 94), &info, 200), Some(true));
        assert_eq!(p.label(&rec(0, 100), &info, 200), Some(true));
        assert_eq!(p.label(&rec(0, 93), &info, 200), Some(false));
    }

    #[test]
    fn good_disk_recent_samples_are_unlabeled() {
        let p = LabelPolicy::default();
        let info = good(300);
        assert_eq!(p.label(&rec(0, 200), &info, 200), None, "too fresh");
        assert_eq!(p.label(&rec(0, 194), &info, 200), None, "inside window");
        assert_eq!(p.label(&rec(0, 193), &info, 200), Some(false));
    }

    #[test]
    fn future_samples_are_invisible() {
        let p = LabelPolicy::default();
        assert_eq!(p.label(&rec(0, 201), &good(300), 200), None);
    }

    #[test]
    fn disk_failing_after_cutoff_is_treated_as_operating() {
        let p = LabelPolicy::default();
        let info = failed(210); // fails in the future
                                // At cutoff 200 this disk looks healthy; its day-198 sample is
                                // unlabeled, its day-190 sample is (noisily) negative.
        assert_eq!(p.label(&rec(0, 198), &info, 200), None);
        assert_eq!(p.label(&rec(0, 190), &info, 200), Some(false));
        // Once the failure is observed the same samples become positive.
        assert_eq!(p.label(&rec(0, 204), &info, 250), Some(true));
    }

    #[test]
    fn label_dataset_counts() {
        let p = LabelPolicy::default();
        let mut ds = Dataset {
            model: "T".into(),
            duration_days: 50,
            records: Vec::new(),
            disks: vec![
                DiskInfo {
                    disk_id: 0,
                    install_day: 0,
                    last_day: 20,
                    failed: true,
                },
                DiskInfo {
                    disk_id: 1,
                    install_day: 0,
                    last_day: 50,
                    failed: false,
                },
            ],
        };
        for day in 0..=50u16 {
            if day <= 20 {
                ds.records.push(rec(0, day));
            }
            let mut r = rec(1, day);
            r.disk_id = 1;
            ds.records.push(r);
        }
        ds.records.sort_by_key(|r| (r.day, r.disk_id));
        let labels = p.label_dataset(&ds, 50);
        let pos = labels.iter().filter(|l| l.positive).count();
        // Failed disk: days 14..=20 positive = 7 samples.
        assert_eq!(pos, 7);
        // Good disk: days 0..=43 negative (44), days 44..=50 unlabeled;
        // failed disk days 0..=13 negative (14).
        assert_eq!(labels.len() - pos, 44 + 14);
    }

    #[test]
    fn label_range_excludes_older_samples() {
        let p = LabelPolicy::default();
        let ds = Dataset {
            model: "T".into(),
            duration_days: 100,
            records: (0..=100u16).map(|d| rec(0, d)).collect(),
            disks: vec![DiskInfo {
                disk_id: 0,
                install_day: 0,
                last_day: 100,
                failed: false,
            }],
        };
        let labels = p.label_range(&ds, 60, 90);
        assert!(labels
            .iter()
            .all(|l| ds.records[l.record].day > 60 && ds.records[l.record].day <= 83));
        assert!(!labels.is_empty());
    }
}
