//! SMART data substrate for `orfpred`.
//!
//! The paper evaluates on the public Backblaze SMART logs (datasets "STA" =
//! ST4000DM000 and "STB" = ST3000DM001, Table 1). That data cannot be
//! shipped here, so this crate provides two interchangeable sources:
//!
//! 1. [`gen::FleetSim`] — a seeded, day-stepped **fleet simulator** that
//!    emits daily SMART snapshots with the Backblaze schema (24 attributes ×
//!    {normalized, raw} = 48 candidate features), failure phenomenology
//!    matching published analyses of the same data (symptom ramps in the
//!    reallocated/pending/uncorrectable counters, plus a fraction of sudden
//!    failures with no SMART signature), and the *mechanistic* distribution
//!    drift (fleet aging, batch turnover, environment drift) that causes the
//!    "model aging" problem the paper studies.
//! 2. [`csv`] — a reader/writer for genuine Backblaze daily CSVs, so the
//!    real data drops into every experiment unchanged.
//!
//! On top of either source it implements the paper's data plumbing:
//! offline labelling with the 7-day prediction window (§4.4), min–max
//! feature scaling (Eq. 5), and Wilcoxon rank-sum feature selection (§4.2).

#![warn(missing_docs)]

pub mod attrs;
pub mod csv;
pub mod drift;
pub mod gen;
pub mod label;
pub mod record;
pub mod scale;
pub mod schema;
pub mod select;
pub mod summary;
pub mod window;

pub use attrs::{AttrId, FeatureKind, ATTRIBUTES, N_ATTRIBUTES, N_FEATURES};
pub use gen::{FleetConfig, FleetEvent, FleetSim, ScalePreset};
pub use label::{LabelPolicy, Labeled};
pub use record::{Dataset, DiskDay, DiskInfo};
pub use scale::MinMaxScaler;
pub use schema::{AttrSpec, ColumnRole, DerivedKind, DerivedPlan, DomainSchema};
pub use window::WindowStage;
