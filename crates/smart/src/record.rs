//! Core record types: a daily SMART snapshot, per-disk metadata, and the
//! in-memory [`Dataset`] container used by the offline baselines and the
//! evaluation harnesses.

use serde::{Deserialize, Serialize};

/// One daily telemetry snapshot of one device (for the SMART domain, a row
/// of the Backblaze daily CSV).
///
/// `features` holds the unscaled values in the layout computed by the
/// domain's [`crate::schema::DomainSchema`]: even base columns are
/// (vendor-)normalized values, odd base columns raw values, followed by any
/// derived window columns. Row width is a runtime property of the domain —
/// the SMART schema yields the same 48 columns the old compile-time layout
/// hard-wired.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DiskDay {
    /// Dense disk identifier (index into [`Dataset::disks`]).
    pub disk_id: u32,
    /// Days since the start of the observation window.
    pub day: u16,
    /// Unscaled candidate feature values.
    pub features: Vec<f32>,
}

/// Per-disk metadata: observation bounds and final status.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskInfo {
    /// Dense disk identifier.
    pub disk_id: u32,
    /// First day the disk reports data.
    pub install_day: u16,
    /// Last day the disk reports data (failure day for failed disks,
    /// end of observation for survivors).
    pub last_day: u16,
    /// Whether the disk failed on `last_day` (survivors are censored).
    pub failed: bool,
}

impl DiskInfo {
    /// Number of days the disk reports data.
    pub fn observed_days(&self) -> u32 {
        u32::from(self.last_day) - u32::from(self.install_day) + 1
    }
}

/// An in-memory dataset: chronologically ordered snapshots plus per-disk
/// metadata. Produced by [`crate::gen::FleetSim::collect`] or
/// [`crate::csv::read_dataset`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// Disk model name (e.g. `"ST4000DM000"`).
    pub model: String,
    /// Length of the observation window in days.
    pub duration_days: u16,
    /// Snapshots ordered by `(day, disk_id)`.
    pub records: Vec<DiskDay>,
    /// Metadata indexed by `disk_id`.
    pub disks: Vec<DiskInfo>,
}

impl Dataset {
    /// Number of good (surviving) disks.
    pub fn n_good(&self) -> usize {
        self.disks.iter().filter(|d| !d.failed).count()
    }

    /// Number of failed disks.
    pub fn n_failed(&self) -> usize {
        self.disks.iter().filter(|d| d.failed).count()
    }

    /// Iterate over records of a single disk.
    ///
    /// Records are scattered through the chronological stream, so this scans;
    /// use [`Dataset::records_by_disk`] when visiting many disks.
    pub fn disk_records(&self, disk_id: u32) -> impl Iterator<Item = &DiskDay> {
        self.records.iter().filter(move |r| r.disk_id == disk_id)
    }

    /// Index of record positions grouped per disk (one `Vec<usize>` of
    /// positions into `records` per disk, each chronologically sorted).
    pub fn records_by_disk(&self) -> Vec<Vec<usize>> {
        let mut idx = vec![Vec::new(); self.disks.len()];
        for (pos, rec) in self.records.iter().enumerate() {
            idx[rec.disk_id as usize].push(pos);
        }
        idx
    }

    /// Verify structural invariants; used by tests and the CSV loader.
    ///
    /// Checks chronological ordering, disk-id bounds, and agreement between
    /// record days and per-disk observation windows.
    pub fn validate(&self) -> Result<(), String> {
        for (i, d) in self.disks.iter().enumerate() {
            if d.disk_id as usize != i {
                return Err(format!("disk {i} has mismatched id {}", d.disk_id));
            }
            if d.install_day > d.last_day {
                return Err(format!("disk {i} installs after its last day"));
            }
            if d.last_day > self.duration_days {
                return Err(format!("disk {i} outlives the dataset"));
            }
        }
        let mut prev = (0u16, 0u32);
        let width = self.records.first().map(|r| r.features.len());
        for (pos, r) in self.records.iter().enumerate() {
            let key = (r.day, r.disk_id);
            if pos > 0 && key <= prev {
                return Err(format!("records not strictly ordered at {pos}"));
            }
            if Some(r.features.len()) != width {
                return Err(format!(
                    "record {pos} has {} features, dataset rows have {}",
                    r.features.len(),
                    width.unwrap_or(0)
                ));
            }
            prev = key;
            let info = self
                .disks
                .get(r.disk_id as usize)
                .ok_or_else(|| format!("record {pos} references unknown disk {}", r.disk_id))?;
            if r.day < info.install_day || r.day > info.last_day {
                return Err(format!(
                    "record {pos}: day {} outside disk {} window [{}, {}]",
                    r.day, r.disk_id, info.install_day, info.last_day
                ));
            }
        }
        Ok(())
    }

    /// Total number of snapshots.
    pub fn n_records(&self) -> usize {
        self.records.len()
    }

    /// Feature-row width (0 for an empty dataset). [`validate`] pins every
    /// row to this width.
    ///
    /// [`validate`]: Dataset::validate
    pub fn n_feature_columns(&self) -> usize {
        self.records.first().map_or(0, |r| r.features.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let mk = |disk_id, day| DiskDay {
            disk_id,
            day,
            features: vec![0.0; crate::attrs::N_FEATURES],
        };
        Dataset {
            model: "T".into(),
            duration_days: 10,
            records: vec![mk(0, 0), mk(1, 0), mk(0, 1), mk(1, 1), mk(1, 2)],
            disks: vec![
                DiskInfo {
                    disk_id: 0,
                    install_day: 0,
                    last_day: 1,
                    failed: true,
                },
                DiskInfo {
                    disk_id: 1,
                    install_day: 0,
                    last_day: 2,
                    failed: false,
                },
            ],
        }
    }

    #[test]
    fn counts_and_validation() {
        let d = tiny();
        assert_eq!(d.n_good(), 1);
        assert_eq!(d.n_failed(), 1);
        assert_eq!(d.n_records(), 5);
        d.validate().unwrap();
    }

    #[test]
    fn validate_rejects_disorder() {
        let mut d = tiny();
        d.records.swap(0, 2);
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_window_record() {
        let mut d = tiny();
        d.records[4].day = 9; // disk 1 only lives to day 2
        assert!(d.validate().is_err());
    }

    #[test]
    fn records_by_disk_partitions_chronologically() {
        let d = tiny();
        let idx = d.records_by_disk();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx[0].len(), 2);
        assert_eq!(idx[1].len(), 3);
        for per_disk in &idx {
            assert!(per_disk
                .windows(2)
                .all(|w| d.records[w[0]].day < d.records[w[1]].day));
        }
    }

    #[test]
    fn observed_days_is_inclusive() {
        let info = DiskInfo {
            disk_id: 0,
            install_day: 3,
            last_day: 5,
            failed: false,
        };
        assert_eq!(info.observed_days(), 3);
    }
}
