//! Dataset summary statistics: the "A Look at the Field Data" numbers
//! (§4.1) plus the reliability curves any fleet operator wants — failure
//! hazard by disk age, population growth by month, per-class sample counts,
//! and attribute quantiles.

use crate::attrs::feature_name;
use crate::label::LabelPolicy;
use crate::record::Dataset;
use orfpred_util::stats::percentile_sorted;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of one dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Disk model string.
    pub model: String,
    /// Good / failed disk counts.
    pub n_good: usize,
    /// Number of failed disks.
    pub n_failed: usize,
    /// Total daily snapshots.
    pub n_samples: usize,
    /// Positive samples under the 7-day labelling rule.
    pub n_positive: usize,
    /// Negative samples under the 7-day labelling rule.
    pub n_negative: usize,
    /// negative:positive imbalance ratio.
    pub imbalance: f64,
    /// Active disks at the start of each month.
    pub population_by_month: Vec<usize>,
    /// Failures per month.
    pub failures_by_month: Vec<usize>,
    /// Empirical failure hazard per 90-day age bucket
    /// (failures / disk-days at that age, scaled to annualised %).
    pub hazard_by_age_bucket: Vec<f64>,
}

/// Compute the summary (single pass over records plus disk metadata).
pub fn summarize(ds: &Dataset, month_days: u16) -> DatasetSummary {
    let n_months = (usize::from(ds.duration_days) + usize::from(month_days) - 1)
        / usize::from(month_days).max(1);
    let mut population_by_month = vec![0usize; n_months.max(1)];
    let mut failures_by_month = vec![0usize; n_months.max(1)];
    const BUCKET: u32 = 90;
    let max_age = ds
        .disks
        .iter()
        .map(|d| d.observed_days())
        .max()
        .unwrap_or(0);
    let n_buckets = (max_age / BUCKET + 1) as usize;
    let mut disk_days = vec![0u64; n_buckets];
    let mut failures_at_age = vec![0u64; n_buckets];

    for d in &ds.disks {
        for (m, pop) in population_by_month.iter_mut().enumerate() {
            let day = (m as u16) * month_days;
            if d.install_day <= day && day <= d.last_day {
                *pop += 1;
            }
        }
        if d.failed {
            let m = usize::from(d.last_day / month_days).min(n_months.saturating_sub(1));
            failures_by_month[m] += 1;
            let age = d.observed_days();
            failures_at_age[(age / BUCKET) as usize] += 1;
        }
        let age = d.observed_days();
        for (b, dd) in disk_days
            .iter_mut()
            .enumerate()
            .take((age / BUCKET) as usize + 1)
        {
            let days_in_bucket = age.min((b as u32 + 1) * BUCKET) - (b as u32) * BUCKET;
            *dd += u64::from(days_in_bucket);
        }
    }
    let hazard_by_age_bucket: Vec<f64> = disk_days
        .iter()
        .zip(&failures_at_age)
        .map(|(&dd, &f)| {
            if dd == 0 {
                0.0
            } else {
                // Annualised failure rate in percent.
                f as f64 / dd as f64 * 365.0 * 100.0
            }
        })
        .collect();

    let labels = LabelPolicy::default().label_dataset(ds, ds.duration_days);
    let n_positive = labels.iter().filter(|l| l.positive).count();
    let n_negative = labels.len() - n_positive;
    DatasetSummary {
        model: ds.model.clone(),
        n_good: ds.n_good(),
        n_failed: ds.n_failed(),
        n_samples: ds.n_records(),
        n_positive,
        n_negative,
        imbalance: if n_positive > 0 {
            n_negative as f64 / n_positive as f64
        } else {
            f64::INFINITY
        },
        population_by_month,
        failures_by_month,
        hazard_by_age_bucket,
    }
}

/// Quantiles of one feature over (a sample of) the dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeatureQuantiles {
    /// Feature column.
    pub feature: usize,
    /// Human-readable name.
    pub name: String,
    /// (q01, q25, median, q75, q99, max).
    pub quantiles: [f64; 6],
}

/// Per-feature quantiles over every record (or a cap of them).
pub fn feature_quantiles(ds: &Dataset, cols: &[usize], cap: usize) -> Vec<FeatureQuantiles> {
    let stride = (ds.records.len() / cap.max(1)).max(1);
    cols.iter()
        .map(|&feature| {
            let mut vals: Vec<f64> = ds
                .records
                .iter()
                .step_by(stride)
                .map(|r| f64::from(r.features[feature]))
                .collect();
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let q = |p: f64| {
                if vals.is_empty() {
                    f64::NAN
                } else {
                    percentile_sorted(&vals, p)
                }
            };
            FeatureQuantiles {
                feature,
                name: feature_name(feature),
                quantiles: [q(0.01), q(0.25), q(0.5), q(0.75), q(0.99), q(1.0)],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{FleetConfig, FleetSim, ScalePreset};

    fn dataset() -> Dataset {
        let mut cfg = FleetConfig::sta(ScalePreset::Tiny, 8);
        cfg.n_good = 70;
        cfg.n_failed = 12;
        cfg.duration_days = 300;
        FleetSim::collect(&cfg)
    }

    #[test]
    fn summary_counts_are_consistent() {
        let ds = dataset();
        let s = summarize(&ds, 30);
        assert_eq!(s.n_good, 70);
        assert_eq!(s.n_failed, 12);
        assert_eq!(s.n_samples, ds.n_records());
        assert_eq!(s.failures_by_month.iter().sum::<usize>(), 12);
        assert!(s.imbalance > 50.0, "imbalance {}", s.imbalance);
        // Positives: ≤ 7 per failed disk.
        assert!(s.n_positive <= 12 * 7);
        assert!(s.n_positive >= 12, "each failed disk has ≥1 positive");
        // Fleet grows (installs over time).
        assert!(
            s.population_by_month.last().unwrap() >= s.population_by_month.first().unwrap(),
            "{:?}",
            s.population_by_month
        );
    }

    #[test]
    fn hazard_buckets_cover_all_failures() {
        let ds = dataset();
        let s = summarize(&ds, 30);
        assert!(!s.hazard_by_age_bucket.is_empty());
        assert!(s.hazard_by_age_bucket.iter().all(|&h| h >= 0.0));
        // Total annualised hazard should be in a plausible range given
        // 12/82 disks fail within 300 days.
        let mean_hazard =
            s.hazard_by_age_bucket.iter().sum::<f64>() / s.hazard_by_age_bucket.len() as f64;
        assert!(
            (1.0..100.0).contains(&mean_hazard),
            "mean annualised hazard {mean_hazard}%"
        );
    }

    #[test]
    fn quantiles_are_monotone() {
        let ds = dataset();
        let cols = crate::attrs::table2_feature_columns();
        for fq in feature_quantiles(&ds, &cols, 10_000) {
            for w in fq.quantiles.windows(2) {
                assert!(w[0] <= w[1], "{}: {:?}", fq.name, fq.quantiles);
            }
        }
    }

    #[test]
    fn empty_dataset_summary_is_safe() {
        let ds = Dataset {
            model: "T".into(),
            duration_days: 60,
            records: Vec::new(),
            disks: Vec::new(),
        };
        let s = summarize(&ds, 30);
        assert_eq!(s.n_samples, 0);
        assert!(s.imbalance.is_infinite());
    }
}
