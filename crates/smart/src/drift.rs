//! Distribution-drift diagnostics — the paper's §1 motivation experiment.
//!
//! The root cause of model aging is that "the sequentially collected data
//! will gradually change the underlying distribution of cumulative SMART
//! attributes". This module measures exactly that on any [`Dataset`]:
//! per-feature monthly means over the healthy population, plus a Wilcoxon
//! rank-sum comparison of an early window against a late window. Cumulative
//! attributes (Power-On Hours, Load Cycle Count, …) show strong drift; the
//! instantaneous ones stay put.

use crate::attrs::{feature_name, ATTRIBUTES};
use crate::record::Dataset;
use crate::select::rank_sum_test;
use serde::{Deserialize, Serialize};

/// Drift summary for one feature column.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeatureDrift {
    /// Feature column.
    pub feature: usize,
    /// Human-readable name.
    pub name: String,
    /// Whether the underlying attribute is cumulative.
    pub cumulative: bool,
    /// Mean over healthy-disk samples, per month (NaN = no samples).
    pub monthly_mean: Vec<f64>,
    /// |z| of the rank-sum test between the first and last month's healthy
    /// samples (bigger = stronger distribution shift).
    pub shift_z: f64,
}

/// Drift report over a feature set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DriftReport {
    /// 1-based month indices covered.
    pub months: Vec<usize>,
    /// Per-feature drift summaries, sorted by descending `shift_z`.
    pub features: Vec<FeatureDrift>,
}

/// Measure drift of `cols` over the healthy population of `ds`.
///
/// Samples within the final week of each disk are excluded (their labels
/// are unknown/positive); per-month samples are capped at `cap` per feature
/// to bound the rank-sum cost.
pub fn measure_drift(ds: &Dataset, cols: &[usize], month_days: u16, cap: usize) -> DriftReport {
    assert!(month_days > 0);
    let n_months = usize::from(ds.duration_days).div_ceil(usize::from(month_days));
    let months: Vec<usize> = (1..=n_months).collect();

    // Gather healthy samples per month (shared across features).
    let mut per_month: Vec<Vec<&[f32]>> = vec![Vec::new(); n_months];
    for rec in &ds.records {
        let info = &ds.disks[rec.disk_id as usize];
        if info.failed || rec.day + 7 > info.last_day {
            continue;
        }
        let m = usize::from(rec.day / month_days).min(n_months - 1);
        if per_month[m].len() < cap {
            per_month[m].push(rec.features.as_slice());
        }
    }

    let mut features: Vec<FeatureDrift> = cols
        .iter()
        .map(|&feature| {
            let monthly_mean: Vec<f64> = per_month
                .iter()
                .map(|rows| {
                    if rows.is_empty() {
                        f64::NAN
                    } else {
                        rows.iter().map(|r| f64::from(r[feature])).sum::<f64>() / rows.len() as f64
                    }
                })
                .collect();
            let first = per_month
                .iter()
                .find(|r| !r.is_empty())
                .map(|rows| rows.iter().map(|r| r[feature]).collect::<Vec<f32>>())
                .unwrap_or_default();
            let last = per_month
                .iter()
                .rev()
                .find(|r| !r.is_empty())
                .map(|rows| rows.iter().map(|r| r[feature]).collect::<Vec<f32>>())
                .unwrap_or_default();
            let shift_z = rank_sum_test(&first, &last).z.abs();
            FeatureDrift {
                feature,
                name: feature_name(feature),
                cumulative: ATTRIBUTES[feature / 2].cumulative,
                monthly_mean,
                shift_z,
            }
        })
        .collect();
    features.sort_by(|a, b| b.shift_z.partial_cmp(&a.shift_z).unwrap());
    DriftReport { months, features }
}

impl DriftReport {
    /// Render the strongest-drifting features as a text table.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::from(
            "Distribution drift of healthy-population SMART features\n\
             (rank-sum |z| between first and last month; paper §1: cumulative\n\
             attributes drift and age offline models)\n",
        );
        out.push_str(&format!(
            "{:>26} {:>11} {:>9} {:>12} {:>12}\n",
            "feature", "cumulative", "|z|", "mean(first)", "mean(last)"
        ));
        for f in self.features.iter().take(top) {
            let first = f
                .monthly_mean
                .iter()
                .copied()
                .find(|v| !v.is_nan())
                .unwrap_or(f64::NAN);
            let last = f
                .monthly_mean
                .iter()
                .rev()
                .copied()
                .find(|v| !v.is_nan())
                .unwrap_or(f64::NAN);
            out.push_str(&format!(
                "{:>26} {:>11} {:>9.1} {:>12.1} {:>12.1}\n",
                f.name,
                if f.cumulative { "yes" } else { "no" },
                f.shift_z,
                first,
                last
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{feature_index, FeatureKind};
    use crate::gen::{FleetConfig, FleetSim, ScalePreset};

    #[test]
    fn cumulative_attributes_drift_more_than_instantaneous_ones() {
        let mut cfg = FleetConfig::sta(ScalePreset::Tiny, 5);
        cfg.n_good = 80;
        cfg.n_failed = 8;
        cfg.duration_days = 360;
        let ds = FleetSim::collect(&cfg);
        let poh = feature_index(9, FeatureKind::Raw).unwrap();
        let temp = feature_index(194, FeatureKind::Raw).unwrap();
        let report = measure_drift(&ds, &[poh, temp], 30, 2_000);
        let z = |col: usize| {
            report
                .features
                .iter()
                .find(|f| f.feature == col)
                .unwrap()
                .shift_z
        };
        assert!(
            z(poh) > 5.0 * z(temp).max(1.0),
            "POH drift {} should dwarf temperature drift {}",
            z(poh),
            z(temp)
        );
        // Monthly means of POH must be (weakly) increasing.
        let poh_means: Vec<f64> = report
            .features
            .iter()
            .find(|f| f.feature == poh)
            .unwrap()
            .monthly_mean
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .collect();
        assert!(poh_means.len() >= 10);
        // Fleet growth can dilute the mean (new young disks), so check the
        // overall trend, not per-step monotonicity.
        assert!(
            poh_means.last().unwrap() > poh_means.first().unwrap(),
            "POH population mean must rise: {poh_means:?}"
        );
        // Rendering mentions the drifting feature.
        assert!(report.render(5).contains("smart_9_raw"));
    }

    #[test]
    fn drift_report_handles_empty_months_gracefully() {
        let ds = Dataset {
            model: "T".into(),
            duration_days: 90,
            records: Vec::new(),
            disks: Vec::new(),
        };
        let report = measure_drift(&ds, &[0, 1], 30, 100);
        assert_eq!(report.months.len(), 3);
        for f in &report.features {
            assert!(f.monthly_mean.iter().all(|v| v.is_nan()));
            assert_eq!(f.shift_z, 0.0);
        }
    }
}
