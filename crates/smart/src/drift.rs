//! Distribution-drift diagnostics — the paper's §1 motivation experiment.
//!
//! The root cause of model aging is that "the sequentially collected data
//! will gradually change the underlying distribution of cumulative SMART
//! attributes". This module measures exactly that on any [`Dataset`]:
//! per-feature monthly means over the healthy population, plus a Wilcoxon
//! rank-sum comparison of an early window against a late window. Cumulative
//! attributes (Power-On Hours, Load Cycle Count, …) show strong drift; the
//! instantaneous ones stay put.

use crate::record::Dataset;
use crate::schema::DomainSchema;
use crate::select::rank_sum_test;
use serde::{Deserialize, Serialize};

/// Drift summary for one feature column.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeatureDrift {
    /// Feature column.
    pub feature: usize,
    /// Human-readable name.
    pub name: String,
    /// Whether the underlying attribute is cumulative.
    pub cumulative: bool,
    /// Mean over healthy-disk samples, per month (NaN = no samples).
    pub monthly_mean: Vec<f64>,
    /// |z| of the rank-sum test between the first and last month's healthy
    /// samples (bigger = stronger distribution shift).
    pub shift_z: f64,
}

/// Drift report over a feature set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DriftReport {
    /// 1-based month indices covered.
    pub months: Vec<usize>,
    /// Per-feature drift summaries, sorted by descending `shift_z`.
    pub features: Vec<FeatureDrift>,
}

/// Measure drift of `cols` over the healthy population of `ds`.
///
/// Column names and cumulative flags come from `schema`, so the report
/// cannot silently misalign on a non-SMART domain. Samples within the final
/// week of each disk are excluded (their labels are unknown/positive);
/// per-month samples are capped at `cap` per feature to bound the rank-sum
/// cost.
pub fn measure_drift(
    ds: &Dataset,
    schema: &DomainSchema,
    cols: &[usize],
    month_days: u16,
    cap: usize,
) -> DriftReport {
    assert!(month_days > 0);
    let n_months = usize::from(ds.duration_days).div_ceil(usize::from(month_days));
    let months: Vec<usize> = (1..=n_months).collect();

    // Gather healthy samples per month (shared across features).
    let mut per_month: Vec<Vec<&[f32]>> = vec![Vec::new(); n_months];
    for rec in &ds.records {
        let info = &ds.disks[rec.disk_id as usize];
        if info.failed || rec.day + 7 > info.last_day {
            continue;
        }
        let m = usize::from(rec.day / month_days).min(n_months - 1);
        if per_month[m].len() < cap {
            per_month[m].push(rec.features.as_slice());
        }
    }

    // Earliest and latest month with any healthy samples. A dataset whose
    // samples fall in a single (or no) month has no early-vs-late contrast,
    // so its shift_z is defined as 0.0 rather than a degenerate self-test.
    let first_m = per_month.iter().position(|r| !r.is_empty());
    let last_m = per_month.iter().rposition(|r| !r.is_empty());

    let mut features: Vec<FeatureDrift> = cols
        .iter()
        .map(|&feature| {
            // Per-month mean over *finite* values only; a month with no
            // finite observations (empty or all-NaN sensor) reports NaN.
            let monthly_mean: Vec<f64> = per_month
                .iter()
                .map(|rows| {
                    let vals = finite_column(rows, feature);
                    if vals.is_empty() {
                        f64::NAN
                    } else {
                        vals.iter().map(|&v| f64::from(v)).sum::<f64>() / vals.len() as f64
                    }
                })
                .collect();
            let shift_z = match (first_m, last_m) {
                (Some(a), Some(b)) if a < b => {
                    // Non-finite values are excluded before the rank-sum
                    // test (it is undefined — and panics — on NaN input);
                    // an all-NaN column degenerates to an empty window and
                    // rank_sum_test reports z = 0.
                    let first = finite_column(&per_month[a], feature);
                    let last = finite_column(&per_month[b], feature);
                    let z = rank_sum_test(&first, &last).z.abs();
                    if z.is_finite() {
                        z
                    } else {
                        0.0
                    }
                }
                _ => 0.0,
            };
            FeatureDrift {
                feature,
                name: schema.feature_name(feature),
                cumulative: schema.column_cumulative(feature),
                monthly_mean,
                shift_z,
            }
        })
        .collect();
    features.sort_by(|a, b| b.shift_z.total_cmp(&a.shift_z));
    DriftReport { months, features }
}

/// The finite values of column `feature` across `rows`.
fn finite_column(rows: &[&[f32]], feature: usize) -> Vec<f32> {
    rows.iter()
        .filter_map(|r| r.get(feature).copied())
        .filter(|v| v.is_finite())
        .collect()
}

impl DriftReport {
    /// Render the strongest-drifting features as a text table.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::from(
            "Distribution drift of healthy-population SMART features\n\
             (rank-sum |z| between first and last month; paper §1: cumulative\n\
             attributes drift and age offline models)\n",
        );
        out.push_str(&format!(
            "{:>26} {:>11} {:>9} {:>12} {:>12}\n",
            "feature", "cumulative", "|z|", "mean(first)", "mean(last)"
        ));
        for f in self.features.iter().take(top) {
            let first = f
                .monthly_mean
                .iter()
                .copied()
                .find(|v| !v.is_nan())
                .unwrap_or(f64::NAN);
            let last = f
                .monthly_mean
                .iter()
                .rev()
                .copied()
                .find(|v| !v.is_nan())
                .unwrap_or(f64::NAN);
            out.push_str(&format!(
                "{:>26} {:>11} {:>9.1} {:>12.1} {:>12.1}\n",
                f.name,
                if f.cumulative { "yes" } else { "no" },
                f.shift_z,
                first,
                last
            ));
        }
        out
    }
}

/// Configuration for the online [`DriftDetector`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriftDetectorConfig {
    /// Feature columns monitored for shift (raw, pre-scaling values).
    pub cols: Vec<usize>,
    /// Samples per comparison window (reference and current).
    pub window: usize,
    /// Rank-sum |z| at or above which a shift is declared.
    pub z_threshold: f64,
    /// Run the comparison every this many updates once the current window
    /// is full (`0` disables checking entirely).
    pub check_every: u64,
}

impl DriftDetectorConfig {
    /// Monitor `cols` with the default window/threshold/cadence.
    pub fn new(cols: Vec<usize>) -> Self {
        Self {
            cols,
            window: 256,
            z_threshold: 6.0,
            check_every: 64,
        }
    }
}

/// A detected distribution shift.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriftEvent {
    /// Feature column with the strongest shift.
    pub feature: usize,
    /// Rank-sum |z| of that column's reference-vs-current comparison.
    pub z: f64,
    /// Detector update count at which the shift fired.
    pub at_update: u64,
}

/// Streaming counterpart of [`measure_drift`]: a deterministic windowed
/// shift detector for the healthy population.
///
/// Feed it raw (pre-scaling) feature rows of samples known to be healthy —
/// in the online pipeline these are the labeller's *negative* releases,
/// the same population [`measure_drift`] samples offline. The first
/// `window` values per column become the frozen reference; later values
/// fill a sliding current window. Every `check_every` updates the detector
/// compares reference vs current per monitored column with the Wilcoxon
/// rank-sum test; if the strongest |z| reaches `z_threshold` it emits a
/// [`DriftEvent`] and re-baselines from scratch (both windows refill from
/// the post-shift stream), so one sustained shift fires once, not every
/// check.
///
/// Everything is ordered and serializable: the detector can be frozen into
/// a serve-engine checkpoint and resumed bit-exactly.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DriftDetector {
    cfg: DriftDetectorConfig,
    /// Per monitored column: the frozen reference window (filling first).
    reference: Vec<Vec<f32>>,
    /// Per monitored column: the sliding current window.
    current: Vec<std::collections::VecDeque<f32>>,
    updates: u64,
    shifts_detected: u64,
}

impl DriftDetector {
    /// Create a detector; windows start empty.
    pub fn new(cfg: &DriftDetectorConfig) -> Self {
        let n = cfg.cols.len();
        Self {
            cfg: cfg.clone(),
            reference: vec![Vec::new(); n],
            current: vec![std::collections::VecDeque::new(); n],
            updates: 0,
            shifts_detected: 0,
        }
    }

    /// The detector configuration.
    pub fn config(&self) -> &DriftDetectorConfig {
        &self.cfg
    }

    /// Total rows observed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Total shifts declared so far.
    pub fn shifts_detected(&self) -> u64 {
        self.shifts_detected
    }

    /// Observe one healthy raw feature row; returns a [`DriftEvent`] when
    /// this update's check declares a shift. Non-finite values are skipped
    /// (an all-NaN column simply never fills its windows).
    pub fn update(&mut self, row: &[f32]) -> Option<DriftEvent> {
        self.updates += 1;
        let window = self.cfg.window;
        for (k, &c) in self.cfg.cols.iter().enumerate() {
            let Some(v) = row.get(c).copied().filter(|v| v.is_finite()) else {
                continue;
            };
            let Some(reference) = self.reference.get_mut(k) else {
                continue;
            };
            if reference.len() < window {
                reference.push(v);
            } else if let Some(cur) = self.current.get_mut(k) {
                cur.push_back(v);
                if cur.len() > window {
                    cur.pop_front();
                }
            }
        }
        if self.cfg.check_every == 0 || !self.updates.is_multiple_of(self.cfg.check_every) {
            return None;
        }
        let mut best: Option<DriftEvent> = None;
        for (k, &feature) in self.cfg.cols.iter().enumerate() {
            let (Some(reference), Some(cur)) = (self.reference.get(k), self.current.get(k)) else {
                continue;
            };
            if reference.len() < window || cur.len() < window {
                continue;
            }
            let cur: Vec<f32> = cur.iter().copied().collect();
            let z = rank_sum_test(reference, &cur).z.abs();
            if z.is_finite() && z >= self.cfg.z_threshold && best.is_none_or(|b| z > b.z) {
                best = Some(DriftEvent {
                    feature,
                    z,
                    at_update: self.updates,
                });
            }
        }
        if best.is_some() {
            self.shifts_detected += 1;
            // Re-baseline from scratch: both windows refill from the
            // post-shift stream, so one sustained shift fires exactly once
            // (the window at fire time straddles the regime change and
            // would re-trigger if kept as the reference).
            for (reference, cur) in self.reference.iter_mut().zip(self.current.iter_mut()) {
                reference.clear();
                cur.clear();
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{feature_index, FeatureKind};
    use crate::gen::{FleetConfig, FleetSim, ScalePreset};
    use crate::record::DiskDay;
    use orfpred_util::Xoshiro256pp;

    #[test]
    fn cumulative_attributes_drift_more_than_instantaneous_ones() {
        let mut cfg = FleetConfig::sta(ScalePreset::Tiny, 5);
        cfg.n_good = 80;
        cfg.n_failed = 8;
        cfg.duration_days = 360;
        let ds = FleetSim::collect(&cfg);
        let poh = feature_index(9, FeatureKind::Raw).unwrap();
        let temp = feature_index(194, FeatureKind::Raw).unwrap();
        let report = measure_drift(&ds, &DomainSchema::smart(), &[poh, temp], 30, 2_000);
        let z = |col: usize| {
            report
                .features
                .iter()
                .find(|f| f.feature == col)
                .unwrap()
                .shift_z
        };
        assert!(
            z(poh) > 5.0 * z(temp).max(1.0),
            "POH drift {} should dwarf temperature drift {}",
            z(poh),
            z(temp)
        );
        // Monthly means of POH must be (weakly) increasing.
        let poh_means: Vec<f64> = report
            .features
            .iter()
            .find(|f| f.feature == poh)
            .unwrap()
            .monthly_mean
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .collect();
        assert!(poh_means.len() >= 10);
        // Fleet growth can dilute the mean (new young disks), so check the
        // overall trend, not per-step monotonicity.
        assert!(
            poh_means.last().unwrap() > poh_means.first().unwrap(),
            "POH population mean must rise: {poh_means:?}"
        );
        // Rendering mentions the drifting feature.
        assert!(report.render(5).contains("smart_9_raw"));
    }

    /// Hand-built dataset: `n_disks` healthy disks reporting daily for
    /// `days` days, constant features except column 0 = `col0(day)`.
    fn tiny_ds(n_disks: u32, days: u16, col0: impl Fn(u16) -> f32) -> Dataset {
        let mut records = Vec::new();
        let horizon = days + 60; // keep every record clear of the final week
        for day in 0..days {
            for disk_id in 0..n_disks {
                // Probe row sized by the schema, not a compile-time constant,
                // so this helper stays correct on any domain layout.
                let schema = DomainSchema::smart();
                let mut features = vec![1.0f32; schema.n_features()];
                features[0] = col0(day);
                records.push(DiskDay {
                    disk_id,
                    day,
                    features,
                });
            }
        }
        let disks = (0..n_disks)
            .map(|disk_id| crate::record::DiskInfo {
                disk_id,
                install_day: 0,
                last_day: horizon,
                failed: false,
            })
            .collect();
        Dataset {
            model: "T".into(),
            duration_days: horizon,
            records,
            disks,
        }
    }

    #[test]
    fn all_nan_feature_columns_do_not_panic_or_emit_nan_shift_z() {
        let ds = tiny_ds(6, 70, |_| f32::NAN);
        let report = measure_drift(&ds, &DomainSchema::smart(), &[0, 2], 30, 1_000);
        let f0 = report.features.iter().find(|f| f.feature == 0).unwrap();
        assert!(f0.shift_z.is_finite());
        assert_eq!(f0.shift_z, 0.0, "all-NaN column must report zero shift");
        assert!(f0.monthly_mean.iter().all(|v| v.is_nan()));
        // The finite column still gets finite means and a finite z.
        let f2 = report.features.iter().find(|f| f.feature == 2).unwrap();
        assert!(f2.monthly_mean.iter().take(2).all(|v| !v.is_nan()));
        assert!(f2.shift_z.is_finite());
        // Sorting with NaN-free total order must not have panicked (we got
        // here) and every reported z is finite.
        assert!(report.features.iter().all(|f| f.shift_z.is_finite()));
    }

    #[test]
    fn single_month_dataset_reports_zero_shift() {
        // 20 days of data — a single 30-day month. There is no early-vs-late
        // contrast, so shift_z must be exactly 0.0, not NaN or a self-test.
        let ds = tiny_ds(6, 20, f32::from);
        let report = measure_drift(&ds, &DomainSchema::smart(), &[0], 30, 1_000);
        assert_eq!(report.features[0].shift_z, 0.0);
        assert!(!report.features[0].monthly_mean[0].is_nan());
    }

    #[test]
    fn sparse_nan_values_are_excluded_from_windows() {
        // Column 0 drifts strongly but every third row is NaN; the test
        // must still run on the finite subset instead of panicking.
        let ds = {
            let mut ds = tiny_ds(6, 90, |day| f32::from(day) * 10.0);
            for (i, rec) in ds.records.iter_mut().enumerate() {
                if i % 3 == 0 {
                    rec.features[0] = f32::NAN;
                }
            }
            ds
        };
        let report = measure_drift(&ds, &DomainSchema::smart(), &[0], 30, 1_000);
        let f0 = &report.features[0];
        assert!(
            f0.shift_z > 3.0,
            "drift must still be detected: {}",
            f0.shift_z
        );
        // Months 1-3 hold the 90 days of data; later (empty) months are NaN.
        assert!(f0.monthly_mean.iter().take(3).all(|v| !v.is_nan()));
    }

    #[test]
    fn detector_fires_on_a_sustained_shift_then_rebaselines() {
        let cfg = DriftDetectorConfig {
            cols: vec![0],
            window: 128,
            z_threshold: 5.0,
            check_every: 32,
        };
        let mut det = DriftDetector::new(&cfg);
        let mut rng = Xoshiro256pp::seed_from_u64(41);
        let mut row = [0.0f32; 4];
        let mut events = Vec::new();
        for i in 0..2_000u32 {
            // Regime change at update 1000: mean jumps 0.5 → 5.0.
            let base = if i < 1_000 { 0.5 } else { 5.0 };
            row[0] = base + rng.next_f32() * 0.1;
            if let Some(ev) = det.update(&row) {
                events.push(ev);
            }
        }
        assert_eq!(events.len(), 1, "one sustained shift fires exactly once");
        assert_eq!(events[0].feature, 0);
        assert!(events[0].z >= 5.0);
        assert!(events[0].at_update > 1_000);
        assert_eq!(det.shifts_detected(), 1);
    }

    #[test]
    fn detector_is_quiet_on_a_stationary_stream_and_roundtrips() {
        let cfg = DriftDetectorConfig::new(vec![0, 1]);
        let mut det = DriftDetector::new(&cfg);
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..1_500 {
            let row = [rng.next_f32(), 3.0 + rng.next_f32(), f32::NAN];
            assert!(
                det.update(&row).is_none(),
                "stationary stream must not fire"
            );
        }
        // Serde roundtrip preserves windows and counters bit-exactly.
        let json = serde_json::to_string(&det).unwrap();
        let det2: DriftDetector = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&det2).unwrap(), json);
        assert_eq!(det2.updates(), det.updates());
    }

    #[test]
    fn drift_report_handles_empty_months_gracefully() {
        let ds = Dataset {
            model: "T".into(),
            duration_days: 90,
            records: Vec::new(),
            disks: Vec::new(),
        };
        let report = measure_drift(&ds, &DomainSchema::smart(), &[0, 1], 30, 100);
        assert_eq!(report.months.len(), 3);
        for f in &report.features {
            assert!(f.monthly_mean.iter().all(|v| v.is_nan()));
            assert_eq!(f.shift_z, 0.0);
        }
    }
}
