//! Deterministic sliding-window derived-feature stage.
//!
//! [`WindowStage`] extends each base telemetry row with the derived columns
//! a [`DomainSchema`]'s [`DerivedPlan`] names: per-attribute day-over-day
//! delta and rolling mean/std over the last `window_days` rows of the same
//! disk (including today). State is strictly **per disk**, updated in the
//! disk's chronological row order, which is what makes the stage safe to
//! run under the serve engine's ingest lock: every sharding of the fleet
//! sees each disk's rows in the same order, so N-shard ≡ serial
//! bit-exactness is preserved (the same argument as the prep stage,
//! DESIGN.md §13/§15).
//!
//! Determinism: all statistics are computed by fixed-order accumulation
//! (oldest history row to newest) in `f64`, rounded to `f32` once — no
//! iteration-order or associativity freedom anywhere. With an empty plan
//! the stage is a strict no-op (rows pass through untouched), the property
//! pinning the SMART domain to the pre-schema pipeline bit for bit.

use crate::schema::{DerivedPlan, DomainSchema};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Per-disk window history: the last `<= window_days` values of each
/// selected base column, oldest first.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct DiskWindow {
    /// One entry per retained day; each entry holds the selected base
    /// columns' values in plan order.
    rows: VecDeque<Vec<f32>>,
}

/// Incremental derived-feature computer. Serializable so it rides
/// checkpoints next to the prep state and survives crash recovery.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WindowStage {
    /// Base row width the stage expects.
    n_base: usize,
    /// The plan (columns + statistics + window length).
    plan: DerivedPlan,
    /// Per-disk history, keyed by disk id (BTreeMap: checkpoint-stable
    /// iteration order, same discipline as the labeller queues).
    disks: BTreeMap<u32, DiskWindow>,
}

impl WindowStage {
    /// Build the stage for a schema. With an empty derived plan the stage
    /// holds no state and [`extend`](Self::extend) is an exact no-op.
    pub fn new(schema: &DomainSchema) -> Self {
        WindowStage {
            n_base: schema.n_base_features(),
            plan: schema.derived.clone(),
            disks: BTreeMap::new(),
        }
    }

    /// True when the stage produces no derived columns.
    pub fn is_noop(&self) -> bool {
        self.plan.is_empty()
    }

    /// Base row width the stage expects.
    pub fn n_base(&self) -> usize {
        self.n_base
    }

    /// Output row width (base + derived).
    pub fn n_features(&self) -> usize {
        self.n_base + self.plan.n_derived()
    }

    /// Number of disks with live window state.
    pub fn n_tracked(&self) -> usize {
        self.disks.len()
    }

    /// Extend one base row in place with the plan's derived columns,
    /// updating the disk's window state. Rows must arrive per disk in
    /// chronological order (the same contract prep enforces upstream).
    pub fn extend(&mut self, disk_id: u32, row: &mut Vec<f32>) {
        if self.plan.is_empty() {
            return;
        }
        debug_assert_eq!(row.len(), self.n_base, "window stage fed a wrong-width row");
        let win = self.disks.entry(disk_id).or_default();
        let selected: Vec<f32> = self.plan.cols.iter().map(|&c| row[c]).collect();
        win.rows.push_back(selected);
        while win.rows.len() > usize::from(self.plan.window_days.max(1)) {
            win.rows.pop_front();
        }
        let n_hist = win.rows.len();
        row.reserve(self.plan.n_derived());
        for (k, _) in self.plan.cols.iter().enumerate() {
            let cur = f64::from(win.rows[n_hist - 1][k]);
            if self.plan.delta {
                let prev = if n_hist >= 2 {
                    f64::from(win.rows[n_hist - 2][k])
                } else {
                    cur
                };
                row.push((cur - prev) as f32);
            }
            if self.plan.mean || self.plan.std {
                // Fixed-order (oldest → newest) f64 accumulation: identical
                // on every shard layout and every replay.
                let mut sum = 0.0f64;
                for r in win.rows.iter() {
                    sum += f64::from(r[k]);
                }
                let mean = sum / n_hist as f64;
                if self.plan.mean {
                    row.push(mean as f32);
                }
                if self.plan.std {
                    let mut ss = 0.0f64;
                    for r in win.rows.iter() {
                        let d = f64::from(r[k]) - mean;
                        ss += d * d;
                    }
                    row.push((ss / n_hist as f64).max(0.0).sqrt() as f32);
                }
            }
        }
    }

    /// Drop a disk's window state (on failure or decommission).
    pub fn forget(&mut self, disk_id: u32) {
        if !self.plan.is_empty() {
            self.disks.remove(&disk_id);
        }
    }

    /// Extend a chronological `(day, disk_id)`-ordered record stream (a
    /// [`Dataset`]'s records) through a fresh pass of this stage. Because
    /// the stream visits each disk's rows in chronological order, this is
    /// bit-identical to feeding the same rows through [`WindowStage::extend`]
    /// online — the offline reference the eval harnesses use.
    ///
    /// [`Dataset`]: crate::record::Dataset
    pub fn extend_records(
        schema: &DomainSchema,
        records: &[crate::record::DiskDay],
    ) -> Vec<crate::record::DiskDay> {
        let mut stage = WindowStage::new(schema);
        records
            .iter()
            .map(|r| {
                let mut rec = r.clone();
                stage.extend(rec.disk_id, &mut rec.features);
                rec
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::DiskDay;

    fn windowed_schema() -> DomainSchema {
        let mut s = DomainSchema::mce();
        s.derived.cols = vec![1, 3];
        s.derived.window_days = 3;
        s
    }

    #[test]
    fn empty_plan_is_a_strict_noop() {
        let schema = DomainSchema::smart();
        let mut stage = WindowStage::new(&schema);
        assert!(stage.is_noop());
        let row_in: Vec<f32> = (0..schema.n_base_features()).map(|i| i as f32).collect();
        let mut row = row_in.clone();
        stage.extend(7, &mut row);
        assert_eq!(row, row_in);
        assert_eq!(stage.n_tracked(), 0);
        assert_eq!(stage.n_features(), schema.n_base_features());
    }

    #[test]
    fn delta_mean_std_match_direct_computation() {
        let schema = windowed_schema();
        let mut stage = WindowStage::new(&schema);
        let n_base = schema.n_base_features();
        let series = [2.0f32, 5.0, 11.0, 4.0];
        let mut last = Vec::new();
        for (day, &v) in series.iter().enumerate() {
            let mut row = vec![0.0f32; n_base];
            row[1] = v;
            row[3] = 10.0 * v;
            stage.extend(0, &mut row);
            assert_eq!(row.len(), n_base + 6);
            if day == 3 {
                last = row;
            }
        }
        // Day 3, window 3 → history [5, 11, 4] for col 1.
        let hist = [5.0f64, 11.0, 4.0];
        let mean = hist.iter().sum::<f64>() / 3.0;
        let var = hist.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 3.0;
        assert_eq!(last[n_base], (4.0 - 11.0) as f32); // delta
        assert_eq!(last[n_base + 1], mean as f32);
        assert_eq!(last[n_base + 2], var.sqrt() as f32);
        // Second selected column scales by 10.
        assert_eq!(last[n_base + 3], 10.0 * (4.0 - 11.0) as f32);
    }

    #[test]
    fn first_row_delta_is_zero_and_std_is_zero() {
        let schema = windowed_schema();
        let mut stage = WindowStage::new(&schema);
        let n_base = schema.n_base_features();
        let mut row = vec![1.0f32; n_base];
        row[1] = 42.0;
        stage.extend(3, &mut row);
        assert_eq!(row[n_base], 0.0);
        assert_eq!(row[n_base + 1], 42.0);
        assert_eq!(row[n_base + 2], 0.0);
    }

    #[test]
    fn per_disk_state_is_independent_and_forgettable() {
        let schema = windowed_schema();
        let mut stage = WindowStage::new(&schema);
        let n_base = schema.n_base_features();
        for disk in [0u32, 1] {
            let mut row = vec![0.0f32; n_base];
            row[1] = f32::from(disk as u8 + 1) * 100.0;
            stage.extend(disk, &mut row);
        }
        assert_eq!(stage.n_tracked(), 2);
        // Disk 1's second row deltas against its own history only.
        let mut row = vec![0.0f32; n_base];
        row[1] = 250.0;
        stage.extend(1, &mut row);
        assert_eq!(row[n_base], 50.0);
        stage.forget(1);
        assert_eq!(stage.n_tracked(), 1);
        // After forget, the next row starts fresh (delta 0).
        let mut row = vec![0.0f32; n_base];
        row[1] = 9.0;
        stage.extend(1, &mut row);
        assert_eq!(row[n_base], 0.0);
    }

    #[test]
    fn extend_records_matches_online_feeding() {
        let schema = windowed_schema();
        let n_base = schema.n_base_features();
        let mut records = Vec::new();
        for day in 0..6u16 {
            for disk in 0..3u32 {
                let mut features = vec![0.0f32; n_base];
                features[1] = (u32::from(day) * 7 + disk * 13) as f32;
                features[3] = (u32::from(day) + disk) as f32;
                records.push(DiskDay {
                    disk_id: disk,
                    day,
                    features,
                });
            }
        }
        let batch = WindowStage::extend_records(&schema, &records);
        let mut online = WindowStage::new(&schema);
        for (orig, ext) in records.iter().zip(&batch) {
            let mut row = orig.features.clone();
            online.extend(orig.disk_id, &mut row);
            let same = row
                .iter()
                .zip(ext.features.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "batch and online extension diverged");
        }
    }

    #[test]
    fn window_state_serde_round_trips() {
        let schema = windowed_schema();
        let mut stage = WindowStage::new(&schema);
        let n_base = schema.n_base_features();
        for day in 0..4u16 {
            let mut row = vec![0.0f32; n_base];
            row[1] = f32::from(day) * 3.0;
            stage.extend(5, &mut row);
        }
        let json = serde_json::to_string(&stage).unwrap();
        let mut back: WindowStage = serde_json::from_str(&json).unwrap();
        // Restored stage continues bit-identically.
        let mut a = vec![0.0f32; n_base];
        a[1] = 100.0;
        let mut b = a.clone();
        stage.extend(5, &mut a);
        back.extend(5, &mut b);
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
