//! Feature scaling (Eq. 5 of the paper) and column selection.
//!
//! [`MinMaxScaler`] bundles the two preprocessing steps every model needs:
//! pick the selected feature columns out of the 48-column snapshot and map
//! each to `[0, 1]` via `(x - min) / (max - min)`. Outputs are clamped so
//! unseen test values outside the training range stay in-bounds (a practical
//! necessity the paper's formula leaves implicit).
//!
//! [`OnlineMinMax`] is the streaming variant used by the online predictor:
//! bounds widen as data arrives, which keeps the transform well-defined from
//! the very first sample without peeking at future data.

use serde::{Deserialize, Serialize};

/// Offline min–max scaler over a fixed column subset.
///
/// ```
/// use orfpred_smart::scale::MinMaxScaler;
///
/// let rows: Vec<[f32; 3]> = vec![[0.0, 5.0, 9.9], [10.0, 7.0, 0.3]];
/// // Scale columns 0 and 1 only.
/// let scaler = MinMaxScaler::fit(rows.iter().map(|r| r.as_slice()), &[0, 1]);
/// assert_eq!(scaler.transform(&[5.0, 6.0, 123.0]), vec![0.5, 0.5]);
/// assert_eq!(scaler.transform(&[99.0, -4.0, 0.0]), vec![1.0, 0.0]); // clamped
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MinMaxScaler {
    cols: Vec<usize>,
    min: Vec<f32>,
    max: Vec<f32>,
    log1p: bool,
}

/// `ln(1 + max(x, 0))` — the variance-stabilising transform applied ahead
/// of min–max scaling when `log1p` is on. SMART raw counters are extremely
/// heavy-tailed (a dying disk reports thousands of reallocated sectors, a
/// healthy one units), and compressing them keeps the informative region
/// from collapsing into a sliver of `[0, 1]` — which matters for ORF's
/// uniform random thresholds and the SVM's RBF geometry. Monotone, so
/// exact-split learners (CART/RF) are unaffected.
#[inline]
fn log1p_pos(x: f32) -> f32 {
    x.max(0.0).ln_1p()
}

impl MinMaxScaler {
    /// Fit bounds for `cols` over the given rows.
    ///
    /// Panics if `rows` is empty or a column index is out of range.
    pub fn fit<'a, I>(rows: I, cols: &[usize]) -> Self
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        Self::fit_with(rows, cols, false)
    }

    /// Fit with the `log1p` pre-transform enabled.
    pub fn fit_log1p<'a, I>(rows: I, cols: &[usize]) -> Self
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        Self::fit_with(rows, cols, true)
    }

    fn fit_with<'a, I>(rows: I, cols: &[usize], log1p: bool) -> Self
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut min = vec![f32::INFINITY; cols.len()];
        let mut max = vec![f32::NEG_INFINITY; cols.len()];
        let mut any = false;
        for row in rows {
            any = true;
            for (j, &c) in cols.iter().enumerate() {
                let v = if log1p { log1p_pos(row[c]) } else { row[c] };
                if v < min[j] {
                    min[j] = v;
                }
                if v > max[j] {
                    max[j] = v;
                }
            }
        }
        assert!(any, "MinMaxScaler::fit requires at least one row");
        Self {
            cols: cols.to_vec(),
            min,
            max,
            log1p,
        }
    }

    /// Selected input columns.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Number of output features.
    pub fn n_outputs(&self) -> usize {
        self.cols.len()
    }

    /// Transform a full snapshot row into the scaled selected vector.
    pub fn transform(&self, row: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols.len()];
        self.transform_into(row, &mut out);
        out
    }

    /// Transform into a caller-provided buffer (no allocation).
    pub fn transform_into(&self, row: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), self.cols.len());
        for (j, &c) in self.cols.iter().enumerate() {
            let v = if self.log1p {
                log1p_pos(row[c])
            } else {
                row[c]
            };
            let span = self.max[j] - self.min[j];
            out[j] = if span > 0.0 {
                ((v - self.min[j]) / span).clamp(0.0, 1.0)
            } else {
                // Constant feature in training data: map everything to 0.
                0.0
            };
        }
    }

    /// Columnar transform: `input[c]` holds all rows of raw feature `c`;
    /// the result holds one scaled column per *selected* feature, in
    /// selection order. Each element goes through the exact expression
    /// [`Self::transform`] applies, so scoring a transposed batch is
    /// bit-identical to scaling row by row — the invariant the telemetry
    /// store's segment-replay path relies on.
    pub fn transform_columns(&self, input: &[&[f32]]) -> Vec<Vec<f32>> {
        let n = input.first().map_or(0, |c| c.len());
        self.cols
            .iter()
            .enumerate()
            .map(|(j, &c)| {
                let col = input[c];
                assert_eq!(col.len(), n, "ragged input columns");
                let span = self.max[j] - self.min[j];
                col.iter()
                    .map(|&x| {
                        let v = if self.log1p { log1p_pos(x) } else { x };
                        if span > 0.0 {
                            ((v - self.min[j]) / span).clamp(0.0, 1.0)
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

/// Streaming min–max scaler: bounds widen as samples arrive.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OnlineMinMax {
    cols: Vec<usize>,
    min: Vec<f32>,
    max: Vec<f32>,
    seen: u64,
    log1p: bool,
}

impl OnlineMinMax {
    /// New scaler over the given columns, with empty bounds.
    pub fn new(cols: &[usize]) -> Self {
        Self {
            min: vec![f32::INFINITY; cols.len()],
            max: vec![f32::NEG_INFINITY; cols.len()],
            cols: cols.to_vec(),
            seen: 0,
            log1p: false,
        }
    }

    /// New scaler with the `log1p` pre-transform enabled.
    pub fn new_log1p(cols: &[usize]) -> Self {
        Self {
            log1p: true,
            ..Self::new(cols)
        }
    }

    /// Widen bounds with one observed row.
    pub fn update(&mut self, row: &[f32]) {
        for (j, &c) in self.cols.iter().enumerate() {
            let v = if self.log1p {
                log1p_pos(row[c])
            } else {
                row[c]
            };
            if v < self.min[j] {
                self.min[j] = v;
            }
            if v > self.max[j] {
                self.max[j] = v;
            }
        }
        self.seen += 1;
    }

    /// Number of rows folded in so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of output features.
    pub fn n_outputs(&self) -> usize {
        self.cols.len()
    }

    /// Transform with the current bounds (clamped to `[0, 1]`).
    pub fn transform_into(&self, row: &[f32], out: &mut [f32]) {
        assert_eq!(out.len(), self.cols.len());
        for (j, &c) in self.cols.iter().enumerate() {
            let v = if self.log1p {
                log1p_pos(row[c])
            } else {
                row[c]
            };
            let span = self.max[j] - self.min[j];
            out[j] = if span > 0.0 && span.is_finite() {
                ((v - self.min[j]) / span).clamp(0.0, 1.0)
            } else {
                0.0
            };
        }
    }

    /// Allocating variant of [`OnlineMinMax::transform_into`].
    pub fn transform(&self, row: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols.len()];
        self.transform_into(row, &mut out);
        out
    }

    /// Columnar transform with the current bounds: `input[c]` holds all
    /// rows of raw feature `c`; the result holds one scaled column per
    /// selected feature, in selection order. Each element goes through the
    /// exact expression [`OnlineMinMax::transform_into`] applies (including
    /// the finite-span guard), so a transposed batch scales bit-identically
    /// to row-by-row — the store's columnar ORF scoring path relies on it.
    pub fn transform_columns(&self, input: &[&[f32]]) -> Vec<Vec<f32>> {
        let n = input.first().map_or(0, |c| c.len());
        self.cols
            .iter()
            .enumerate()
            .map(|(j, &c)| {
                let col = input[c];
                assert_eq!(col.len(), n, "ragged input columns");
                let span = self.max[j] - self.min[j];
                col.iter()
                    .map(|&x| {
                        let v = if self.log1p { log1p_pos(x) } else { x };
                        if span > 0.0 && span.is_finite() {
                            ((v - self.min[j]) / span).clamp(0.0, 1.0)
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offline_scaler_maps_to_unit_interval() {
        let rows: Vec<[f32; 3]> = vec![[0.0, 10.0, 5.0], [4.0, 20.0, 5.0], [2.0, 15.0, 5.0]];
        let s = MinMaxScaler::fit(rows.iter().map(|r| r.as_slice()), &[0, 1, 2]);
        assert_eq!(s.transform(&[0.0, 10.0, 5.0]), vec![0.0, 0.0, 0.0]);
        assert_eq!(s.transform(&[4.0, 20.0, 5.0]), vec![1.0, 1.0, 0.0]);
        let mid = s.transform(&[2.0, 15.0, 5.0]);
        assert!((mid[0] - 0.5).abs() < 1e-6);
        assert!((mid[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn offline_scaler_clamps_out_of_range_test_values() {
        let rows: Vec<[f32; 1]> = vec![[0.0], [10.0]];
        let s = MinMaxScaler::fit(rows.iter().map(|r| r.as_slice()), &[0]);
        assert_eq!(s.transform(&[-5.0]), vec![0.0]);
        assert_eq!(s.transform(&[99.0]), vec![1.0]);
    }

    #[test]
    fn offline_scaler_selects_columns() {
        let rows: Vec<[f32; 4]> = vec![[1.0, 2.0, 3.0, 4.0], [2.0, 4.0, 6.0, 8.0]];
        let s = MinMaxScaler::fit(rows.iter().map(|r| r.as_slice()), &[3, 1]);
        let out = s.transform(&[1.0, 3.0, 0.0, 6.0]);
        assert_eq!(out.len(), 2);
        assert!((out[0] - 0.5).abs() < 1e-6, "col 3: (6-4)/4");
        assert!((out[1] - 0.5).abs() < 1e-6, "col 1: (3-2)/2");
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn offline_scaler_rejects_empty() {
        MinMaxScaler::fit(std::iter::empty(), &[0]);
    }

    #[test]
    fn online_scaler_widens_bounds() {
        let mut s = OnlineMinMax::new(&[0]);
        // Before any data: constant transform.
        assert_eq!(s.transform(&[42.0]), vec![0.0]);
        s.update(&[10.0]);
        assert_eq!(s.transform(&[10.0]), vec![0.0], "single point has no span");
        s.update(&[20.0]);
        assert_eq!(s.transform(&[15.0]), vec![0.5]);
        s.update(&[0.0]);
        assert_eq!(s.transform(&[10.0]), vec![0.5]);
        assert_eq!(s.seen(), 3);
    }

    #[test]
    fn log1p_scaler_compresses_heavy_tails() {
        let rows: Vec<[f32; 1]> = vec![[0.0], [10.0], [10_000.0]];
        let plain = MinMaxScaler::fit(rows.iter().map(|r| r.as_slice()), &[0]);
        let logged = MinMaxScaler::fit_log1p(rows.iter().map(|r| r.as_slice()), &[0]);
        // Under plain scaling, 10 is squashed to ~0.001; under log1p it
        // lands mid-range.
        assert!(plain.transform(&[10.0])[0] < 0.01);
        let mid = logged.transform(&[10.0])[0];
        assert!((0.2..0.5).contains(&mid), "log-scaled mid {mid}");
        // Bounds still map to 0 and 1, negatives clamp safely.
        assert_eq!(logged.transform(&[0.0]), vec![0.0]);
        assert_eq!(logged.transform(&[10_000.0]), vec![1.0]);
        assert_eq!(logged.transform(&[-5.0]), vec![0.0]);
    }

    #[test]
    fn online_log1p_matches_offline_log1p() {
        let rows: Vec<[f32; 1]> = vec![[0.0], [3.0], [500.0]];
        let off = MinMaxScaler::fit_log1p(rows.iter().map(|r| r.as_slice()), &[0]);
        let mut on = OnlineMinMax::new_log1p(&[0]);
        rows.iter().for_each(|r| on.update(r));
        for r in &rows {
            assert_eq!(off.transform(r), on.transform(r));
        }
    }

    #[test]
    fn columnar_transform_matches_rowwise_bitwise() {
        let rows: Vec<[f32; 3]> = vec![
            [0.0, 5.0, 9.9],
            [10.0, 7.0, 0.3],
            [3.5, -2.0, 1e6],
            [7.25, 6.0, 0.0],
        ];
        for scaler in [
            MinMaxScaler::fit(rows.iter().map(|r| r.as_slice()), &[0, 2]),
            MinMaxScaler::fit_log1p(rows.iter().map(|r| r.as_slice()), &[2, 1]),
        ] {
            let cols: Vec<Vec<f32>> = (0..3)
                .map(|c| rows.iter().map(|r| r[c]).collect())
                .collect();
            let col_refs: Vec<&[f32]> = cols.iter().map(|c| c.as_slice()).collect();
            let scaled = scaler.transform_columns(&col_refs);
            assert_eq!(scaled.len(), scaler.n_outputs());
            for (i, r) in rows.iter().enumerate() {
                let want = scaler.transform(r);
                for (j, w) in want.iter().enumerate() {
                    assert_eq!(scaled[j][i].to_bits(), w.to_bits(), "row {i} out {j}");
                }
            }
        }
    }

    #[test]
    fn online_matches_offline_after_same_data() {
        let rows: Vec<[f32; 2]> = (0..50).map(|i| [i as f32, (i * i) as f32]).collect();
        let off = MinMaxScaler::fit(rows.iter().map(|r| r.as_slice()), &[0, 1]);
        let mut on = OnlineMinMax::new(&[0, 1]);
        rows.iter().for_each(|r| on.update(r));
        for r in &rows {
            assert_eq!(off.transform(r), on.transform(r));
        }
    }
}
