//! Feature selection (§4.2 of the paper).
//!
//! Two stages, matching the paper's pipeline:
//!
//! 1. **Wilcoxon rank-sum filter** — drop candidate features whose positive
//!    and negative sample distributions are statistically indistinguishable
//!    (the paper drops 20 of 48 this way);
//! 2. **redundancy elimination** — of highly correlated surviving pairs keep
//!    the more discriminative one (the paper drops 9 more via greedy
//!    FDR-comparison; we use |Pearson r| as the tractable proxy and expose
//!    the RF-importance-based ranking in `orfpred-trees` for the final
//!    Table 2 ordering).

use serde::{Deserialize, Serialize};

/// Result of a two-sided Wilcoxon rank-sum (Mann–Whitney) test.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RankSum {
    /// Mann–Whitney U statistic of the first sample.
    pub u: f64,
    /// Normal-approximation z-score (tie-corrected).
    pub z: f64,
    /// Two-sided p-value.
    pub p: f64,
}

/// Two-sided Wilcoxon rank-sum test with the normal approximation and tie
/// correction. Suitable for the sample sizes here (hundreds+ per class).
///
/// Returns `p = 1` when either sample is empty or all values are tied.
///
/// ```
/// use orfpred_smart::select::rank_sum_test;
///
/// let healthy = [0.0f32, 1.0, 0.5, 0.2, 0.8, 0.1, 0.9, 0.4];
/// let failing = [5.0f32, 6.5, 4.8, 7.2, 5.9, 6.1, 5.5, 6.8];
/// let t = rank_sum_test(&failing, &healthy);
/// assert!(t.p < 0.001, "clearly shifted distributions");
/// assert!(t.z > 0.0, "first sample stochastically larger");
/// ```
pub fn rank_sum_test(xs: &[f32], ys: &[f32]) -> RankSum {
    let n1 = xs.len();
    let n2 = ys.len();
    if n1 == 0 || n2 == 0 {
        return RankSum {
            u: 0.0,
            z: 0.0,
            p: 1.0,
        };
    }
    // Pool, sort, assign mid-ranks.
    let mut pooled: Vec<(f32, bool)> = xs
        .iter()
        .map(|&v| (v, true))
        .chain(ys.iter().map(|&v| (v, false)))
        .collect();
    pooled.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in rank-sum input"));

    let n = pooled.len();
    let mut rank_sum_x = 0.0f64;
    let mut tie_term = 0.0f64; // Σ (t³ - t) over tie groups
    let mut i = 0usize;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        let mid_rank = (i + j) as f64 / 2.0 + 1.0; // 1-based average rank
        for item in &pooled[i..=j] {
            if item.1 {
                rank_sum_x += mid_rank;
            }
        }
        if t > 1.0 {
            tie_term += t * t * t - t;
        }
        i = j + 1;
    }

    let n1f = n1 as f64;
    let n2f = n2 as f64;
    let nf = n as f64;
    let u = rank_sum_x - n1f * (n1f + 1.0) / 2.0;
    let mean_u = n1f * n2f / 2.0;
    let var_u = n1f * n2f / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    if var_u <= 0.0 {
        // All values identical: no discrimination whatsoever.
        return RankSum { u, z: 0.0, p: 1.0 };
    }
    // Continuity correction.
    let diff = u - mean_u;
    let corrected = if diff > 0.5 {
        diff - 0.5
    } else if diff < -0.5 {
        diff + 0.5
    } else {
        0.0
    };
    let z = corrected / var_u.sqrt();
    let p = (2.0 * normal_sf(z.abs())).min(1.0);
    RankSum { u, z, p }
}

/// Standard normal survival function `P(Z > z)` via `erfc`.
fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Complementary error function (Numerical Recipes rational approximation,
/// |error| ≤ 1.2e-7 — ample for feature screening).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Pearson correlation of two equal-length slices (0 if degenerate).
pub fn pearson(xs: &[f32], ys: &[f32]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = xs.iter().map(|&v| f64::from(v)).sum::<f64>() / nf;
    let my = ys.iter().map(|&v| f64::from(v)).sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = f64::from(x) - mx;
        let dy = f64::from(y) - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// Outcome of the two-stage selection.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SelectionReport {
    /// Surviving feature columns, ordered by increasing p-value.
    pub kept: Vec<usize>,
    /// Per-candidate p-values (index = candidate position).
    pub p_values: Vec<f64>,
    /// Columns dropped by the rank-sum filter.
    pub dropped_nondiscriminative: Vec<usize>,
    /// Columns dropped as redundant (correlated with a stronger survivor).
    pub dropped_redundant: Vec<usize>,
}

/// Run the selection pipeline.
///
/// `pos`/`neg` are row-major matrices of positive/negative samples over
/// `candidates` columns (full 48-column rows; `candidates` indexes into
/// them). `alpha` is the rank-sum significance level (paper-equivalent
/// setting: 0.01); `corr_threshold` the |r| above which the weaker of a pair
/// is dropped (0.95 works well).
pub fn select_features(
    pos: &[&[f32]],
    neg: &[&[f32]],
    candidates: &[usize],
    alpha: f64,
    corr_threshold: f64,
) -> SelectionReport {
    let mut report = SelectionReport::default();
    let col = |rows: &[&[f32]], c: usize| -> Vec<f32> { rows.iter().map(|r| r[c]).collect() };

    // Stage 1: rank-sum filter.
    let mut survivors: Vec<(usize, f64)> = Vec::new();
    for &c in candidates {
        let xs = col(pos, c);
        let ys = col(neg, c);
        let t = rank_sum_test(&xs, &ys);
        report.p_values.push(t.p);
        if t.p <= alpha {
            survivors.push((c, t.p));
        } else {
            report.dropped_nondiscriminative.push(c);
        }
    }
    survivors.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

    // Stage 2: redundancy elimination — iterate strongest-first, drop any
    // later feature highly correlated with an already-kept one. Correlation
    // is computed over the pooled sample.
    let pooled: Vec<&[f32]> = pos.iter().chain(neg.iter()).copied().collect();
    let mut kept: Vec<usize> = Vec::new();
    for (c, _p) in survivors {
        let xs = col(&pooled, c);
        let redundant = kept.iter().any(|&k| {
            let ys = col(&pooled, k);
            pearson(&xs, &ys).abs() > corr_threshold
        });
        if redundant {
            report.dropped_redundant.push(c);
        } else {
            kept.push(c);
        }
    }
    report.kept = kept;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_util::{dist, Xoshiro256pp};

    #[test]
    fn rank_sum_separated_samples_give_tiny_p() {
        let xs: Vec<f32> = (0..100).map(|i| 10.0 + i as f32 * 0.01).collect();
        let ys: Vec<f32> = (0..100).map(|i| i as f32 * 0.01).collect();
        let t = rank_sum_test(&xs, &ys);
        assert!(t.p < 1e-10, "p = {}", t.p);
        assert!(t.z > 10.0);
    }

    #[test]
    fn rank_sum_identical_distributions_give_large_p() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut rejections = 0;
        let trials = 200;
        for _ in 0..trials {
            let xs: Vec<f32> = (0..60).map(|_| rng.next_f32()).collect();
            let ys: Vec<f32> = (0..60).map(|_| rng.next_f32()).collect();
            if rank_sum_test(&xs, &ys).p < 0.05 {
                rejections += 1;
            }
        }
        // Under H0 the rejection rate should be ≈ alpha.
        assert!(
            (rejections as f64) < 0.12 * trials as f64,
            "too many H0 rejections: {rejections}/{trials}"
        );
    }

    #[test]
    fn rank_sum_handles_ties_and_degenerate_inputs() {
        let xs = [1.0f32; 30];
        let ys = [1.0f32; 30];
        let t = rank_sum_test(&xs, &ys);
        assert_eq!(t.p, 1.0, "all-tied data discriminates nothing");
        assert_eq!(rank_sum_test(&[], &[1.0]).p, 1.0);
        // Heavy ties but a real shift must still be detected.
        let xs: Vec<f32> = (0..200).map(|i| f32::from((i % 3) as u8)).collect();
        let ys: Vec<f32> = (0..200).map(|i| f32::from((i % 3) as u8) + 1.0).collect();
        assert!(rank_sum_test(&xs, &ys).p < 1e-6);
    }

    #[test]
    fn rank_sum_is_symmetric_in_p() {
        let xs: Vec<f32> = (0..50).map(|i| i as f32).collect();
        let ys: Vec<f32> = (0..50).map(|i| i as f32 + 20.0).collect();
        let a = rank_sum_test(&xs, &ys);
        let b = rank_sum_test(&ys, &xs);
        assert!((a.p - b.p).abs() < 1e-12);
        assert!((a.z + b.z).abs() < 1e-9);
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_207).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_79).abs() < 1e-6);
        assert!(erfc(5.0) < 2e-12);
    }

    #[test]
    fn pearson_detects_linear_relation() {
        let xs: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let ys: Vec<f32> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-9);
        let zs: Vec<f32> = xs.iter().map(|&x| -x).collect();
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-9);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0, "degenerate");
    }

    #[test]
    fn selection_keeps_signal_drops_noise_and_duplicates() {
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        // Columns: 0 = signal, 1 = near-copy of 0, 2 = pure noise.
        let mut pos_rows = Vec::new();
        let mut neg_rows = Vec::new();
        for _ in 0..300 {
            let s = dist::normal(&mut rng, 3.0, 1.0) as f32;
            pos_rows.push([s, s + 0.001 * rng.next_f32(), rng.next_f32()]);
            let s = dist::normal(&mut rng, 0.0, 1.0) as f32;
            neg_rows.push([s, s + 0.001 * rng.next_f32(), rng.next_f32()]);
        }
        let pos: Vec<&[f32]> = pos_rows.iter().map(|r| r.as_slice()).collect();
        let neg: Vec<&[f32]> = neg_rows.iter().map(|r| r.as_slice()).collect();
        let rep = select_features(&pos, &neg, &[0, 1, 2], 0.01, 0.95);
        assert_eq!(rep.kept.len(), 1, "kept {:?}", rep.kept);
        assert!(rep.kept[0] == 0 || rep.kept[0] == 1);
        assert_eq!(rep.dropped_redundant.len(), 1);
        assert_eq!(rep.dropped_nondiscriminative, vec![2]);
    }
}
