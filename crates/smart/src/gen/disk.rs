//! Per-disk simulation state and the daily step function.

use super::profile::ModelProfile;
use crate::attrs::N_FEATURES;
use orfpred_util::{dist, Xoshiro256pp};
use serde::{Deserialize, Serialize};

/// Canonical latent failure modes. Real drive failures cluster into
/// distinct mechanisms with distinct SMART signatures; a model must have
/// *seen* a mode to detect it, which is what makes early-deployment FDR low
/// and convergence take months (Figures 2–3). Channel order:
/// (realloc, pending, 187, 198, 183, 184, 189, 188, 199, seek, read).
const FAILURE_MODES: [[f32; 11]; 6] = [
    // media wear-out: reallocation cascade (sector counters only)
    [1.8, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    // head degradation: flying anomalies + servo decay, no media errors
    [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.8, 0.0, 0.0, 1.6, 1.3],
    // uncorrectable cascade: hard read errors only
    [0.0, 0.3, 1.9, 1.2, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    // interface/firmware: timeouts + CRC + end-to-end, media clean
    [0.0, 0.0, 0.0, 0.0, 0.0, 1.5, 0.0, 1.8, 1.7, 0.0, 0.0],
    // surface defects found offline: runtime bad blocks + offline scans
    [0.4, 0.0, 0.0, 1.7, 1.8, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
    // mixed / cascading multi-system failure: everything, faintly
    [0.7, 0.8, 0.5, 0.4, 0.3, 0.2, 0.4, 0.3, 0.2, 0.5, 0.4],
];

/// Symptom channels a failing disk can express. Each failing symptomatic
/// disk draws one of the [`FAILURE_MODES`] and jitters its per-channel
/// magnitudes, so no single SMART attribute is a perfect separator and a
/// mode must be represented in training before it is detectable.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct SymptomPlan {
    /// Days before the failure day when symptoms begin.
    pub ramp_days: u16,
    /// Latent failure-mode cluster (index into `FAILURE_MODES`).
    pub mode: u8,
    /// Per-channel intensity multipliers (0 = channel not expressed).
    pub realloc: f32,
    pub pending: f32,
    pub reported_uncorrectable: f32,
    pub offline_uncorrectable: f32,
    pub runtime_bad_block: f32,
    pub end_to_end: f32,
    pub high_fly_writes: f32,
    pub command_timeout: f32,
    pub crc: f32,
    /// Degradation of the seek-error-rate normalized value (points).
    pub seek_degrade: f32,
    /// Degradation of the read-error-rate normalized value (points).
    pub read_degrade: f32,
}

/// Planned destiny of a disk, fixed at fleet construction.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum Fate {
    /// Survives the whole observation window (censored).
    Survive,
    /// Fails with no SMART signature (mechanical/electronic).
    Sudden {
        /// Day the disk stops reporting.
        fail_day: u16,
    },
    /// Fails after a symptom ramp.
    Symptomatic {
        /// Day the disk stops reporting.
        fail_day: u16,
        /// Which channels ramp, and how hard.
        plan: SymptomPlan,
    },
}

impl Fate {
    /// Day the disk stops reporting (failure day), if it fails.
    pub fn fail_day(&self) -> Option<u16> {
        match self {
            Fate::Survive => None,
            Fate::Sudden { fail_day } | Fate::Symptomatic { fail_day, .. } => Some(*fail_day),
        }
    }

    /// Sample a failure fate.
    ///
    /// `fail_day` must leave room for the longest ramp; the fleet builder
    /// guarantees `fail_day ≥ install_day + 50`.
    pub fn sample_failure(rng: &mut Xoshiro256pp, profile: &ModelProfile, fail_day: u16) -> Fate {
        if rng.bernoulli(profile.sudden_failure_fraction) {
            return Fate::Sudden { fail_day };
        }
        let ramp_days = dist::geometric(rng, 1.0 / profile.ramp_mean_days).clamp(5, 45) as u16;
        // Per-disk overall severity; "weak" failures are faint across the
        // board and dominate the misses at low-FAR operating points.
        let weak = rng.bernoulli(profile.weak_symptom_fraction);
        let overall =
            dist::log_normal(rng, 0.0, 0.45) * if weak { profile.weak_severity } else { 1.0 };
        let mode = dist::weighted_index(rng, &profile.mode_weights) % FAILURE_MODES.len();
        let base = &FAILURE_MODES[mode];
        // Per-channel magnitude: mode signature × per-disk jitter.
        let mut channel = |b: f32| -> f32 {
            if b > 0.0 {
                (overall * f64::from(b) * dist::log_normal(rng, 0.0, 0.35)) as f32
            } else {
                0.0
            }
        };
        let plan = SymptomPlan {
            ramp_days,
            mode: mode as u8,
            realloc: channel(base[0]),
            pending: channel(base[1]),
            reported_uncorrectable: channel(base[2]),
            offline_uncorrectable: channel(base[3]),
            runtime_bad_block: channel(base[4]),
            end_to_end: channel(base[5]),
            high_fly_writes: channel(base[6]),
            command_timeout: channel(base[7]),
            crc: channel(base[8]),
            seek_degrade: channel(base[9]),
            read_degrade: channel(base[10]),
        };
        Fate::Symptomatic { fail_day, plan }
    }
}

/// Mutable simulation state of one disk.
#[derive(Clone, Debug)]
pub struct DiskState {
    /// Dense disk identifier.
    pub disk_id: u32,
    /// First day the disk reports data.
    pub install_day: u16,
    /// Predetermined destiny.
    pub fate: Fate,
    /// Install batch index (drives batch drift).
    pub batch: u16,
    rng: Xoshiro256pp,

    // Cumulative counters (raw SMART values).
    poh_hours: f64,
    start_stop: f64,
    realloc: f64,
    spin_retry: f64,
    power_cycles: f64,
    runtime_bad_block: f64,
    end_to_end: f64,
    reported_uncorrectable: f64,
    command_timeout: f64,
    high_fly_writes: f64,
    power_off_retract: f64,
    load_cycles: f64,
    pending: f64,
    offline_uncorrectable: f64,
    crc: f64,
    head_flying_hours: f64,
    lbas_written_gb: f64,
    lbas_read_gb: f64,

    // Per-disk stable baselines.
    temp_base: f64,
    seek_norm_base: f64,
    read_norm_base: f64,
    spin_up_norm: f64,
    load_rate: f64,
    daily_write_gb: f64,
    /// Chronically noisy but healthy disk (exposed for fleet diagnostics).
    pub grumpy: bool,
    /// Multiplier applied to benign glitch probabilities.
    glitch_mult: f64,
}

impl DiskState {
    /// Create a disk installed on `install_day` with the given fate.
    pub fn new(
        disk_id: u32,
        install_day: u16,
        fate: Fate,
        profile: &ModelProfile,
        master: &Xoshiro256pp,
    ) -> Self {
        // Stream id: disk_id in the high bits so fate sampling (done by the
        // fleet from stream ids below 2^32) never collides.
        let mut rng = master.split(0x1_0000_0000u64 + u64::from(disk_id));
        let batch = install_day / 120;
        let grumpy = rng.bernoulli(profile.grumpy_fraction);
        let batch_f = f64::from(batch) * profile.batch_drift;
        Self {
            disk_id,
            install_day,
            fate,
            batch,
            temp_base: profile.temp_mean + dist::normal(&mut rng, 0.0, 2.0) + 0.3 * batch_f,
            seek_norm_base: (75.0 + dist::normal(&mut rng, 0.0, 6.0) - 1.2 * batch_f)
                .clamp(45.0, 95.0),
            read_norm_base: (81.0 + dist::normal(&mut rng, 0.0, 2.5)).clamp(60.0, 95.0),
            spin_up_norm: (93.0 + dist::normal(&mut rng, 0.0, 2.0)).clamp(80.0, 100.0),
            load_rate: profile.load_cycles_per_day
                * dist::log_normal(&mut rng, 0.0, 0.25)
                * (1.0 + 0.05 * batch_f),
            daily_write_gb: 35.0 * dist::log_normal(&mut rng, 0.0, 0.4),
            grumpy,
            glitch_mult: (if grumpy { 40.0 } else { 1.0 })
                * dist::log_normal(&mut rng, 0.0, 0.3)
                * (1.0 + 0.15 * batch_f),
            // ~15% of drives ship with a handful of factory-remapped
            // sectors — keeps "realloc > 0" from separating the classes by
            // itself, as in real fleets.
            realloc: if rng.bernoulli(0.15) {
                f64::from(dist::poisson(&mut rng, 4.0)) + 1.0
            } else {
                0.0
            },
            rng,
            poh_hours: 0.0,
            start_stop: 1.0,
            spin_retry: 0.0,
            power_cycles: 1.0,
            runtime_bad_block: 0.0,
            end_to_end: 0.0,
            reported_uncorrectable: 0.0,
            command_timeout: 0.0,
            high_fly_writes: 0.0,
            power_off_retract: 0.0,
            load_cycles: 0.0,
            pending: 0.0,
            offline_uncorrectable: 0.0,
            crc: 0.0,
            head_flying_hours: 0.0,
            lbas_written_gb: 0.0,
            lbas_read_gb: 0.0,
        }
    }

    /// Whether the disk is still reporting on `day`.
    pub fn active(&self, day: u16) -> bool {
        day >= self.install_day && self.fate.fail_day().is_none_or(|f| day <= f)
    }

    /// Advance one day and emit the SMART snapshot for `day`.
    ///
    /// `env_glitch` is the calendar-time ambient glitch multiplier supplied
    /// by the fleet (environment drift).
    pub fn step(&mut self, day: u16, profile: &ModelProfile, env_glitch: f64) -> Vec<f32> {
        debug_assert!(self.active(day), "stepping inactive disk");
        let rng = &mut self.rng;
        let age_days = f64::from(day - self.install_day);

        // --- Cumulative attribute growth (the model-aging driver). ---
        self.poh_hours += 24.0 * rng.range_f64(0.96, 1.0);
        self.head_flying_hours += 23.0 * rng.range_f64(0.9, 1.0);
        self.load_cycles += self.load_rate * rng.range_f64(0.6, 1.4);
        self.lbas_written_gb += self.daily_write_gb * rng.range_f64(0.3, 1.7);
        self.lbas_read_gb += self.daily_write_gb * 2.2 * rng.range_f64(0.3, 1.7);
        if rng.bernoulli(profile.power_cycles_per_100d / 100.0) {
            self.power_cycles += 1.0;
            self.start_stop += 1.0;
            if rng.bernoulli(0.25) {
                self.power_off_retract += 1.0;
            }
        }

        // --- Benign glitches on every disk (healthy FAR pressure). ---
        // The "grumpy" multiplier applies to the mundane counters (media
        // reallocations, interface CRC, transient pending sectors); the
        // hard-error counters (187/198/183) stay at the base rate — healthy
        // drives essentially never report uncorrectable errors, which is
        // what keeps FAR at ~1% achievable for a well-tuned model.
        // Rates are per-day lifetime-calibrated: a typical good disk should
        // go its whole life (~2.5 years) without ever touching the hard
        // counters — the ~1% FAR floor of the paper's Table 3/4 comes from
        // the few percent of healthy disks that do get contaminated (plus
        // the chronically noisy "grumpy" tail).
        // Grumpy (chronically noisy) disks express through the *soft*
        // counters only — reallocations, CRC, flight anomalies. Their rows
        // are persistent and therefore well-represented among training
        // negatives, teaching every learner that "elevated realloc/CRC with
        // clean pending/187" is survivable. The hard counters (pending
        // surges, reported uncorrectables) stay rare per *lifetime* on
        // healthy disks — they are the irreducible FAR floor.
        let glitch = profile.glitch_rate * self.glitch_mult * env_glitch;
        let hard_glitch = profile.glitch_rate * env_glitch;
        if rng.bernoulli(glitch * 3.0) {
            self.realloc += f64::from(dist::poisson(rng, 1.2));
        }
        if rng.bernoulli(hard_glitch * 0.6) {
            // Benign pending-sector episode (small, mostly self-clearing).
            self.pending += f64::from(dist::poisson(rng, 1.2)) + 1.0;
        }
        if rng.bernoulli(glitch) {
            self.crc += f64::from(dist::poisson(rng, 1.0));
        }
        if rng.bernoulli(glitch * 0.7) {
            self.high_fly_writes += f64::from(dist::poisson(rng, 0.8));
        }
        if rng.bernoulli(glitch * 0.5) {
            self.command_timeout += f64::from(dist::poisson(rng, 0.7));
        }
        if rng.bernoulli(hard_glitch * 0.7) {
            // Rare benign reported-uncorrectable blip: keeps SMART 187 from
            // being a perfect separator (lifetime odds ~1%).
            self.reported_uncorrectable += 1.0;
        }
        if rng.bernoulli(hard_glitch * 0.5) {
            self.offline_uncorrectable += 1.0;
        }
        if rng.bernoulli(hard_glitch * 0.6) {
            self.runtime_bad_block += 1.0;
        }

        // --- Wear: old healthy disks slowly accumulate reallocations. ---
        let wear_p = profile.wear_error_rate * age_days / (365.0 * 365.0);
        if rng.bernoulli(wear_p.min(0.5)) {
            self.realloc += f64::from(dist::poisson(rng, 1.2));
        }

        // --- Pending sectors partially resolve into reallocations. ---
        if self.pending > 0.0 {
            let resolved = (self.pending * 0.25).floor();
            self.pending -= resolved;
            self.realloc += resolved * 0.6;
        }

        // --- Symptom ramp for symptomatic failing disks. ---
        let mut seek_deg = 0.0f64;
        let mut read_deg = 0.0f64;
        if let Fate::Symptomatic { fail_day, plan } = &self.fate {
            let ramp_start = fail_day.saturating_sub(plan.ramp_days);
            if day >= ramp_start {
                // Escalation toward the failure day. The exponent controls
                // how much the final week towers over the rest of the ramp:
                // shallow enough that pre-window ramp samples (which the
                // 7-day labelling rule marks *negative*) genuinely overlap
                // the window samples — the label noise that makes the
                // paper's λ=Max row collapse.
                let p = (f64::from(day - ramp_start) + 1.0) / (f64::from(plan.ramp_days) + 1.0);
                let esc = profile.symptom_intensity * p.powf(1.3);
                let mut bump = |mult: f32, base: f64| -> f64 {
                    if mult > 0.0 {
                        f64::from(dist::poisson(
                            rng,
                            (f64::from(mult) * base * esc).min(500.0),
                        ))
                    } else {
                        0.0
                    }
                };
                self.realloc += bump(plan.realloc, 2.2);
                self.pending += bump(plan.pending, 2.6);
                self.reported_uncorrectable += bump(plan.reported_uncorrectable, 0.7);
                self.offline_uncorrectable += bump(plan.offline_uncorrectable, 0.6);
                self.runtime_bad_block += bump(plan.runtime_bad_block, 0.5);
                self.end_to_end += bump(plan.end_to_end, 0.25);
                self.high_fly_writes += bump(plan.high_fly_writes, 0.5);
                self.command_timeout += bump(plan.command_timeout, 0.5);
                self.crc += bump(plan.crc, 0.5);
                seek_deg = f64::from(plan.seek_degrade) * 12.0 * p;
                read_deg = f64::from(plan.read_degrade) * 9.0 * p;
                if rng.bernoulli(0.10 * p) {
                    self.spin_retry += 1.0;
                }
            }
        }

        let noise = rng_snapshot_inputs(rng);
        self.snapshot(noise, seek_deg, read_deg)
    }

    /// Assemble the 48-column feature row from the current counters.
    fn snapshot(&self, noise: SnapshotNoise, seek_deg: f64, read_deg: f64) -> Vec<f32> {
        let mut f = vec![0.0f32; N_FEATURES];
        let mut set = |attr_idx: usize, norm: f64, raw: f64| {
            // Vendor-normalized values are 1-byte integers on real drives.
            f[2 * attr_idx] = norm.clamp(1.0, 253.0).round() as f32;
            f[2 * attr_idx + 1] = raw.max(0.0) as f32;
        };

        // Vendor-normalized values follow simple monotone formulas of the
        // raws, with attribute-specific sensitivities — mirroring how some
        // norms saturate (stay at 100) while the raw is already moving,
        // which is why the paper keeps both as candidates (§4.2).
        let temp = self.temp_base + noise.temp;
        set(
            0,
            self.read_norm_base - read_deg + noise.read,
            noise.read_raw,
        ); // 1 Read Error Rate
        set(1, self.spin_up_norm, 0.0); // 3 Spin-Up Time
        set(2, 100.0 - self.start_stop / 100.0, self.start_stop); // 4 Start/Stop
        set(
            3,
            100.0 - (self.realloc - 40.0).max(0.0) / 16.0,
            self.realloc,
        ); // 5 Realloc
        set(
            4,
            self.seek_norm_base - seek_deg + noise.seek,
            noise.seek_raw,
        ); // 7 Seek Error Rate
        set(5, 100.0 - self.poh_hours / 730.0, self.poh_hours); // 9 POH
        set(6, 100.0 - self.spin_retry, self.spin_retry); // 10 Spin Retry
        set(7, 100.0 - self.power_cycles / 50.0, self.power_cycles); // 12 Power Cycle
        set(8, 100.0 - self.runtime_bad_block, self.runtime_bad_block); // 183
        set(9, 100.0 - 20.0 * self.end_to_end, self.end_to_end); // 184
        set(
            10,
            100.0 - self.reported_uncorrectable,
            self.reported_uncorrectable,
        ); // 187
        set(11, 100.0 - self.command_timeout / 2.0, self.command_timeout); // 188
        set(12, 100.0 - self.high_fly_writes, self.high_fly_writes); // 189
        set(13, 100.0 - temp, temp); // 190 Airflow Temperature
        set(
            14,
            100.0 - self.power_off_retract / 10.0,
            self.power_off_retract,
        ); // 192
        set(15, 100.0 - self.load_cycles / 3000.0, self.load_cycles); // 193
        set(16, 100.0 - temp + 64.0, temp); // 194 Temperature
        set(17, 50.0 + noise.ecc, noise.ecc_raw); // 195 Hardware ECC
        set(18, 100.0 - self.pending / 2.0, self.pending); // 197 Pending
        set(
            19,
            100.0 - self.offline_uncorrectable,
            self.offline_uncorrectable,
        ); // 198
        set(20, 200.0 - self.crc, self.crc); // 199 CRC
        set(21, 100.0, self.head_flying_hours); // 240
        set(22, 100.0, self.lbas_written_gb); // 241
        set(23, 100.0, self.lbas_read_gb); // 242
        f
    }
}

/// Per-snapshot measurement noise, drawn once per day.
struct SnapshotNoise {
    temp: f64,
    read: f64,
    read_raw: f64,
    seek: f64,
    seek_raw: f64,
    ecc: f64,
    ecc_raw: f64,
}

fn rng_snapshot_inputs(rng: &mut Xoshiro256pp) -> SnapshotNoise {
    SnapshotNoise {
        temp: dist::normal(rng, 0.0, 1.2),
        read: dist::normal(rng, 0.0, 1.5),
        // Seagate raw read/seek error rates are huge composite numbers whose
        // magnitude carries little health signal; model them as wide noise.
        read_raw: rng.range_f64(1.0e6, 2.4e8),
        seek: dist::normal(rng, 0.0, 1.0),
        seek_raw: rng.range_f64(1.0e8, 9.0e8),
        ecc: dist::normal(rng, 0.0, 4.0),
        ecc_raw: rng.range_f64(1.0e6, 2.4e8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{feature_index, FeatureKind};

    fn master() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(99)
    }

    fn profile() -> ModelProfile {
        ModelProfile::st4000dm000()
    }

    #[test]
    fn surviving_disk_is_active_through_window() {
        let d = DiskState::new(0, 10, Fate::Survive, &profile(), &master());
        assert!(!d.active(9));
        assert!(d.active(10));
        assert!(d.active(60_000_u16));
    }

    #[test]
    fn failed_disk_stops_reporting_after_fail_day() {
        let d = DiskState::new(0, 0, Fate::Sudden { fail_day: 100 }, &profile(), &master());
        assert!(d.active(100));
        assert!(!d.active(101));
    }

    #[test]
    fn cumulative_attributes_grow_monotonically() {
        let p = profile();
        let mut d = DiskState::new(1, 0, Fate::Survive, &p, &master());
        let poh = feature_index(9, FeatureKind::Raw).unwrap();
        let lc = feature_index(193, FeatureKind::Raw).unwrap();
        let mut prev_poh = -1.0f32;
        let mut prev_lc = -1.0f32;
        for day in 0..200 {
            let f = d.step(day, &p, 1.0);
            assert!(f[poh] > prev_poh, "POH must grow");
            assert!(f[lc] >= prev_lc, "load cycles must not shrink");
            prev_poh = f[poh];
            prev_lc = f[lc];
        }
        // ~200 days ≈ 4 800 hours.
        assert!((4_000.0..5_000.0).contains(&prev_poh), "POH {prev_poh}");
    }

    #[test]
    fn symptomatic_disk_shows_error_ramp_before_failure() {
        let p = profile();
        let m = master();
        // Average over several disks: individual plans can skip channels.
        let mut late_realloc = 0.0f64;
        let mut early_realloc = 0.0f64;
        for id in 0..30u32 {
            let mut rng = m.split(u64::from(id));
            let fate = Fate::sample_failure(&mut rng, &p, 200);
            let mut d = DiskState::new(id, 0, fate, &p, &m);
            let col = feature_index(5, FeatureKind::Raw).unwrap();
            for day in 0..=200u16 {
                if !d.active(day) {
                    break;
                }
                let f = d.step(day, &p, 1.0);
                if day == 150 {
                    early_realloc += f64::from(f[col]);
                }
                if day == 200 {
                    late_realloc += f64::from(f[col]);
                }
            }
        }
        assert!(
            late_realloc > early_realloc + 50.0,
            "expected a ramp: early {early_realloc}, late {late_realloc}"
        );
    }

    #[test]
    fn sudden_failure_shows_no_ramp() {
        let p = profile();
        let m = master();
        let mut d = DiskState::new(7, 0, Fate::Sudden { fail_day: 120 }, &p, &m);
        let col = feature_index(187, FeatureKind::Raw).unwrap();
        let mut last = 0.0f32;
        for day in 0..=120u16 {
            last = d.step(day, &p, 1.0)[col];
        }
        assert!(last < 3.0, "sudden failures must not ramp 187, got {last}");
    }

    #[test]
    fn fate_sampling_is_deterministic_per_stream() {
        let p = profile();
        let mut a = master().split(5);
        let mut b = master().split(5);
        let fa = Fate::sample_failure(&mut a, &p, 300);
        let fb = Fate::sample_failure(&mut b, &p, 300);
        assert_eq!(format!("{fa:?}"), format!("{fb:?}"));
    }

    #[test]
    fn snapshot_norms_stay_in_vendor_range() {
        let p = profile();
        let m = master();
        let mut rng = m.split(11);
        let fate = Fate::sample_failure(&mut rng, &p, 400);
        let mut d = DiskState::new(3, 0, fate, &p, &m);
        for day in 0..=400u16 {
            if !d.active(day) {
                break;
            }
            let f = d.step(day, &p, 2.0);
            for attr in 0..crate::attrs::N_ATTRIBUTES {
                let norm = f[2 * attr];
                assert!(
                    (1.0..=253.0).contains(&norm),
                    "norm out of range at attr {attr}: {norm}"
                );
                assert!(f[2 * attr + 1] >= 0.0, "raw must be non-negative");
            }
        }
    }
}
