//! Telemetry corruption: production-shaped dirt for a clean fleet stream.
//!
//! The simulator in this module's siblings emits an idealised stream —
//! every disk reports every day, every value is finite, every failure
//! ticket is real. Production collectors are nothing like that (Han et
//! al., "Robust Data Preprocessing for ML-Based Disk Failure Prediction"):
//! days go missing, transfers are re-delivered, sensors stick, values
//! corrupt to NaN or garbage, and a fraction of failure tickets turn out
//! to be false (the disk keeps serving). [`corrupt_events`] applies
//! exactly those fault classes to a clean [`FleetEvent`] stream,
//! deterministically from a seed, so the preprocessing stage
//! (`orfpred-prep`) can be driven end-to-end against a golden oracle.

use super::FleetEvent;
use orfpred_util::Xoshiro256pp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Corruption rates for [`corrupt_events`]. All probabilities are per
/// event (or per disk for `stuck_rate`); `0.0` disables a fault class.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DirtyConfig {
    /// Seed for the corruption stream (independent of the fleet seed).
    pub seed: u64,
    /// Probability a sample is dropped (disk misses a day).
    pub drop_rate: f64,
    /// Probability a sample is re-delivered immediately (exact duplicate).
    pub dup_rate: f64,
    /// Probability the collector re-sends the disk's *previous* day after
    /// the current one (a stale, out-of-order repeat).
    pub stale_rate: f64,
    /// Probability one attribute value of a sample is clobbered to NaN.
    pub nan_rate: f64,
    /// Probability one attribute value is clobbered to an implausible
    /// negative sentinel (out-of-range garbage).
    pub garbage_rate: f64,
    /// Per-disk probability that the disk's sensor sticks partway through
    /// life and repeats one frozen row from then on.
    pub stuck_rate: f64,
    /// Probability a healthy disk's sample is followed by a *spurious*
    /// failure ticket (a flipped label: the disk keeps reporting).
    pub flip_rate: f64,
}

impl DirtyConfig {
    /// Mild production dirt: occasional gaps, duplicates and bad values.
    pub fn mild(seed: u64) -> Self {
        Self {
            seed,
            drop_rate: 0.01,
            dup_rate: 0.01,
            stale_rate: 0.005,
            nan_rate: 0.01,
            garbage_rate: 0.005,
            stuck_rate: 0.01,
            flip_rate: 0.0005,
        }
    }

    /// Harsh dirt: every fault class elevated — collector outage territory.
    pub fn harsh(seed: u64) -> Self {
        Self {
            seed,
            drop_rate: 0.05,
            dup_rate: 0.04,
            stale_rate: 0.02,
            nan_rate: 0.05,
            garbage_rate: 0.02,
            stuck_rate: 0.05,
            flip_rate: 0.003,
        }
    }
}

/// Per-disk corruption state.
struct DiskDirt {
    /// Day from which the sensor sticks (`u16::MAX` = never).
    stuck_from: u16,
    /// The frozen row once stuck.
    frozen: Option<Vec<f32>>,
    /// The previous clean sample, for stale re-delivery.
    prev: Option<FleetEvent>,
}

/// Apply `cfg`'s corruption classes to a clean event stream.
///
/// Deterministic: the output depends only on `events` and `cfg`. Per-disk
/// decisions (stuck sensors) derive from `cfg.seed ^ disk_id`, stream
/// decisions from a single sequential RNG, so the same input always
/// yields the same dirty stream.
pub fn corrupt_events(events: &[FleetEvent], cfg: &DirtyConfig) -> Vec<FleetEvent> {
    let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed ^ 0x6469_7274_795f_6673);
    let mut disks: BTreeMap<u32, DiskDirt> = BTreeMap::new();
    let mut out = Vec::with_capacity(events.len());

    for event in events {
        match event {
            FleetEvent::Sample(dd) => {
                let dirt = disks.entry(dd.disk_id).or_insert_with(|| {
                    let mut drng = Xoshiro256pp::seed_from_u64(cfg.seed ^ u64::from(dd.disk_id));
                    let stuck_from = if f64::from(drng.next_f32()) < cfg.stuck_rate {
                        // Stick somewhere in the first two years of life.
                        dd.day.saturating_add(1 + (drng.next_u64() % 700) as u16)
                    } else {
                        u16::MAX
                    };
                    DiskDirt {
                        stuck_from,
                        frozen: None,
                        prev: None,
                    }
                });

                if f64::from(rng.next_f32()) < cfg.drop_rate {
                    continue; // the day never arrives
                }

                let mut dirty = dd.clone();
                let width = dirty.features.len();
                if dirty.day >= dirt.stuck_from {
                    // Sensor stuck: repeat the frozen row forever.
                    let frozen = dirt.frozen.get_or_insert_with(|| dirty.features.clone());
                    dirty.features = frozen.clone();
                } else {
                    if f64::from(rng.next_f32()) < cfg.nan_rate {
                        let c = (rng.next_u64() as usize) % width;
                        dirty.features[c] = f32::NAN;
                    }
                    if f64::from(rng.next_f32()) < cfg.garbage_rate {
                        let c = (rng.next_u64() as usize) % width;
                        dirty.features[c] = -1.0e9;
                    }
                }

                out.push(FleetEvent::Sample(dirty.clone()));
                if f64::from(rng.next_f32()) < cfg.dup_rate {
                    out.push(FleetEvent::Sample(dirty.clone()));
                }
                if f64::from(rng.next_f32()) < cfg.stale_rate {
                    if let Some(prev) = &dirt.prev {
                        out.push(prev.clone());
                    }
                }
                if f64::from(rng.next_f32()) < cfg.flip_rate {
                    // Spurious failure ticket; the disk keeps reporting, so
                    // a survival re-check can catch the flipped label.
                    out.push(FleetEvent::Failure {
                        disk_id: dirty.disk_id,
                        day: dirty.day,
                    });
                }
                dirt.prev = Some(FleetEvent::Sample(dirty));
            }
            FleetEvent::Failure { disk_id, day } => {
                out.push(FleetEvent::Failure {
                    disk_id: *disk_id,
                    day: *day,
                });
                if f64::from(rng.next_f32()) < cfg.dup_rate {
                    // Ticket systems re-file real failures too.
                    out.push(FleetEvent::Failure {
                        disk_id: *disk_id,
                        day: *day,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{FleetConfig, FleetSim, ScalePreset};

    fn clean_events() -> Vec<FleetEvent> {
        let mut cfg = FleetConfig::sta(ScalePreset::Tiny, 77);
        cfg.n_good = 30;
        cfg.n_failed = 6;
        cfg.duration_days = 90;
        FleetSim::new(&cfg).collect()
    }

    #[test]
    fn corruption_is_deterministic_and_actually_corrupts() {
        let clean = clean_events();
        let cfg = DirtyConfig::harsh(3);
        let a = corrupt_events(&clean, &cfg);
        let b = corrupt_events(&clean, &cfg);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "must be reproducible");
        assert_ne!(
            format!("{a:?}"),
            format!("{clean:?}"),
            "harsh config must change the stream"
        );
        // Dirt classes present: at least one NaN and one duplicate.
        let has_nan = a.iter().any(|e| match e {
            FleetEvent::Sample(dd) => dd.features.iter().any(|v| v.is_nan()),
            _ => false,
        });
        assert!(has_nan, "harsh dirt must produce NaN values");
        assert!(a.len() != clean.len(), "drops/dups must change the length");
    }

    #[test]
    fn zero_rates_are_an_identity() {
        let clean = clean_events();
        let cfg = DirtyConfig {
            seed: 5,
            drop_rate: 0.0,
            dup_rate: 0.0,
            stale_rate: 0.0,
            nan_rate: 0.0,
            garbage_rate: 0.0,
            stuck_rate: 0.0,
            flip_rate: 0.0,
        };
        let dirty = corrupt_events(&clean, &cfg);
        assert_eq!(format!("{dirty:?}"), format!("{clean:?}"));
    }

    #[test]
    fn different_seeds_give_different_dirt() {
        let clean = clean_events();
        let a = corrupt_events(&clean, &DirtyConfig::mild(1));
        let b = corrupt_events(&clean, &DirtyConfig::mild(2));
        assert_ne!(format!("{a:?}"), format!("{b:?}"));
    }
}
