//! Fleet-level simulation: install schedule, fate assignment, and the
//! chronological event stream.

use super::disk::{DiskState, Fate};
use super::{FleetConfig, ModelProfile};
use crate::record::{Dataset, DiskDay, DiskInfo};
use orfpred_util::Xoshiro256pp;

/// One event of the chronological fleet stream.
///
/// For each day, the stream emits every active disk's [`FleetEvent::Sample`]
/// (ascending `disk_id`), then a [`FleetEvent::Failure`] for each disk that
/// failed that day — mirroring how a monitoring daemon would observe the
/// fleet, and matching the input order Algorithm 2 of the paper expects.
#[derive(Clone, Debug)]
pub enum FleetEvent {
    /// Daily SMART snapshot.
    Sample(DiskDay),
    /// The disk stopped responding; its last snapshot was today's.
    Failure {
        /// Disk that failed.
        disk_id: u32,
        /// Day of failure.
        day: u16,
    },
}

/// Day-stepped fleet simulator; iterate it for the event stream or call
/// [`FleetSim::collect`] to materialise a [`Dataset`].
pub struct FleetSim {
    profile: ModelProfile,
    duration_days: u16,
    disks: Vec<DiskState>,
    day: u16,
    buffer: std::collections::VecDeque<FleetEvent>,
}

impl FleetSim {
    /// Build the fleet: sample install days, choose which disks fail, and
    /// assign fates. Deterministic in `cfg.seed`.
    pub fn new(cfg: &FleetConfig) -> Self {
        let master = Xoshiro256pp::seed_from_u64(cfg.seed);
        let mut setup = master.split(0);
        let n = cfg.n_disks();
        let p = &cfg.profile;
        let dur = f64::from(cfg.duration_days);

        // Install schedule: a block at day 0, the rest spread uniformly
        // (fleet growth — part of the drift the paper studies).
        let mut install_days: Vec<u16> = (0..n)
            .map(|_| {
                if setup.bernoulli(p.initial_fleet_fraction) {
                    0
                } else {
                    (setup.next_f64() * dur * p.install_span_fraction) as u16
                }
            })
            .collect();
        install_days.sort_unstable();

        // Which disks fail: sampled over the whole fleet, but a failing disk
        // needs ≥ 50 observed days so a symptom ramp fits inside its life.
        let mut failed_flags = vec![false; n];
        let mut assigned = 0usize;
        let mut guard = 0usize;
        while assigned < cfg.n_failed {
            let i = setup.index(n);
            let latest_ok = install_days[i] as u32 + 50 < u32::from(cfg.duration_days);
            if !failed_flags[i] && latest_ok {
                failed_flags[i] = true;
                assigned += 1;
            }
            guard += 1;
            assert!(
                guard < 100 * n.max(1),
                "cannot place {} failures in a {}-day window",
                cfg.n_failed,
                cfg.duration_days
            );
        }

        let disks: Vec<DiskState> = (0..n)
            .map(|i| {
                let install = install_days[i];
                let mut fate_rng = master.split(1 + i as u64);
                let fate = if failed_flags[i] {
                    // Failure day uniform over the feasible range.
                    let lo = u32::from(install) + 50;
                    let hi = u32::from(cfg.duration_days);
                    let fail_day = (lo + fate_rng.next_below(u64::from(hi - lo)) as u32) as u16;
                    Fate::sample_failure(&mut fate_rng, p, fail_day)
                } else {
                    Fate::Survive
                };
                DiskState::new(i as u32, install, fate, p, &master)
            })
            .collect();

        Self {
            profile: cfg.profile.clone(),
            duration_days: cfg.duration_days,
            disks,
            day: 0,
            buffer: std::collections::VecDeque::new(),
        }
    }

    /// Per-disk metadata (install/last day, failed flag) — available before
    /// simulation because fates are fixed at construction.
    pub fn disk_infos(&self) -> Vec<DiskInfo> {
        self.disks
            .iter()
            .map(|d| DiskInfo {
                disk_id: d.disk_id,
                install_day: d.install_day,
                last_day: d.fate.fail_day().unwrap_or(self.duration_days),
                failed: d.fate.fail_day().is_some(),
            })
            .collect()
    }

    /// Length of the observation window in days.
    pub fn duration_days(&self) -> u16 {
        self.duration_days
    }

    /// Disk model profile driving the simulation.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// Calendar-time ambient glitch multiplier (environment drift).
    fn env_glitch(&self, day: u16) -> f64 {
        1.0 + self.profile.env_drift * f64::from(day) / f64::from(self.duration_days.max(1))
    }

    /// Simulate one day, pushing its events into the buffer.
    fn step_day(&mut self) {
        let day = self.day;
        let env = self.env_glitch(day);
        let mut failures = Vec::new();
        for disk in &mut self.disks {
            if !disk.active(day) {
                continue;
            }
            let features = disk.step(day, &self.profile, env);
            self.buffer.push_back(FleetEvent::Sample(DiskDay {
                disk_id: disk.disk_id,
                day,
                features,
            }));
            if disk.fate.fail_day() == Some(day) {
                failures.push(disk.disk_id);
            }
        }
        for disk_id in failures {
            self.buffer.push_back(FleetEvent::Failure { disk_id, day });
        }
        self.day += 1;
    }

    /// Materialise the whole stream into a [`Dataset`].
    ///
    /// Only for `Tiny`/`Small` scales — the `Paper` scale produces tens of
    /// millions of rows and should be consumed as a stream.
    pub fn collect(cfg: &FleetConfig) -> Dataset {
        let mut sim = Self::new(cfg);
        let disks = sim.disk_infos();
        let mut records =
            Vec::with_capacity(disks.iter().map(|d| d.observed_days() as usize).sum());
        for ev in &mut sim {
            if let FleetEvent::Sample(rec) = ev {
                records.push(rec);
            }
        }
        let ds = Dataset {
            model: cfg.profile.name.clone(),
            duration_days: cfg.duration_days,
            records,
            disks,
        };
        debug_assert_eq!(ds.validate(), Ok(()));
        ds
    }
}

impl Iterator for FleetSim {
    type Item = FleetEvent;

    fn next(&mut self) -> Option<FleetEvent> {
        while self.buffer.is_empty() {
            if self.day > self.duration_days {
                return None;
            }
            self.step_day();
        }
        self.buffer.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ScalePreset;

    fn tiny_cfg() -> FleetConfig {
        let mut cfg = FleetConfig::sta(ScalePreset::Tiny, 7);
        cfg.duration_days = 200;
        cfg.n_good = 40;
        cfg.n_failed = 8;
        cfg
    }

    #[test]
    fn collect_produces_valid_dataset_with_requested_counts() {
        let cfg = tiny_cfg();
        let ds = FleetSim::collect(&cfg);
        ds.validate().unwrap();
        assert_eq!(ds.n_good(), 40);
        assert_eq!(ds.n_failed(), 8);
        assert_eq!(ds.disks.len(), 48);
        assert!(ds.n_records() > 40 * 100, "too few records");
    }

    #[test]
    fn stream_is_deterministic_in_seed() {
        let cfg = tiny_cfg();
        let a = FleetSim::collect(&cfg);
        let b = FleetSim::collect(&cfg);
        assert_eq!(a.n_records(), b.n_records());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.disk_id, y.disk_id);
            assert_eq!(x.day, y.day);
            assert_eq!(x.features, y.features);
        }
        let mut cfg2 = cfg;
        cfg2.seed = 8;
        let c = FleetSim::collect(&cfg2);
        assert!(
            a.records
                .iter()
                .zip(&c.records)
                .any(|(x, y)| x.features != y.features),
            "different seeds must differ"
        );
    }

    #[test]
    fn failure_events_match_disk_infos() {
        let cfg = tiny_cfg();
        let mut sim = FleetSim::new(&cfg);
        let infos = sim.disk_infos();
        let mut observed_failures = Vec::new();
        for ev in &mut sim {
            if let FleetEvent::Failure { disk_id, day } = ev {
                observed_failures.push((disk_id, day));
            }
        }
        let expected: Vec<(u32, u16)> = infos
            .iter()
            .filter(|d| d.failed)
            .map(|d| (d.disk_id, d.last_day))
            .collect();
        let mut sorted = observed_failures.clone();
        sorted.sort_unstable();
        let mut exp_sorted = expected.clone();
        exp_sorted.sort_unstable();
        assert_eq!(sorted, exp_sorted);
    }

    #[test]
    fn samples_arrive_in_day_then_disk_order() {
        let cfg = tiny_cfg();
        let sim = FleetSim::new(&cfg);
        let mut prev = (0u16, -1i64);
        for ev in sim {
            if let FleetEvent::Sample(r) = ev {
                let key = (r.day, i64::from(r.disk_id));
                assert!(key > prev, "ordering violated: {key:?} after {prev:?}");
                prev = key;
            }
        }
    }

    #[test]
    fn failed_disks_emit_sample_on_failure_day_and_none_after() {
        let cfg = tiny_cfg();
        let ds = FleetSim::collect(&cfg);
        for d in ds.disks.iter().filter(|d| d.failed) {
            let days: Vec<u16> = ds.disk_records(d.disk_id).map(|r| r.day).collect();
            assert_eq!(*days.last().unwrap(), d.last_day);
            assert_eq!(days.len() as u32, d.observed_days());
        }
    }

    #[test]
    fn sta_and_stb_presets_match_table1_ratios() {
        for preset in [
            ScalePreset::Tiny,
            ScalePreset::Small,
            ScalePreset::Medium,
            ScalePreset::Paper,
        ] {
            let sta = FleetConfig::sta(preset, 1);
            let ratio = sta.n_good as f64 / sta.n_failed as f64;
            assert!((15.0..20.0).contains(&ratio), "STA ratio {ratio}");
            let stb = FleetConfig::stb(preset, 1);
            let ratio = stb.n_good as f64 / stb.n_failed as f64;
            assert!((1.9..2.4).contains(&ratio), "STB ratio {ratio}");
        }
        assert_eq!(FleetConfig::sta(ScalePreset::Paper, 1).n_good, 34_535);
        assert_eq!(FleetConfig::stb(ScalePreset::Paper, 1).n_failed, 1_357);
    }
}
