//! Synthetic SMART fleet simulator.
//!
//! Replaces the Backblaze field data (see `DESIGN.md` §2 for the
//! substitution argument). The simulator is a seeded, day-stepped model of a
//! disk population:
//!
//! * disks are installed in **batches** over calendar time (the fleet grows,
//!   as Backblaze's did), and each batch carries slightly shifted baselines —
//!   one of the drift mechanisms behind model aging;
//! * every disk accrues **cumulative attributes** (Power-On Hours, Load
//!   Cycle Count, Power Cycle Count, LBA counters) whose population
//!   distribution therefore moves month over month — the root cause the
//!   paper identifies for offline-model decay;
//! * failed disks follow one of two **failure modes**: *symptomatic*
//!   failures develop a days-to-weeks ramp in the reallocated / pending /
//!   reported-uncorrectable sector counters before dying, while *sudden*
//!   failures (mechanical/electronic) show no SMART signature — these bound
//!   FDR below 100 % exactly as the paper's footnote 1 describes;
//! * healthy disks produce benign error blips, a "grumpy but stable"
//!   sub-population, and slow wear-driven error accumulation, which together
//!   create realistic false-alarm pressure that grows with fleet age.

mod dirty;
mod disk;
mod fleet;
mod mce;
mod profile;

pub use dirty::{corrupt_events, DirtyConfig};
pub use disk::{DiskState, Fate};
pub use fleet::{FleetEvent, FleetSim};
pub use mce::{MceFleetConfig, MceSim};
pub use profile::ModelProfile;

use serde::{Deserialize, Serialize};

/// Population scale presets.
///
/// Every preset keeps the good:failed disk ratio of Table 1 so the FDR/FAR
/// *shapes* survive down-scaling; only the absolute population (and hence
/// runtime/memory and statistical resolution) changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalePreset {
    /// A few hundred disks — unit/integration tests.
    Tiny,
    /// ~1/20 of the paper's population — default for the repro harness.
    Small,
    /// ~1/5 of the paper's population — used for the long-term figures,
    /// where monthly per-strategy FDR needs enough failures per month.
    Medium,
    /// Full Table 1 counts (34 535 + 1 996 disks for STA). Heavy: tens of
    /// millions of snapshots; stream it, do not `collect` it.
    Paper,
}

/// Configuration of one simulated fleet (one disk model).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Behavioural profile of the disk model.
    pub profile: ModelProfile,
    /// Number of disks that survive the observation window.
    pub n_good: usize,
    /// Number of disks that fail inside the observation window.
    pub n_failed: usize,
    /// Length of the observation window in days.
    pub duration_days: u16,
    /// Master seed; all per-disk streams derive from it.
    pub seed: u64,
}

impl FleetConfig {
    /// Dataset "STA" (ST4000DM000-like, 39 months — Table 1).
    pub fn sta(preset: ScalePreset, seed: u64) -> Self {
        let (n_good, n_failed) = match preset {
            ScalePreset::Tiny => (260, 15),
            ScalePreset::Small => (1_727, 100),
            ScalePreset::Medium => (6_907, 399),
            ScalePreset::Paper => (34_535, 1_996),
        };
        Self {
            profile: ModelProfile::st4000dm000(),
            n_good,
            n_failed,
            duration_days: 39 * 30,
            seed,
        }
    }

    /// Dataset "STB" (ST3000DM001-like, 20 months — Table 1).
    pub fn stb(preset: ScalePreset, seed: u64) -> Self {
        let (n_good, n_failed) = match preset {
            ScalePreset::Tiny => (130, 60),
            ScalePreset::Small => (725, 339),
            ScalePreset::Medium => (1_449, 679),
            ScalePreset::Paper => (2_898, 1_357),
        };
        Self {
            profile: ModelProfile::st3000dm001(),
            n_good,
            n_failed,
            duration_days: 20 * 30,
            seed,
        }
    }

    /// Total number of disks in the fleet.
    pub fn n_disks(&self) -> usize {
        self.n_good + self.n_failed
    }
}
