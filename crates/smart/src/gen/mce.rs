//! Synthetic mcelog-style correctable-memory-error fleet simulator: the
//! second telemetry domain the stack ships end to end.
//!
//! Models a population of DIMMs reporting daily counter snapshots in the
//! [`DomainSchema::mce`] layout (8 attributes → 16 base columns, normalized
//! interleaved with raw, exactly like the SMART layout). The failure story
//! mirrors what memory-reliability studies report: a failing DIMM's
//! correctable-error *rate* accelerates over its final weeks (often with row
//! remaps and widening bank spread) before the first uncorrectable error
//! kills it, while healthy DIMMs emit a low background CE trickle that
//! scales with temperature and age.
//!
//! The event stream contract is identical to [`FleetSim`]'s: for each day,
//! every active device's [`FleetEvent::Sample`] in ascending device id, then
//! a [`FleetEvent::Failure`] per device that died that day. Determinism in
//! the seed is total — the whole Algorithm 2 stack (prep, window stage,
//! labeller, ORF, serve engine) runs on this stream unchanged.
//!
//! [`DomainSchema::mce`]: crate::schema::DomainSchema::mce

use super::fleet::FleetEvent;
use super::ScalePreset;
use crate::record::{Dataset, DiskDay, DiskInfo};
use crate::schema::DomainSchema;
use orfpred_util::Xoshiro256pp;

/// Configuration of the MCE fleet.
#[derive(Clone, Debug)]
pub struct MceFleetConfig {
    /// Devices that survive the observation window.
    pub n_good: usize,
    /// Devices that fail inside the window.
    pub n_failed: usize,
    /// Observation window length in days.
    pub duration_days: u16,
    /// Master seed; everything derives from it.
    pub seed: u64,
}

impl MceFleetConfig {
    /// Preset populations per scale, keeping a Table 1-like good:failed
    /// ratio so alarm-rate shapes survive down-scaling.
    pub fn preset(preset: ScalePreset, seed: u64) -> Self {
        let (n_good, n_failed, duration_days) = match preset {
            ScalePreset::Tiny => (60, 6, 180),
            ScalePreset::Small => (600, 40, 365),
            ScalePreset::Medium => (6_000, 400, 365),
            ScalePreset::Paper => (30_000, 1_800, 365),
        };
        Self {
            n_good,
            n_failed,
            duration_days,
            seed,
        }
    }

    /// Total device count.
    pub fn n_devices(&self) -> usize {
        self.n_good + self.n_failed
    }
}

/// Per-device simulation state.
struct DeviceState {
    device_id: u32,
    install_day: u16,
    /// Day the first uncorrectable error kills the device; `None` survives.
    fail_day: Option<u16>,
    rng: Xoshiro256pp,
    /// Background correctable-error rate per hour (device lottery).
    base_ce_rate: f64,
    /// Ambient temperature baseline in °C.
    base_temp: f64,
    /// Cumulative counters carried day to day.
    corrected: f64,
    scrub_corrections: f64,
    row_remaps: f64,
    uncorrected: f64,
}

impl DeviceState {
    fn active(&self, day: u16) -> bool {
        day >= self.install_day && self.fail_day.is_none_or(|f| day <= f)
    }

    /// Days until death, or `u16::MAX` for survivors.
    fn days_left(&self, day: u16) -> u16 {
        self.fail_day.map_or(u16::MAX, |f| f.saturating_sub(day))
    }
}

/// Day-stepped MCE fleet simulator; iterate for the event stream or call
/// [`MceSim::collect`] to materialise a [`Dataset`].
pub struct MceSim {
    schema: DomainSchema,
    duration_days: u16,
    devices: Vec<DeviceState>,
    day: u16,
    buffer: std::collections::VecDeque<FleetEvent>,
}

/// Length of a failing device's CE-rate acceleration ramp in days.
const RAMP_DAYS: u16 = 21;

impl MceSim {
    /// Build the fleet. Deterministic in `cfg.seed`.
    pub fn new(cfg: &MceFleetConfig) -> Self {
        let master = Xoshiro256pp::seed_from_u64(cfg.seed ^ 0x6d63_655f_646f_6d21);
        let mut setup = master.split(0);
        let n = cfg.n_devices();
        let dur = f64::from(cfg.duration_days);

        // Install schedule: most of the fleet at day 0, stragglers spread
        // over the first third of the window.
        let mut install_days: Vec<u16> = (0..n)
            .map(|_| {
                if setup.bernoulli(0.7) {
                    0
                } else {
                    (setup.next_f64() * dur / 3.0) as u16
                }
            })
            .collect();
        install_days.sort_unstable();

        // Which devices fail: each needs the full ramp plus some healthy
        // history inside its observed life.
        let mut failed_flags = vec![false; n];
        let mut assigned = 0usize;
        let mut guard = 0usize;
        while assigned < cfg.n_failed {
            let i = setup.index(n);
            let room = u32::from(install_days[i]) + u32::from(RAMP_DAYS) + 14;
            if !failed_flags[i] && room < u32::from(cfg.duration_days) {
                failed_flags[i] = true;
                assigned += 1;
            }
            guard += 1;
            assert!(
                guard < 100 * n.max(1),
                "cannot place {} DIMM failures in a {}-day window",
                cfg.n_failed,
                cfg.duration_days
            );
        }

        let devices: Vec<DeviceState> = (0..n)
            .map(|i| {
                let install = install_days[i];
                let mut rng = master.split(1 + i as u64);
                let fail_day = if failed_flags[i] {
                    let lo = u32::from(install) + u32::from(RAMP_DAYS) + 14;
                    let hi = u32::from(cfg.duration_days);
                    Some((lo + rng.next_below(u64::from(hi - lo)) as u32) as u16)
                } else {
                    None
                };
                DeviceState {
                    device_id: i as u32,
                    install_day: install,
                    fail_day,
                    base_ce_rate: rng.range_f64(0.005, 0.5),
                    base_temp: rng.range_f64(35.0, 55.0),
                    rng,
                    corrected: 0.0,
                    scrub_corrections: 0.0,
                    row_remaps: 0.0,
                    uncorrected: 0.0,
                }
            })
            .collect();

        Self {
            schema: DomainSchema::mce(),
            duration_days: cfg.duration_days,
            devices,
            day: 0,
            buffer: std::collections::VecDeque::new(),
        }
    }

    /// Per-device metadata (install/last day, failed flag), fixed at
    /// construction — the roster the store and eval harnesses consume.
    pub fn disk_infos(&self) -> Vec<DiskInfo> {
        self.devices
            .iter()
            .map(|d| DiskInfo {
                disk_id: d.device_id,
                install_day: d.install_day,
                last_day: d.fail_day.unwrap_or(self.duration_days),
                failed: d.fail_day.is_some(),
            })
            .collect()
    }

    /// The domain schema the emitted rows follow.
    pub fn schema(&self) -> &DomainSchema {
        &self.schema
    }

    /// Length of the observation window in days.
    pub fn duration_days(&self) -> u16 {
        self.duration_days
    }

    /// Simulate one day, pushing its events into the buffer.
    fn step_day(&mut self) {
        let day = self.day;
        let n_base = self.schema.n_base_features();
        let mut failures = Vec::new();
        for dev in &mut self.devices {
            if !dev.active(day) {
                continue;
            }
            let left = dev.days_left(day);
            // CE-rate acceleration over the final ramp: exponential in the
            // remaining days, the signature the windowed features catch.
            let ramp = if left < RAMP_DAYS {
                (f64::from(RAMP_DAYS - left) / f64::from(RAMP_DAYS) * 5.0).exp()
            } else {
                1.0
            };
            let temp = dev.base_temp + 6.0 * (dev.rng.next_f64() - 0.5);
            let temp_factor = 1.0 + ((temp - 45.0) / 20.0).max(0.0);
            let ce_rate = dev.base_ce_rate * ramp * temp_factor * dev.rng.range_f64(0.6, 1.4);
            dev.corrected += ce_rate * 24.0;
            dev.scrub_corrections += ce_rate * 24.0 * dev.rng.range_f64(0.05, 0.15);
            // Row remaps and bank spread grow only on the ramp.
            if left < RAMP_DAYS && dev.rng.bernoulli(0.25) {
                dev.row_remaps += 1.0;
            }
            let bank_spread = if left < RAMP_DAYS {
                (2.0 + f64::from(RAMP_DAYS - left) * 1.5).min(64.0)
            } else if dev.corrected > 0.5 {
                1.0
            } else {
                0.0
            };
            // The first (and usually last) uncorrectable errors arrive on
            // the final days and kill the device.
            if left <= 2 {
                dev.uncorrected += dev.rng.range_f64(0.5, 2.0).round();
            }
            let uptime_hours = f64::from(day - dev.install_day + 1) * 24.0;

            let mut features = vec![0.0f32; n_base];
            // (raw value, normalized-scale ceiling) per attribute, in
            // schema order; normalized mimics a 100-to-1 health score.
            let attrs: [(f64, f64); 8] = [
                (dev.corrected, 1.0e6),
                (dev.uncorrected, 10.0),
                (dev.scrub_corrections, 1.0e5),
                (dev.row_remaps, 50.0),
                (bank_spread, 64.0),
                (ce_rate, 1.0e3),
                (temp, 150.0),
                (uptime_hours, 1.0e5),
            ];
            for (i, (raw, ceil)) in attrs.iter().enumerate() {
                let health = 100.0 - 99.0 * (raw / ceil).min(1.0);
                features[2 * i] = health as f32;
                features[2 * i + 1] = *raw as f32;
            }
            self.buffer.push_back(FleetEvent::Sample(DiskDay {
                disk_id: dev.device_id,
                day,
                features,
            }));
            if dev.fail_day == Some(day) {
                failures.push(dev.device_id);
            }
        }
        for disk_id in failures {
            self.buffer.push_back(FleetEvent::Failure { disk_id, day });
        }
        self.day += 1;
    }

    /// Materialise the whole stream into a [`Dataset`] (base-width rows;
    /// run [`WindowStage::extend_records`] for the derived columns).
    ///
    /// [`WindowStage::extend_records`]: crate::window::WindowStage::extend_records
    pub fn collect(cfg: &MceFleetConfig) -> Dataset {
        let mut sim = Self::new(cfg);
        let disks = sim.disk_infos();
        let mut records = Vec::new();
        for ev in &mut sim {
            if let FleetEvent::Sample(rec) = ev {
                records.push(rec);
            }
        }
        let ds = Dataset {
            model: "MCE-DIMM".to_string(),
            duration_days: cfg.duration_days,
            records,
            disks,
        };
        debug_assert_eq!(ds.validate(), Ok(()));
        ds
    }
}

impl Iterator for MceSim {
    type Item = FleetEvent;

    fn next(&mut self) -> Option<FleetEvent> {
        while self.buffer.is_empty() {
            if self.day > self.duration_days {
                return None;
            }
            self.step_day();
        }
        self.buffer.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> MceFleetConfig {
        let mut cfg = MceFleetConfig::preset(ScalePreset::Tiny, 11);
        cfg.n_good = 30;
        cfg.n_failed = 5;
        cfg.duration_days = 120;
        cfg
    }

    #[test]
    fn collect_produces_valid_mce_width_dataset() {
        let cfg = tiny_cfg();
        let ds = MceSim::collect(&cfg);
        ds.validate().unwrap();
        assert_eq!(ds.n_good(), 30);
        assert_eq!(ds.n_failed(), 5);
        let width = DomainSchema::mce().n_base_features();
        assert!(ds.records.iter().all(|r| r.features.len() == width));
    }

    #[test]
    fn stream_is_deterministic_in_seed_and_ordered() {
        let cfg = tiny_cfg();
        let a: Vec<FleetEvent> = MceSim::new(&cfg).collect();
        let b: Vec<FleetEvent> = MceSim::new(&cfg).collect();
        assert_eq!(a.len(), b.len());
        let mut prev = (0u16, -1i64);
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (FleetEvent::Sample(p), FleetEvent::Sample(q)) => {
                    assert_eq!(p.disk_id, q.disk_id);
                    assert_eq!(p.day, q.day);
                    for (fa, fb) in p.features.iter().zip(q.features.iter()) {
                        assert_eq!(fa.to_bits(), fb.to_bits());
                    }
                    let key = (p.day, i64::from(p.disk_id));
                    assert!(key > prev, "sample order violated");
                    prev = key;
                }
                (
                    FleetEvent::Failure {
                        disk_id: da,
                        day: ya,
                    },
                    FleetEvent::Failure {
                        disk_id: db,
                        day: yb,
                    },
                ) => assert_eq!((da, ya), (db, yb)),
                _ => panic!("event kind mismatch between identical seeds"),
            }
        }
    }

    #[test]
    fn failing_devices_ramp_their_ce_rate() {
        let cfg = tiny_cfg();
        let ds = MceSim::collect(&cfg);
        let schema = DomainSchema::mce();
        let rate_col = schema
            .feature_index(6, crate::attrs::FeatureKind::Raw)
            .unwrap();
        for d in ds.disks.iter().filter(|d| d.failed) {
            let rates: Vec<f32> = ds
                .disk_records(d.disk_id)
                .map(|r| r.features[rate_col])
                .collect();
            assert!(rates.len() >= usize::from(RAMP_DAYS));
            let early: f32 = rates[..5].iter().sum::<f32>() / 5.0;
            let late: f32 = rates[rates.len() - 3..].iter().sum::<f32>() / 3.0;
            assert!(
                late > early * 10.0,
                "device {}: late rate {late} vs early {early}",
                d.disk_id
            );
        }
    }

    #[test]
    fn uncorrected_errors_only_appear_near_death() {
        let cfg = tiny_cfg();
        let ds = MceSim::collect(&cfg);
        let schema = DomainSchema::mce();
        let ue_col = schema
            .feature_index(2, crate::attrs::FeatureKind::Raw)
            .unwrap();
        for d in &ds.disks {
            for r in ds.disk_records(d.disk_id) {
                let ue = r.features[ue_col];
                if d.failed && r.day + 2 >= d.last_day {
                    continue; // the kill window may hold UEs
                }
                assert_eq!(ue, 0.0, "device {} day {} has early UEs", d.disk_id, r.day);
            }
        }
    }

    #[test]
    fn failure_events_match_disk_infos() {
        let cfg = tiny_cfg();
        let mut sim = MceSim::new(&cfg);
        let infos = sim.disk_infos();
        let mut failures = Vec::new();
        for ev in &mut sim {
            if let FleetEvent::Failure { disk_id, day } = ev {
                failures.push((disk_id, day));
            }
        }
        failures.sort_unstable();
        let mut expected: Vec<(u32, u16)> = infos
            .iter()
            .filter(|d| d.failed)
            .map(|d| (d.disk_id, d.last_day))
            .collect();
        expected.sort_unstable();
        assert_eq!(failures, expected);
    }
}
