//! Behavioural profiles of the simulated disk models.

use serde::{Deserialize, Serialize};

/// Tunable behaviour of one disk model.
///
/// The two built-in profiles are calibrated so the reproduction lands in the
/// paper's reported bands: STA (ST4000DM000) is the "well-behaved" 4 TB
/// model where FDR reaches 93–99 % at FAR ≈ 1 %, STB (ST3000DM001) is the
/// notoriously unreliable 3 TB model where the best reported FDR is ≈ 85 %.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Model string used in CSV output.
    pub name: String,
    /// Capacity in TB (metadata only).
    pub capacity_tb: u32,
    /// Fraction of failures with no SMART signature at all
    /// (mechanical/electronic — the paper's "unpredictable failures").
    pub sudden_failure_fraction: f64,
    /// Fraction of symptomatic failures whose ramp is faint (hard to
    /// separate from benign glitches).
    pub weak_symptom_fraction: f64,
    /// Severity multiplier applied to weak ramps (1.0 = as strong as a
    /// normal ramp; smaller = fainter).
    pub weak_severity: f64,
    /// Mean length of the pre-failure symptom ramp, in days.
    pub ramp_mean_days: f64,
    /// Baseline intensity of the symptom ramp (expected daily error-counter
    /// increments at ramp end, before per-disk variation).
    pub symptom_intensity: f64,
    /// Per-day probability of a benign error blip on a healthy disk.
    pub glitch_rate: f64,
    /// Fraction of healthy disks with chronically elevated (but stable)
    /// error counters.
    pub grumpy_fraction: f64,
    /// Age-driven benign error accumulation: expected reallocated sectors
    /// per disk-year of age — a key drift mechanism (old healthy disks start
    /// to resemble what young failing disks looked like).
    pub wear_error_rate: f64,
    /// Mean head load/unload cycles per day.
    pub load_cycles_per_day: f64,
    /// Expected power cycles per 100 days.
    pub power_cycles_per_100d: f64,
    /// Strength of batch-to-batch baseline shifts (0 = identical batches).
    pub batch_drift: f64,
    /// Calendar-time intensification of ambient glitch rates over the whole
    /// window (0 = stationary environment).
    pub env_drift: f64,
    /// Fraction of the fleet already installed on day 0.
    pub initial_fleet_fraction: f64,
    /// Remaining installs arrive uniformly over this fraction of the window.
    pub install_span_fraction: f64,
    /// Mean disk temperature in °C.
    pub temp_mean: f64,
    /// Relative prevalence of the six latent failure modes (media wear-out,
    /// head degradation, uncorrectable cascade, interface/firmware, offline
    /// surface defects, mixed).
    pub mode_weights: [f64; 6],
}

impl ModelProfile {
    /// ST4000DM000-like profile (dataset "STA").
    pub fn st4000dm000() -> Self {
        Self {
            name: "ST4000DM000".into(),
            capacity_tb: 4,
            sudden_failure_fraction: 0.04,
            weak_symptom_fraction: 0.06,
            weak_severity: 0.15,
            ramp_mean_days: 16.0,
            symptom_intensity: 6.5,
            glitch_rate: 2.0e-5,
            grumpy_fraction: 0.02,
            wear_error_rate: 0.8,
            load_cycles_per_day: 9.0,
            power_cycles_per_100d: 1.2,
            batch_drift: 0.5,
            env_drift: 0.8,
            initial_fleet_fraction: 0.35,
            install_span_fraction: 0.7,
            temp_mean: 26.0,
            mode_weights: [0.30, 0.15, 0.22, 0.10, 0.13, 0.10],
        }
    }

    /// ST3000DM001-like profile (dataset "STB").
    ///
    /// Higher failure rate, more sudden failures, fainter ramps, noisier
    /// healthy population — all consistent with the published reliability
    /// record of this model and with the paper's lower FDR (~85 %).
    pub fn st3000dm001() -> Self {
        Self {
            name: "ST3000DM001".into(),
            capacity_tb: 3,
            sudden_failure_fraction: 0.11,
            weak_symptom_fraction: 0.16,
            weak_severity: 0.35,
            ramp_mean_days: 11.0,
            symptom_intensity: 4.8,
            glitch_rate: 4.0e-5,
            grumpy_fraction: 0.02,
            wear_error_rate: 2.0,
            load_cycles_per_day: 14.0,
            power_cycles_per_100d: 1.8,
            batch_drift: 0.7,
            env_drift: 1.0,
            initial_fleet_fraction: 0.5,
            install_span_fraction: 0.6,
            temp_mean: 27.5,
            // The ST3000DM001's notorious head-related failures dominate.
            mode_weights: [0.20, 0.30, 0.18, 0.12, 0.10, 0.10],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_sane() {
        for p in [ModelProfile::st4000dm000(), ModelProfile::st3000dm001()] {
            assert!(p.sudden_failure_fraction > 0.0 && p.sudden_failure_fraction < 0.5);
            assert!(p.weak_symptom_fraction < 0.5);
            assert!(p.ramp_mean_days > 3.0);
            assert!(p.initial_fleet_fraction > 0.0 && p.initial_fleet_fraction <= 1.0);
            assert!(p.install_span_fraction > 0.0 && p.install_span_fraction <= 1.0);
        }
    }

    #[test]
    fn stb_is_harder_than_sta() {
        let sta = ModelProfile::st4000dm000();
        let stb = ModelProfile::st3000dm001();
        assert!(stb.sudden_failure_fraction > sta.sudden_failure_fraction);
        assert!(stb.symptom_intensity < sta.symptom_intensity);
        assert!(stb.glitch_rate > sta.glitch_rate);
    }
}
