//! Runtime domain schema: a serializable description of what one telemetry
//! row contains, replacing the old compile-time `N_ATTRIBUTES`/`N_FEATURES`
//! layout so the same ORF/labeller/serve/store stack handles non-SMART
//! domains (e.g. mcelog-style correctable-error streams).
//!
//! A [`DomainSchema`] has two halves:
//!
//! 1. **Attributes** ([`AttrSpec`]): the per-device counters/gauges the
//!    telemetry source reports. Every attribute contributes two *base*
//!    feature columns in the universal interleaved layout — column
//!    `2 * attr_index` is the **normalized** (health-score-like) value,
//!    `2 * attr_index + 1` the **raw** value — exactly the layout
//!    `crate::attrs` hard-wired for SMART, now computed per domain.
//! 2. **Derived-feature plan** ([`DerivedPlan`]): sliding-window sequence
//!    features (per-attribute delta, rolling mean, rolling std over a
//!    configurable window, default 5 days) appended *after* the base
//!    columns. The plan only names base columns; [`crate::window`] computes
//!    the values incrementally per disk.
//!
//! The concrete feature count and column layout are therefore *computed*:
//! `n_features() = 2 * attributes.len() + derived.n_derived()`. A schema
//! also has a deterministic [`fingerprint`](DomainSchema::fingerprint) that
//! the store embeds in every segment footer and that checkpoints carry, so
//! mixed-schema data paths fail with typed errors instead of silent
//! misalignment.

use crate::attrs::{FeatureKind, ATTRIBUTES};
use serde::{Deserialize, Serialize};

/// Static description of one telemetry attribute in a domain.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttrSpec {
    /// Domain-specific numeric identifier (the SMART ID for disks, a
    /// counter index for MCE streams).
    pub id: u16,
    /// Human-readable name.
    pub name: String,
    /// True for attributes that accumulate monotonically over a device's
    /// life — the model-aging drivers the paper identifies.
    pub cumulative: bool,
    /// Lower bound of plausible raw values (used by prep range rules).
    pub min_plausible: f32,
    /// Upper bound of plausible raw values (used by prep range rules).
    pub max_plausible: f32,
}

/// Which window statistic a derived column carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DerivedKind {
    /// Day-over-day difference of the base column (0 on a disk's first row).
    Delta,
    /// Rolling mean of the base column over the window (including today).
    Mean,
    /// Rolling population standard deviation over the window.
    Std,
}

impl DerivedKind {
    /// Short suffix used in feature names (`delta`, `mean`, `std`).
    pub fn suffix(self) -> &'static str {
        match self {
            DerivedKind::Delta => "delta",
            DerivedKind::Mean => "mean",
            DerivedKind::Std => "std",
        }
    }
}

/// Sliding-window derived-feature plan. The default plan is *empty*
/// (`cols` names no base columns), which makes the derived stage a strict
/// no-op — the property that keeps the SMART domain bit-exact with the
/// pre-schema pipeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DerivedPlan {
    /// Window length in days (history rows per disk, including today).
    pub window_days: u16,
    /// Emit a day-over-day delta column per selected base column.
    pub delta: bool,
    /// Emit a rolling-mean column per selected base column.
    pub mean: bool,
    /// Emit a rolling-std column per selected base column.
    pub std: bool,
    /// Base feature columns the plan applies to (each must be
    /// `< n_base_features()`); empty disables the stage entirely.
    pub cols: Vec<usize>,
}

impl Default for DerivedPlan {
    fn default() -> Self {
        Self {
            window_days: 5,
            delta: true,
            mean: true,
            std: true,
            cols: Vec::new(),
        }
    }
}

impl DerivedPlan {
    /// True when the plan produces no derived columns at all.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty() || self.stats_per_col() == 0
    }

    /// Derived columns produced per selected base column.
    pub fn stats_per_col(&self) -> usize {
        usize::from(self.delta) + usize::from(self.mean) + usize::from(self.std)
    }

    /// Total derived columns the plan produces.
    pub fn n_derived(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            self.cols.len() * self.stats_per_col()
        }
    }

    /// The statistics emitted per column, in layout order.
    pub fn kinds(&self) -> Vec<DerivedKind> {
        let mut k = Vec::with_capacity(3);
        if self.delta {
            k.push(DerivedKind::Delta);
        }
        if self.mean {
            k.push(DerivedKind::Mean);
        }
        if self.std {
            k.push(DerivedKind::Std);
        }
        k
    }
}

/// What a single feature column holds, per the schema.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnRole {
    /// Base column: `(attribute index, normalized-or-raw)`.
    Base(usize, FeatureKind),
    /// Derived column: `(base column it derives from, statistic)`.
    Derived(usize, DerivedKind),
}

/// A runtime telemetry-domain description: attributes plus derived plan,
/// from which the feature count and column layout are computed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DomainSchema {
    /// Domain name (`"smart"`, `"mce"`); also the feature-name prefix.
    pub name: String,
    /// Attribute catalog in column order.
    pub attributes: Vec<AttrSpec>,
    /// Sliding-window derived-feature plan.
    pub derived: DerivedPlan,
}

impl DomainSchema {
    /// The implicit disk-SMART domain: the exact 24-attribute catalog and
    /// 48-column layout of `crate::attrs`, with an empty derived plan.
    /// Bit-exact with the pre-schema pipeline by construction.
    pub fn smart() -> Self {
        DomainSchema {
            name: "smart".to_string(),
            attributes: ATTRIBUTES
                .iter()
                .map(|a| AttrSpec {
                    id: a.id,
                    name: a.name.to_string(),
                    cumulative: a.cumulative,
                    min_plausible: 0.0,
                    // Effectively unbounded. Deliberately finite: the JSON
                    // layer maps non-finite floats to null, which would not
                    // round-trip through checkpoints and store manifests.
                    max_plausible: f32::MAX,
                })
                .collect(),
            derived: DerivedPlan::default(),
        }
    }

    /// The SMART domain with the default windowed plan applied to the raw
    /// columns of the symptom counters (realloc/pending/187/198) — the
    /// `lstm_5day`-style framing over the attributes that actually ramp.
    pub fn smart_windowed() -> Self {
        let mut s = Self::smart();
        s.name = "smart-windowed".to_string();
        let mut cols = Vec::new();
        for id in [5u16, 197, 187, 198] {
            if let Some(c) = s.feature_index(id, FeatureKind::Raw) {
                cols.push(c);
            }
        }
        s.derived.cols = cols;
        s
    }

    /// An mcelog-style correctable-memory-error domain: 8 DIMM-level
    /// counters/gauges with the default 5-day windowed plan over the
    /// error-rate raw columns. The second domain the stack ships end to end.
    pub fn mce() -> Self {
        let attr = |id: u16, name: &str, cumulative: bool, hi: f32| AttrSpec {
            id,
            name: name.to_string(),
            cumulative,
            min_plausible: 0.0,
            max_plausible: hi,
        };
        let attributes = vec![
            attr(1, "Corrected Errors", true, 1.0e9),
            attr(2, "Uncorrected Errors", true, 1.0e6),
            attr(3, "Patrol Scrub Corrections", true, 1.0e9),
            attr(4, "Row Remaps", true, 1.0e5),
            attr(5, "Bank Error Spread", false, 64.0),
            attr(6, "CE Rate Per Hour", false, 1.0e7),
            attr(7, "DIMM Temperature", false, 150.0),
            attr(8, "Uptime Hours", true, 1.0e6),
        ];
        let mut schema = DomainSchema {
            name: "mce".to_string(),
            attributes,
            derived: DerivedPlan::default(),
        };
        // Window the raw columns of the error counters and the CE rate —
        // the channels where a failing DIMM's acceleration lives.
        let mut cols = Vec::new();
        for id in [1u16, 2, 3, 6] {
            if let Some(c) = schema.feature_index(id, FeatureKind::Raw) {
                cols.push(c);
            }
        }
        schema.derived.cols = cols;
        schema
    }

    /// Parse a `--domain` CLI value.
    pub fn for_domain(name: &str) -> Option<DomainSchema> {
        match name {
            "smart" => Some(Self::smart()),
            "smart-windowed" => Some(Self::smart_windowed()),
            "mce" => Some(Self::mce()),
            _ => None,
        }
    }

    /// Number of attributes.
    pub fn n_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Number of base feature columns (normalized + raw per attribute).
    pub fn n_base_features(&self) -> usize {
        2 * self.attributes.len()
    }

    /// Total feature columns: base plus derived.
    pub fn n_features(&self) -> usize {
        self.n_base_features() + self.derived.n_derived()
    }

    /// Index of the attribute with the given id, if present.
    pub fn attr_index(&self, id: u16) -> Option<usize> {
        self.attributes.iter().position(|a| a.id == id)
    }

    /// Base feature column for `(id, kind)`, if the attribute exists.
    pub fn feature_index(&self, id: u16, kind: FeatureKind) -> Option<usize> {
        self.attr_index(id).map(|i| match kind {
            FeatureKind::Normalized => 2 * i,
            FeatureKind::Raw => 2 * i + 1,
        })
    }

    /// What feature column `col < n_features()` holds.
    pub fn column_role(&self, col: usize) -> ColumnRole {
        let base = self.n_base_features();
        assert!(col < self.n_features(), "feature index {col} out of range");
        if col < base {
            let kind = if col.is_multiple_of(2) {
                FeatureKind::Normalized
            } else {
                FeatureKind::Raw
            };
            ColumnRole::Base(col / 2, kind)
        } else {
            let kinds = self.derived.kinds();
            let per = kinds.len();
            let d = col - base;
            ColumnRole::Derived(self.derived.cols[d / per], kinds[d % per])
        }
    }

    /// Whether the value in `col` accumulates monotonically over a device's
    /// life (derived columns never do — deltas and window statistics of a
    /// cumulative counter are stationary).
    pub fn column_cumulative(&self, col: usize) -> bool {
        match self.column_role(col) {
            ColumnRole::Base(attr, _) => self.attributes[attr].cumulative,
            ColumnRole::Derived(..) => false,
        }
    }

    /// Human-readable label for a feature column, e.g. `smart_187_raw` or
    /// `mce_1_raw_mean5`.
    pub fn feature_name(&self, col: usize) -> String {
        match self.column_role(col) {
            ColumnRole::Base(attr, kind) => {
                let suffix = match kind {
                    FeatureKind::Normalized => "normalized",
                    FeatureKind::Raw => "raw",
                };
                format!("{}_{}_{}", self.name, self.attributes[attr].id, suffix)
            }
            ColumnRole::Derived(base_col, kind) => format!(
                "{}_{}{}",
                self.feature_name(base_col),
                kind.suffix(),
                self.derived.window_days
            ),
        }
    }

    /// Structural validity: at least one attribute, unique ids, a sane
    /// window, and derived columns that point inside the base layout.
    pub fn validate(&self) -> Result<(), String> {
        if self.attributes.is_empty() {
            return Err("schema has no attributes".into());
        }
        for (i, a) in self.attributes.iter().enumerate() {
            if self.attributes[..i].iter().any(|b| b.id == a.id) {
                return Err(format!("duplicate attribute id {}", a.id));
            }
            if !a.min_plausible.is_finite() || !a.max_plausible.is_finite() {
                // Non-finite bounds would not survive the JSON layer
                // (serialized as null, read back as NaN).
                return Err(format!(
                    "attribute {} has a non-finite plausible bound",
                    a.id
                ));
            }
            if a.min_plausible > a.max_plausible {
                return Err(format!("attribute {} has an empty plausible range", a.id));
            }
        }
        if !self.derived.cols.is_empty() && self.derived.window_days == 0 {
            return Err("derived plan window must be at least 1 day".into());
        }
        let base = self.n_base_features();
        for &c in &self.derived.cols {
            if c >= base {
                return Err(format!("derived plan references column {c} >= {base}"));
            }
        }
        for (i, &c) in self.derived.cols.iter().enumerate() {
            if self.derived.cols[..i].contains(&c) {
                return Err(format!("derived plan lists column {c} twice"));
            }
        }
        Ok(())
    }

    /// Deterministic 64-bit fingerprint of the schema (FNV-1a over a
    /// canonical rendering). Embedded in store segment footers and
    /// checkpoints; two schemas agree on layout iff fingerprints match.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.name.as_bytes());
        eat(&[0xff]);
        for a in &self.attributes {
            eat(&a.id.to_le_bytes());
            eat(a.name.as_bytes());
            eat(&[u8::from(a.cumulative)]);
            eat(&a.min_plausible.to_bits().to_le_bytes());
            eat(&a.max_plausible.to_bits().to_le_bytes());
            eat(&[0xfe]);
        }
        eat(&self.derived.window_days.to_le_bytes());
        eat(&[
            u8::from(self.derived.delta),
            u8::from(self.derived.mean),
            u8::from(self.derived.std),
        ]);
        for &c in &self.derived.cols {
            eat(&(c as u64).to_le_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{self, N_FEATURES};

    #[test]
    fn smart_schema_reproduces_compile_time_layout() {
        let s = DomainSchema::smart();
        s.validate().unwrap();
        assert_eq!(s.n_attributes(), attrs::N_ATTRIBUTES);
        assert_eq!(s.n_base_features(), N_FEATURES);
        assert_eq!(s.n_features(), N_FEATURES, "empty plan adds no columns");
        for col in 0..N_FEATURES {
            assert_eq!(s.feature_name(col), attrs::feature_name(col));
            let (id, kind) = attrs::feature_meta(col);
            assert_eq!(s.feature_index(id, kind), Some(col));
            assert_eq!(s.column_cumulative(col), ATTRIBUTES[col / 2].cumulative);
        }
    }

    #[test]
    fn derived_columns_extend_the_layout() {
        let s = DomainSchema::mce();
        s.validate().unwrap();
        assert_eq!(s.n_base_features(), 16);
        assert_eq!(s.derived.cols.len(), 4);
        assert_eq!(s.n_features(), 16 + 4 * 3);
        // Derived names compose base name + stat suffix + window.
        let first_derived = s.n_base_features();
        let name = s.feature_name(first_derived);
        assert!(name.ends_with("delta5"), "got {name}");
        assert!(name.starts_with("mce_1_raw"), "got {name}");
        assert!(!s.column_cumulative(first_derived));
    }

    #[test]
    fn fingerprints_separate_schemas_and_are_stable() {
        let smart = DomainSchema::smart();
        let mce = DomainSchema::mce();
        assert_eq!(smart.fingerprint(), DomainSchema::smart().fingerprint());
        assert_ne!(smart.fingerprint(), mce.fingerprint());
        let mut tweaked = DomainSchema::smart();
        tweaked.derived.cols = vec![3];
        assert_ne!(smart.fingerprint(), tweaked.fingerprint());
    }

    #[test]
    fn validate_rejects_malformed_schemas() {
        let mut s = DomainSchema::smart();
        s.attributes.clear();
        assert!(s.validate().is_err());

        let mut s = DomainSchema::smart();
        s.attributes[1].id = s.attributes[0].id;
        assert!(s.validate().is_err());

        let mut s = DomainSchema::smart();
        s.derived.cols = vec![N_FEATURES];
        assert!(s.validate().is_err());

        let mut s = DomainSchema::smart();
        s.derived.cols = vec![3, 3];
        assert!(s.validate().is_err());

        let mut s = DomainSchema::smart();
        s.derived.cols = vec![3];
        s.derived.window_days = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn for_domain_resolves_known_names() {
        assert_eq!(DomainSchema::for_domain("smart").unwrap().name, "smart");
        assert_eq!(DomainSchema::for_domain("mce").unwrap().name, "mce");
        assert!(DomainSchema::for_domain("smart-windowed")
            .map(|s| !s.derived.is_empty())
            .unwrap());
        assert!(DomainSchema::for_domain("lustre").is_none());
    }

    #[test]
    fn schema_serde_round_trips() {
        let s = DomainSchema::mce();
        let json = serde_json::to_string(&s).unwrap();
        let back: DomainSchema = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        assert_eq!(s.fingerprint(), back.fingerprint());
    }
}
