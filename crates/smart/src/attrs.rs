//! The SMART attribute catalog and the flat feature layout.
//!
//! Every daily snapshot carries [`N_ATTRIBUTES`] attributes, each with a
//! vendor-normalized value (1-byte, higher = healthier) and a raw value
//! (6-byte counter/rate). Following §4.2 of the paper both are treated as
//! candidate features, giving [`N_FEATURES`] = 48 columns.
//!
//! Layout: feature index `2 * attr_index` is the **normalized** value and
//! `2 * attr_index + 1` is the **raw** value of `ATTRIBUTES[attr_index]`.

/// Number of SMART attributes reported per disk per day.
pub const N_ATTRIBUTES: usize = 24;

/// Number of candidate features (normalized + raw per attribute).
pub const N_FEATURES: usize = 2 * N_ATTRIBUTES;

/// A SMART attribute identifier (the standard numeric ID, e.g. 5 for
/// Reallocated Sectors Count).
pub type AttrId = u16;

/// Whether a feature column is a vendor-normalized or raw value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    /// Vendor-normalized 1-byte value (higher = healthier, typically ≤ 100
    /// or ≤ 200 depending on the attribute).
    Normalized,
    /// Raw 6-byte counter / encoded rate.
    Raw,
}

/// Static description of one SMART attribute.
#[derive(Clone, Copy, Debug)]
pub struct AttrInfo {
    /// Standard SMART ID.
    pub id: AttrId,
    /// Human-readable name.
    pub name: &'static str,
    /// True for attributes that accumulate monotonically over a disk's life
    /// (Power-On Hours, Load Cycle Count, …). The paper identifies these
    /// *cumulative* attributes as the root cause of model aging.
    pub cumulative: bool,
}

/// The 24 attributes reported by the simulated (Seagate-like) disk models,
/// matching the attribute set present in Backblaze data for ST4000DM000 /
/// ST3000DM001.
pub const ATTRIBUTES: [AttrInfo; N_ATTRIBUTES] = [
    AttrInfo {
        id: 1,
        name: "Read Error Rate",
        cumulative: false,
    },
    AttrInfo {
        id: 3,
        name: "Spin-Up Time",
        cumulative: false,
    },
    AttrInfo {
        id: 4,
        name: "Start/Stop Count",
        cumulative: true,
    },
    AttrInfo {
        id: 5,
        name: "Reallocated Sectors Count",
        cumulative: true,
    },
    AttrInfo {
        id: 7,
        name: "Seek Error Rate",
        cumulative: false,
    },
    AttrInfo {
        id: 9,
        name: "Power-On Hours",
        cumulative: true,
    },
    AttrInfo {
        id: 10,
        name: "Spin Retry Count",
        cumulative: true,
    },
    AttrInfo {
        id: 12,
        name: "Power Cycle Count",
        cumulative: true,
    },
    AttrInfo {
        id: 183,
        name: "Runtime Bad Block",
        cumulative: true,
    },
    AttrInfo {
        id: 184,
        name: "End-to-End Error",
        cumulative: true,
    },
    AttrInfo {
        id: 187,
        name: "Reported Uncorrectable Errors",
        cumulative: true,
    },
    AttrInfo {
        id: 188,
        name: "Command Timeout",
        cumulative: true,
    },
    AttrInfo {
        id: 189,
        name: "High Fly Writes",
        cumulative: true,
    },
    AttrInfo {
        id: 190,
        name: "Airflow Temperature",
        cumulative: false,
    },
    AttrInfo {
        id: 192,
        name: "Power-off Retract Count",
        cumulative: true,
    },
    AttrInfo {
        id: 193,
        name: "Load Cycle Count",
        cumulative: true,
    },
    AttrInfo {
        id: 194,
        name: "Temperature Celsius",
        cumulative: false,
    },
    AttrInfo {
        id: 195,
        name: "Hardware ECC Recovered",
        cumulative: false,
    },
    AttrInfo {
        id: 197,
        name: "Current Pending Sector Count",
        cumulative: false,
    },
    AttrInfo {
        id: 198,
        name: "Uncorrectable Sector Count",
        cumulative: true,
    },
    AttrInfo {
        id: 199,
        name: "UltraDMA CRC Error Count",
        cumulative: true,
    },
    AttrInfo {
        id: 240,
        name: "Head Flying Hours",
        cumulative: true,
    },
    AttrInfo {
        id: 241,
        name: "Total LBAs Written",
        cumulative: true,
    },
    AttrInfo {
        id: 242,
        name: "Total LBAs Read",
        cumulative: true,
    },
];

/// Index of the attribute with the given SMART ID, if present.
pub fn attr_index(id: AttrId) -> Option<usize> {
    ATTRIBUTES.iter().position(|a| a.id == id)
}

/// Feature column for `(id, kind)`, if the attribute is in the catalog.
pub fn feature_index(id: AttrId, kind: FeatureKind) -> Option<usize> {
    attr_index(id).map(|i| match kind {
        FeatureKind::Normalized => 2 * i,
        FeatureKind::Raw => 2 * i + 1,
    })
}

/// Attribute ID and kind for a feature column.
pub fn feature_meta(feature: usize) -> (AttrId, FeatureKind) {
    assert!(feature < N_FEATURES, "feature index {feature} out of range");
    let attr = ATTRIBUTES[feature / 2];
    let kind = if feature.is_multiple_of(2) {
        FeatureKind::Normalized
    } else {
        FeatureKind::Raw
    };
    (attr.id, kind)
}

/// Human-readable label for a feature column, e.g. `"smart_187_raw"`.
pub fn feature_name(feature: usize) -> String {
    let (id, kind) = feature_meta(feature);
    let suffix = match kind {
        FeatureKind::Normalized => "normalized",
        FeatureKind::Raw => "raw",
    };
    format!("smart_{id}_{suffix}")
}

/// The 19 features the paper selects (Table 2): 9 normalized + 10 raw
/// values over 13 attribute IDs, in rank order of contribution
/// (rank 1 = SMART 187, rank 2 = SMART 197, …).
///
/// Entries are `(id, kind)`; use [`feature_index`] to map into columns.
pub const TABLE2_SELECTED: [(AttrId, FeatureKind); 19] = [
    (187, FeatureKind::Normalized),
    (187, FeatureKind::Raw),
    (197, FeatureKind::Normalized),
    (197, FeatureKind::Raw),
    (5, FeatureKind::Normalized),
    (5, FeatureKind::Raw),
    (184, FeatureKind::Normalized),
    (184, FeatureKind::Raw),
    (9, FeatureKind::Raw),
    (193, FeatureKind::Normalized),
    (193, FeatureKind::Raw),
    (7, FeatureKind::Normalized),
    (183, FeatureKind::Raw),
    (198, FeatureKind::Normalized),
    (198, FeatureKind::Raw),
    (189, FeatureKind::Normalized),
    (12, FeatureKind::Raw),
    (199, FeatureKind::Raw),
    (1, FeatureKind::Normalized),
];

/// Feature columns of the Table 2 selection, in the paper's rank order.
pub fn table2_feature_columns() -> Vec<usize> {
    TABLE2_SELECTED
        .iter()
        .map(|&(id, kind)| feature_index(id, kind).expect("Table 2 attribute must be in catalog"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_unique_sorted_ids() {
        for w in ATTRIBUTES.windows(2) {
            assert!(w[0].id < w[1].id, "{} !< {}", w[0].id, w[1].id);
        }
    }

    #[test]
    fn feature_index_round_trips_through_meta() {
        for f in 0..N_FEATURES {
            let (id, kind) = feature_meta(f);
            assert_eq!(feature_index(id, kind), Some(f));
        }
    }

    #[test]
    fn unknown_attribute_yields_none() {
        assert_eq!(attr_index(255), None);
        assert_eq!(feature_index(255, FeatureKind::Raw), None);
    }

    #[test]
    fn table2_has_19_unique_columns_with_9_norms_and_10_raws() {
        let cols = table2_feature_columns();
        assert_eq!(cols.len(), 19);
        let mut sorted = cols.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 19, "columns must be distinct");
        let norms = TABLE2_SELECTED
            .iter()
            .filter(|&&(_, k)| k == FeatureKind::Normalized)
            .count();
        assert_eq!(norms, 9);
        assert_eq!(TABLE2_SELECTED.len() - norms, 10);
    }

    #[test]
    fn feature_names_follow_backblaze_convention() {
        let col = feature_index(5, FeatureKind::Raw).unwrap();
        assert_eq!(feature_name(col), "smart_5_raw");
        let col = feature_index(187, FeatureKind::Normalized).unwrap();
        assert_eq!(feature_name(col), "smart_187_normalized");
    }
}
