//! Backblaze-format CSV I/O.
//!
//! The daily Backblaze files have the schema
//! `date,serial_number,model,capacity_bytes,failure,smart_<id>_normalized,smart_<id>_raw,…`.
//! [`write_dataset`] emits exactly that (so tools built for the real data
//! work on simulated data), and [`read_dataset`] loads real Backblaze rows
//! into a [`Dataset`] — any experiment in this repository runs unchanged on
//! the genuine field data.

use crate::attrs::{ATTRIBUTES, N_ATTRIBUTES, N_FEATURES};
use crate::record::{Dataset, DiskDay, DiskInfo};
// lint: allow(nondeterminism, reason="serial->id dictionary below; key lookups only, never iterated")
use std::collections::HashMap;
use std::io::{self, BufRead, Write};

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + u64::from(doy);
    era * 146_097 + doe as i64 - 719_468
}

/// Civil date for days since 1970-01-01 (inverse of [`days_from_civil`]).
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Calendar origin used when writing simulated datasets (Backblaze logs
/// begin 2013-04-10).
pub const EPOCH_DATE: (i64, u32, u32) = (2013, 4, 10);

fn format_date(day: u16) -> String {
    let base = days_from_civil(EPOCH_DATE.0, EPOCH_DATE.1, EPOCH_DATE.2);
    let (y, m, d) = civil_from_days(base + i64::from(day));
    format!("{y:04}-{m:02}-{d:02}")
}

/// Calendar date string (`YYYY-MM-DD`) for a day offset from
/// [`EPOCH_DATE`] — the same formatting [`write_dataset`] uses, exposed
/// for human-facing reports (`orfpred data info`).
pub fn date_string(day: u16) -> String {
    format_date(day)
}

/// Typed CSV parse failure. Row-level variants carry the 1-based line
/// number; in lenient mode ([`read_dataset_with`]) row-level failures are
/// skipped and counted instead of returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The underlying reader failed (always fatal, even in lenient mode).
    Io {
        /// 1-based line number the reader was on.
        line: usize,
        /// Underlying error text.
        detail: String,
    },
    /// The header line is missing or unusable.
    Header {
        /// What is wrong with it.
        detail: String,
    },
    /// One data row is malformed.
    Row {
        /// 1-based line number of the offending row.
        line: usize,
        /// What is wrong with it.
        detail: String,
    },
    /// The rows parsed individually but do not form a valid dataset
    /// (empty file, window too long, validation failure).
    Structure {
        /// What is wrong with the dataset as a whole.
        detail: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io { line, detail } => write!(f, "I/O error near line {line}: {detail}"),
            ParseError::Header { detail } => write!(f, "bad CSV header: {detail}"),
            ParseError::Row { line, detail } => write!(f, "line {line}: {detail}"),
            ParseError::Structure { detail } => write!(f, "invalid dataset: {detail}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// How many example skip reasons [`ParseStats`] retains.
const MAX_SKIP_EXAMPLES: usize = 5;

/// What a (possibly lenient) parse did — surfaced in CLI output so silent
/// data loss is impossible.
#[derive(Debug, Clone, Default)]
pub struct ParseStats {
    /// Data rows parsed into records.
    pub rows_read: usize,
    /// Malformed rows skipped (always 0 in strict mode).
    pub rows_skipped: usize,
    /// Up to five `(line, reason)` samples of what was
    /// skipped.
    pub skip_examples: Vec<(usize, String)>,
}

impl ParseStats {
    fn skip(&mut self, line: usize, reason: String) {
        self.rows_skipped += 1;
        if self.skip_examples.len() < MAX_SKIP_EXAMPLES {
            self.skip_examples.push((line, reason));
        }
    }
}

fn parse_date(s: &str) -> Result<i64, String> {
    let mut parts = s.split('-');
    let mut next = |name: &str| {
        parts
            .next()
            .ok_or_else(|| format!("date '{s}' missing {name}"))
    };
    let y: i64 = next("year")?
        .parse()
        .map_err(|e| format!("bad year in '{s}': {e}"))?;
    let m: u32 = next("month")?
        .parse()
        .map_err(|e| format!("bad month in '{s}': {e}"))?;
    let d: u32 = next("day")?
        .parse()
        .map_err(|e| format!("bad day in '{s}': {e}"))?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(format!("date '{s}' out of range"));
    }
    Ok(days_from_civil(y, m, d))
}

/// Write a dataset in Backblaze daily-CSV format.
pub fn write_dataset<W: Write>(ds: &Dataset, out: &mut W) -> io::Result<()> {
    // Header.
    write!(out, "date,serial_number,model,capacity_bytes,failure")?;
    for a in &ATTRIBUTES {
        write!(out, ",smart_{}_normalized,smart_{}_raw", a.id, a.id)?;
    }
    writeln!(out)?;
    let capacity: u64 = 4_000_787_030_016; // metadata only
    for rec in &ds.records {
        let info = &ds.disks[rec.disk_id as usize];
        let failure = u8::from(info.failed && info.last_day == rec.day);
        write!(
            out,
            "{},S{:08},{},{},{}",
            format_date(rec.day),
            rec.disk_id,
            ds.model,
            capacity,
            failure
        )?;
        for attr in 0..N_ATTRIBUTES {
            // Norms are small integers, raws can be large: print raws as
            // integers like the real files do.
            write!(
                out,
                ",{},{}",
                rec.features[2 * attr] as i64,
                rec.features[2 * attr + 1] as i64
            )?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Read a Backblaze-format CSV into a [`Dataset`] (strict: the first
/// malformed row is an error).
///
/// Robust to column order and to extra SMART columns not in our catalog
/// (they are ignored); missing catalog attributes read as 0 (Backblaze
/// leaves unreported values empty).
pub fn read_dataset<R: BufRead>(input: R) -> Result<Dataset, ParseError> {
    read_dataset_with(input, false).map(|(ds, _)| ds)
}

/// Read a Backblaze-format CSV, optionally in lenient mode.
///
/// Strict (`lenient = false`): any malformed row aborts with a typed
/// [`ParseError`] carrying its line number. Lenient: malformed rows are
/// skipped and counted in the returned [`ParseStats`] (with example
/// reasons), so real-world dumps with a few mangled lines still load —
/// but the caller can, and the CLI does, report exactly how many rows
/// were dropped. I/O, header, and whole-file structural problems are
/// fatal in both modes.
pub fn read_dataset_with<R: BufRead>(
    input: R,
    lenient: bool,
) -> Result<(Dataset, ParseStats), ParseError> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or(ParseError::Header {
            detail: "empty CSV".into(),
        })?
        .map_err(|e| ParseError::Io {
            line: 1,
            detail: e.to_string(),
        })?;
    let columns: Vec<&str> = header.split(',').collect();

    let mut col_date = None;
    let mut col_serial = None;
    let mut col_model = None;
    let mut col_failure = None;
    // Map CSV column -> feature index.
    let mut feature_cols: Vec<(usize, usize)> = Vec::new();
    for (i, name) in columns.iter().enumerate() {
        match *name {
            "date" => col_date = Some(i),
            "serial_number" => col_serial = Some(i),
            "model" => col_model = Some(i),
            "failure" => col_failure = Some(i),
            _ => {
                if let Some(rest) = name.strip_prefix("smart_") {
                    let (id_str, kind) = match rest.strip_suffix("_normalized") {
                        Some(id) => (id, 0usize),
                        None => match rest.strip_suffix("_raw") {
                            Some(id) => (id, 1usize),
                            None => continue,
                        },
                    };
                    if let Ok(id) = id_str.parse::<u16>() {
                        if let Some(attr) = crate::attrs::attr_index(id) {
                            feature_cols.push((i, 2 * attr + kind));
                        }
                    }
                }
            }
        }
    }
    let missing = |name: &str| ParseError::Header {
        detail: format!("missing '{name}' column"),
    };
    let col_date = col_date.ok_or_else(|| missing("date"))?;
    let col_serial = col_serial.ok_or_else(|| missing("serial_number"))?;
    let col_failure = col_failure.ok_or_else(|| missing("failure"))?;

    struct Row {
        abs_day: i64,
        serial: String,
        failed: bool,
        features: Vec<f32>,
    }

    /// Parse one data line; `Err` is the row-level reason.
    fn parse_row(
        line: &str,
        n_columns: usize,
        col_date: usize,
        col_serial: usize,
        col_failure: usize,
        feature_cols: &[(usize, usize)],
    ) -> Result<Row, String> {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != n_columns {
            return Err(format!("{} fields, header has {n_columns}", fields.len()));
        }
        let abs_day = parse_date(fields[col_date])?;
        let mut features = vec![0.0f32; N_FEATURES];
        for &(csv_col, feat) in feature_cols {
            let s = fields[csv_col].trim();
            if !s.is_empty() {
                features[feat] =
                    s.parse::<f64>()
                        .map_err(|e| format!("bad value '{s}': {e}"))? as f32;
            }
        }
        Ok(Row {
            abs_day,
            serial: fields[col_serial].to_string(),
            failed: fields[col_failure].trim() == "1",
            features,
        })
    }

    let mut rows: Vec<Row> = Vec::new();
    let mut stats = ParseStats::default();
    let mut model = String::new();
    for (lineno, line) in lines.enumerate() {
        let line_no = lineno + 2; // 1-based, after the header
        let line = line.map_err(|e| ParseError::Io {
            line: line_no,
            detail: e.to_string(),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_row(
            &line,
            columns.len(),
            col_date,
            col_serial,
            col_failure,
            &feature_cols,
        ) {
            Ok(row) => {
                if model.is_empty() {
                    if let Some(c) = col_model {
                        if let Some(m) = line.split(',').nth(c) {
                            model = m.to_string();
                        }
                    }
                }
                stats.rows_read += 1;
                rows.push(row);
            }
            Err(detail) if lenient => stats.skip(line_no, detail),
            Err(detail) => {
                return Err(ParseError::Row {
                    line: line_no,
                    detail,
                })
            }
        }
    }
    if rows.is_empty() {
        return Err(ParseError::Structure {
            detail: if stats.rows_skipped > 0 {
                format!(
                    "CSV contains no parseable data rows ({} skipped)",
                    stats.rows_skipped
                )
            } else {
                "CSV contains no data rows".into()
            },
        });
    }

    let min_day = rows.iter().map(|r| r.abs_day).min().unwrap();
    let max_day = rows.iter().map(|r| r.abs_day).max().unwrap();
    if max_day - min_day > i64::from(u16::MAX) {
        return Err(ParseError::Structure {
            detail: "observation window exceeds u16 days".into(),
        });
    }

    // Assign dense disk ids by serial (first-seen order). The map is used
    // for contains/insert/lookup only; ordering comes from the `serials`
    // vector, so hasher state cannot leak into the id assignment.
    // lint: allow(nondeterminism, reason="lookups only; first-seen order is carried by the serials Vec, never by map iteration")
    let mut ids: HashMap<String, u32> = HashMap::new();
    let mut serials: Vec<String> = Vec::new();
    for r in &rows {
        if !ids.contains_key(&r.serial) {
            ids.insert(r.serial.clone(), serials.len() as u32);
            serials.push(r.serial.clone());
        }
    }

    let mut records: Vec<DiskDay> = Vec::with_capacity(rows.len());
    let mut install = vec![u16::MAX; serials.len()];
    let mut last = vec![0u16; serials.len()];
    let mut failed = vec![false; serials.len()];
    for r in &rows {
        let disk_id = ids[&r.serial];
        let day = (r.abs_day - min_day) as u16;
        let d = disk_id as usize;
        install[d] = install[d].min(day);
        last[d] = last[d].max(day);
        failed[d] |= r.failed;
        records.push(DiskDay {
            disk_id,
            day,
            features: r.features.clone(),
        });
    }
    records.sort_by_key(|r| (r.day, r.disk_id));
    records.dedup_by_key(|r| (r.day, r.disk_id));

    let disks: Vec<DiskInfo> = (0..serials.len())
        .map(|d| DiskInfo {
            disk_id: d as u32,
            install_day: install[d],
            last_day: last[d],
            failed: failed[d],
        })
        .collect();
    let ds = Dataset {
        model,
        duration_days: (max_day - min_day) as u16,
        records,
        disks,
    };
    ds.validate()
        .map_err(|detail| ParseError::Structure { detail })?;
    Ok((ds, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{FleetConfig, FleetSim, ScalePreset};
    use std::io::BufReader;

    #[test]
    fn civil_date_round_trip() {
        for &(y, m, d) in &[(1970, 1, 1), (2013, 4, 10), (2000, 2, 29), (2026, 12, 31)] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d));
        }
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
    }

    #[test]
    fn date_formatting_advances_by_day() {
        assert_eq!(format_date(0), "2013-04-10");
        assert_eq!(format_date(1), "2013-04-11");
        assert_eq!(format_date(365), "2014-04-10");
    }

    #[test]
    fn csv_round_trip_preserves_structure() {
        let mut cfg = FleetConfig::sta(ScalePreset::Tiny, 21);
        cfg.n_good = 15;
        cfg.n_failed = 4;
        cfg.duration_days = 120;
        let ds = FleetSim::collect(&cfg);
        let mut buf = Vec::new();
        write_dataset(&ds, &mut buf).unwrap();
        let back = read_dataset(BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(back.model, ds.model);
        assert_eq!(back.disks.len(), ds.disks.len());
        assert_eq!(back.n_records(), ds.n_records());
        assert_eq!(back.n_failed(), ds.n_failed());
        // Raw integer counters survive exactly; norms too (both written as
        // integers, and the simulator's norms are near-integers already).
        for (a, b) in ds.records.iter().zip(&back.records) {
            assert_eq!(a.day, b.day);
            let realloc = crate::attrs::feature_index(5, crate::attrs::FeatureKind::Raw).unwrap();
            assert_eq!(a.features[realloc] as i64, b.features[realloc] as i64);
        }
    }

    #[test]
    fn reader_tolerates_column_reorder_and_unknown_attributes() {
        let csv =
            "serial_number,date,failure,model,smart_5_raw,smart_9999_raw,smart_187_normalized\n\
                   A1,2020-01-01,0,X,5,77,100\n\
                   A1,2020-01-02,1,X,9,77,95\n\
                   B2,2020-01-01,0,X,0,77,100\n";
        let ds = read_dataset(BufReader::new(csv.as_bytes())).unwrap();
        assert_eq!(ds.disks.len(), 2);
        assert_eq!(ds.n_failed(), 1);
        assert_eq!(ds.duration_days, 1);
        let realloc = crate::attrs::feature_index(5, crate::attrs::FeatureKind::Raw).unwrap();
        let n187 = crate::attrs::feature_index(187, crate::attrs::FeatureKind::Normalized).unwrap();
        let rec = ds.records.iter().find(|r| r.day == 1).unwrap();
        assert_eq!(rec.features[realloc], 9.0);
        assert_eq!(rec.features[n187], 95.0);
    }

    #[test]
    fn reader_rejects_malformed_input() {
        assert!(read_dataset(BufReader::new("".as_bytes())).is_err());
        assert!(read_dataset(BufReader::new("a,b,c\n".as_bytes())).is_err());
        let missing_field = "date,serial_number,failure\n2020-01-01,A\n";
        assert!(read_dataset(BufReader::new(missing_field.as_bytes())).is_err());
        let bad_date = "date,serial_number,failure\n2020-13-01,A,0\n";
        assert!(read_dataset(BufReader::new(bad_date.as_bytes())).is_err());
    }

    #[test]
    fn strict_errors_are_typed_with_line_numbers() {
        assert!(matches!(
            read_dataset(BufReader::new("".as_bytes())),
            Err(ParseError::Header { .. })
        ));
        let short = "date,serial_number,failure\n2020-01-01,A,0\n2020-01-02,A\n";
        match read_dataset(BufReader::new(short.as_bytes())) {
            Err(ParseError::Row { line: 3, .. }) => {}
            other => panic!("expected Row error at line 3, got {other:?}"),
        }
        let bad_val = "date,serial_number,failure,smart_5_raw\n2020-01-01,A,0,notanumber\n";
        match read_dataset(BufReader::new(bad_val.as_bytes())) {
            Err(ParseError::Row { line: 2, .. }) => {}
            other => panic!("expected Row error at line 2, got {other:?}"),
        }
    }

    #[test]
    fn lenient_mode_skips_and_counts_bad_rows() {
        let csv = "date,serial_number,failure,smart_5_raw\n\
                   2020-01-01,A,0,3\n\
                   2020-01-02,A\n\
                   2020-13-77,B,0,1\n\
                   2020-01-02,A,0,oops\n\
                   2020-01-03,A,1,9\n";
        // Strict fails at the first bad row…
        assert!(matches!(
            read_dataset(BufReader::new(csv.as_bytes())),
            Err(ParseError::Row { line: 3, .. })
        ));
        // …lenient loads the good ones and accounts for the rest.
        let (ds, stats) = read_dataset_with(BufReader::new(csv.as_bytes()), true).unwrap();
        assert_eq!(stats.rows_read, 2);
        assert_eq!(stats.rows_skipped, 3);
        assert_eq!(stats.skip_examples.len(), 3);
        assert_eq!(stats.skip_examples[0].0, 3);
        assert_eq!(ds.n_records(), 2);
        assert_eq!(ds.n_failed(), 1);
        // All rows bad → still a typed structural error, not an empty dataset.
        let all_bad = "date,serial_number,failure\nx\ny\n";
        assert!(matches!(
            read_dataset_with(BufReader::new(all_bad.as_bytes()), true),
            Err(ParseError::Structure { .. })
        ));
    }

    #[test]
    fn reader_handles_empty_smart_cells() {
        let csv = "date,serial_number,failure,smart_5_raw\n2020-01-01,A,0,\n";
        let ds = read_dataset(BufReader::new(csv.as_bytes())).unwrap();
        let realloc = crate::attrs::feature_index(5, crate::attrs::FeatureKind::Raw).unwrap();
        assert_eq!(ds.records[0].features[realloc], 0.0);
    }
}
