//! Fault-injection points for the store writer, mirroring the serve
//! checkpoint discipline (`orfpred_serve`'s `FaultInjector` /
//! `CheckpointFault`): production code installs [`NoStoreFaults`]; the
//! testkit installs seeded plans that fire at chosen segment rotations so
//! the fault matrix in `tests/fault_store.rs` is deterministic.

/// What to do to one segment rotation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum SegmentFault {
    /// Write normally (tmp + fsync + rename).
    #[default]
    None,
    /// Crash mid-write with only a prefix of the segment durable at its
    /// final path — models power loss after the rename was journaled but
    /// before all data blocks hit disk. The writer returns
    /// `StoreError::Injected`; the *reader* must detect the tear.
    TornWrite {
        /// Bytes of the encoded segment that survive.
        keep: usize,
    },
    /// Crash after the temp file is fully written and synced but before
    /// the rename — the clean-crash case the tmp+rename discipline is
    /// designed for. The store keeps its previous consistent prefix.
    CrashBeforeRename,
    /// Silent bit rot: flip one byte of the image before the (otherwise
    /// normal, atomic) write. The write *succeeds* — detection is entirely
    /// the reader's job, via the segment CRCs.
    FlipByte {
        /// Offset from the end of the segment image (0 = last byte, which
        /// sits in the tail magic; small values land in the trailer/footer).
        byte_from_end: usize,
        /// XOR mask applied to that byte (use a non-zero value).
        xor: u8,
    },
}

/// Consulted once per segment rotation. Implementations must be cheap and
/// thread-safe (the testkit shares one plan across writer and driver).
pub trait StoreFaultInjector: Send + Sync + std::fmt::Debug {
    /// Fault to apply when writing segment `seg_index` (0-based).
    fn segment_fault(&self, _seg_index: u64) -> SegmentFault {
        SegmentFault::None
    }
}

/// Production default: no faults, ever.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoStoreFaults;

impl StoreFaultInjector for NoStoreFaults {}
