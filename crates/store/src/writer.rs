//! Store writer: append-only segment rotation with the tmp + fsync +
//! rename discipline, plus an atomically rewritten `store.json` manifest
//! so a crash at any instant leaves a readable consistent prefix.

use crate::fault::{NoStoreFaults, SegmentFault, StoreFaultInjector};
use crate::segment::SegmentBuilder;
use crate::StoreError;
use orfpred_smart::gen::{FleetConfig, FleetEvent, FleetSim};
use orfpred_smart::record::{Dataset, DiskDay, DiskInfo};
use orfpred_smart::DomainSchema;
use serde::{Deserialize, Serialize};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// On-disk manifest format version (v2 added the embedded domain schema;
/// v1 manifests are read as the implicit SMART layout).
pub const STORE_VERSION: u32 = 2;
/// Manifest file name inside a store directory.
pub const META_FILE: &str = "store.json";
/// Default rows per segment (~6.5 MB logical per segment; encoded far
/// smaller for typical SMART streams).
pub const DEFAULT_SEGMENT_ROWS: u32 = 32_768;

/// Manifest entry for one sealed segment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// File name relative to the store directory (`seg-00000.orfseg`).
    pub file: String,
    /// Rows in the segment.
    pub rows: u64,
    /// Exact encoded size in bytes (readers cheaply detect tears by
    /// comparing against the file's actual size before decoding).
    pub bytes: u64,
    /// First day covered (inclusive).
    pub first_day: u16,
    /// Last day covered (inclusive).
    pub last_day: u16,
}

/// The store manifest: everything a reader needs except the row bytes.
/// Disk metadata lives here (not in segments) because the fleet roster is
/// known up front and failure events are synthesized from it on replay.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoreMeta {
    pub version: u32,
    /// Drive model the telemetry belongs to (e.g. `ST4000DM000`).
    pub model: String,
    /// Observation window length in days (same meaning as
    /// [`Dataset::duration_days`]).
    pub duration_days: u16,
    /// Rows per full segment (the last segment may be shorter).
    pub segment_rows: u32,
    /// Total rows across all sealed segments.
    pub total_rows: u64,
    pub segments: Vec<SegmentMeta>,
    /// Fleet roster: dense ids, install/last days, failure flags.
    pub disks: Vec<DiskInfo>,
    /// Domain schema the rows were recorded under. `None` (v1 manifests)
    /// means the implicit SMART layout.
    pub schema: Option<DomainSchema>,
}

/// Writer configuration.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Rows per segment before rotation.
    pub segment_rows: u32,
    /// Domain schema the rows are recorded under (defaults to SMART).
    pub schema: DomainSchema,
    /// Fault-injection points ([`NoStoreFaults`] in production).
    pub injector: Arc<dyn StoreFaultInjector>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            segment_rows: DEFAULT_SEGMENT_ROWS,
            schema: DomainSchema::smart(),
            injector: Arc::new(NoStoreFaults),
        }
    }
}

fn io_err(path: &Path, e: impl std::fmt::Display) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        detail: e.to_string(),
    }
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename. The same discipline serve uses for checkpoints.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

/// Appends records in `(day, disk_id)` order, sealing a segment every
/// `segment_rows` rows. The manifest is rewritten atomically after every
/// seal, so the durable store is always a consistent prefix of the stream.
#[derive(Debug)]
pub struct StoreWriter {
    dir: PathBuf,
    meta: StoreMeta,
    schema: DomainSchema,
    builder: SegmentBuilder,
    injector: Arc<dyn StoreFaultInjector>,
    last_key: Option<(u16, u32)>,
}

impl StoreWriter {
    /// Create a new store at `dir` (created if absent; refuses to overwrite
    /// an existing store). The full disk roster must be known up front.
    pub fn create(
        dir: &Path,
        model: &str,
        duration_days: u16,
        disks: &[DiskInfo],
        cfg: StoreConfig,
    ) -> Result<StoreWriter, StoreError> {
        if cfg.segment_rows == 0 {
            return Err(StoreError::InvalidInput {
                detail: "segment_rows must be at least 1".into(),
            });
        }
        if let Err(e) = cfg.schema.validate() {
            return Err(StoreError::InvalidInput {
                detail: format!("invalid domain schema: {e}"),
            });
        }
        for (i, d) in disks.iter().enumerate() {
            if d.disk_id as usize != i {
                return Err(StoreError::InvalidInput {
                    detail: format!("disk roster not dense: slot {i} holds id {}", d.disk_id),
                });
            }
        }
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let meta_path = dir.join(META_FILE);
        if meta_path.exists() {
            return Err(StoreError::InvalidInput {
                detail: format!("{} already contains a store", dir.display()),
            });
        }
        let meta = StoreMeta {
            version: STORE_VERSION,
            model: model.to_string(),
            duration_days,
            segment_rows: cfg.segment_rows,
            total_rows: 0,
            segments: Vec::new(),
            disks: disks.to_vec(),
            schema: Some(cfg.schema.clone()),
        };
        let w = StoreWriter {
            dir: dir.to_path_buf(),
            meta,
            builder: SegmentBuilder::for_schema(&cfg.schema),
            schema: cfg.schema,
            injector: cfg.injector,
            last_key: None,
        };
        w.write_meta()?;
        Ok(w)
    }

    /// Append one record. Records must arrive in strictly increasing
    /// `(day, disk_id)` order — the invariant every reader and the replay
    /// oracle rely on — and reference a disk in the roster.
    pub fn append(&mut self, rec: &DiskDay) -> Result<(), StoreError> {
        if rec.features.len() != self.schema.n_base_features() {
            return Err(StoreError::InvalidInput {
                detail: format!(
                    "record has {} feature columns but the store's `{}` schema has {} \
                     base columns (the store holds raw telemetry; derived window \
                     columns are computed downstream — mixed-schema appends are refused)",
                    rec.features.len(),
                    self.schema.name,
                    self.schema.n_base_features()
                ),
            });
        }
        if rec.disk_id as usize >= self.meta.disks.len() {
            return Err(StoreError::InvalidInput {
                detail: format!(
                    "record references disk {} but the roster has {}",
                    rec.disk_id,
                    self.meta.disks.len()
                ),
            });
        }
        if rec.day > self.meta.duration_days {
            return Err(StoreError::InvalidInput {
                detail: format!(
                    "record day {} past observation window {}",
                    rec.day, self.meta.duration_days
                ),
            });
        }
        let key = (rec.day, rec.disk_id);
        if let Some(last) = self.last_key {
            if key <= last {
                return Err(StoreError::InvalidInput {
                    detail: format!(
                        "records out of order: {key:?} after {last:?} (must be strictly \
                         increasing by (day, disk_id))"
                    ),
                });
            }
        }
        self.last_key = Some(key);
        self.builder.push(rec);
        if self.builder.n_rows() as u64 >= u64::from(self.meta.segment_rows) {
            self.rotate()?;
        }
        Ok(())
    }

    /// Rows buffered but not yet sealed into a segment.
    pub fn pending_rows(&self) -> usize {
        self.builder.n_rows()
    }

    /// Rows already durable in sealed segments.
    pub fn sealed_rows(&self) -> u64 {
        self.meta.total_rows
    }

    /// Seal the buffered rows into a segment, then atomically rewrite the
    /// manifest to include it.
    fn rotate(&mut self) -> Result<(), StoreError> {
        if self.builder.is_empty() {
            return Ok(());
        }
        let idx = self.meta.segments.len() as u64;
        let file = format!("seg-{idx:05}.orfseg");
        let path = self.dir.join(&file);
        let mut bytes = self.builder.encode();
        // lint: allow(panic_path, reason="the is_empty early-return above guarantees the builder holds at least one row, so day_range() is Some")
        let (first_day, last_day) = self.builder.day_range().expect("builder not empty");
        let rows = self.builder.n_rows() as u64;

        match self.injector.segment_fault(idx) {
            SegmentFault::None => write_atomic(&path, &bytes)?,
            SegmentFault::FlipByte { byte_from_end, xor } => {
                // Silent bit rot: the write itself succeeds; only the
                // reader's CRCs can catch this.
                let n = bytes.len();
                let at = n - 1 - byte_from_end.min(n - 1);
                // lint: allow(panic_path, reason="at = n-1-min(_, n-1) is always in 0..n, and n >= 1 because encode() of a non-empty builder emits at least the magic")
                bytes[at] ^= xor;
                write_atomic(&path, &bytes)?;
            }
            SegmentFault::TornWrite { keep } => {
                // Prefix lands at the *final* path: rename journaled, data
                // blocks lost. Reader-side CRC/trailer checks must catch it.
                let kept = &bytes[..keep.min(bytes.len())];
                let mut f = File::create(&path).map_err(|e| io_err(&path, e))?;
                f.write_all(kept).map_err(|e| io_err(&path, e))?;
                f.sync_all().map_err(|e| io_err(&path, e))?;
                let kept_len = kept.len();
                return Err(StoreError::Injected {
                    path,
                    detail: format!("torn segment write ({kept_len} of {} bytes)", bytes.len()),
                });
            }
            SegmentFault::CrashBeforeRename => {
                let tmp = path.with_extension("tmp");
                let mut f = File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
                f.write_all(&bytes).map_err(|e| io_err(&tmp, e))?;
                f.sync_all().map_err(|e| io_err(&tmp, e))?;
                return Err(StoreError::Injected {
                    path: tmp,
                    detail: "crash before segment rename".into(),
                });
            }
        }

        self.meta.segments.push(SegmentMeta {
            file,
            rows,
            bytes: bytes.len() as u64,
            first_day,
            last_day,
        });
        self.meta.total_rows += rows;
        self.write_meta()?;
        self.builder = SegmentBuilder::for_schema(&self.schema);
        Ok(())
    }

    fn write_meta(&self) -> Result<(), StoreError> {
        let path = self.dir.join(META_FILE);
        let json = serde_json::to_string(&self.meta).map_err(|e| io_err(&path, e))?;
        write_atomic(&path, json.as_bytes())
    }

    /// Seal any buffered rows and return the final manifest.
    pub fn finish(mut self) -> Result<StoreMeta, StoreError> {
        self.rotate()?;
        Ok(self.meta)
    }
}

/// Record a materialized [`Dataset`] into a new store at `dir`.
pub fn record_dataset(dir: &Path, ds: &Dataset, cfg: StoreConfig) -> Result<StoreMeta, StoreError> {
    let mut w = StoreWriter::create(dir, &ds.model, ds.duration_days, &ds.disks, cfg)?;
    for rec in &ds.records {
        w.append(rec)?;
    }
    w.finish()
}

/// Stream a simulated fleet straight into a new store at `dir` without
/// materializing the dataset (constant memory regardless of fleet scale).
pub fn record_fleet(
    dir: &Path,
    fleet: &FleetConfig,
    cfg: StoreConfig,
) -> Result<StoreMeta, StoreError> {
    let sim = FleetSim::new(fleet);
    let disks = sim.disk_infos();
    let duration = sim.duration_days();
    let mut w = StoreWriter::create(dir, &fleet.profile.name, duration, &disks, cfg)?;
    for ev in sim {
        if let FleetEvent::Sample(rec) = ev {
            w.append(&rec)?;
        }
    }
    w.finish()
}
