//! Segment encode/decode: the on-disk unit of the telemetry store.
//!
//! Layout (all fixed-width integers little-endian; see DESIGN.md §11):
//!
//! ```text
//! +----------------+  offset 0
//! | magic          |  8 B  "ORFSEG2\n"
//! +----------------+
//! | body           |  2 + n_features encoded column blocks, back to back:
//! |                |    block 0          disk-id dictionary + per-row indices
//! |                |    block 1          day column, zigzag-delta varints
//! |                |    blocks 2..      one per schema feature column, each
//! |                |                     a mode byte then the payload
//! +----------------+
//! | footer         |  row count u32, block count u32, per-block end
//! |                |  offsets u64×N (relative to body start), schema
//! |                |  fingerprint u64, feature count u32, body CRC32
//! +----------------+
//! | trailer        |  footer length u32, footer CRC32, tail magic
//! |                |  "ORFSEGF\n" — fixed 16 B so readers can find the
//! +----------------+  footer from the end of the file
//! ```
//!
//! The column count is no longer a compile-time constant: each segment
//! records its own feature width plus the [`DomainSchema`] fingerprint it
//! was written under, so a reader can refuse to mix layouts before
//! decoding a single row.
//!
//! The body CRC covers magic + body; the footer CRC covers the footer
//! bytes. A torn write (any prefix of the file) fails the trailer or CRC
//! checks; a flipped bit anywhere fails one of the CRCs. Decode
//! bounds-checks every varint and offset, so corrupt bytes always surface
//! as [`StoreError::Corrupt`], never a panic or silent truncation.
//!
//! Feature columns carry a per-segment mode byte. Mode 0 (int-delta)
//! applies only when every value in the column round-trips exactly through
//! `u64` — checked bit-for-bit at encode time — and stores zigzag varints
//! of consecutive (wrapping) deltas. Mode 1 stores raw `f32` bits. Either
//! way replay reproduces the exact input bits, which is what the
//! golden-trace oracle asserts.

use crate::crc::crc32;
use crate::varint;
use crate::StoreError;
use orfpred_smart::record::DiskDay;
use orfpred_smart::DomainSchema;
use std::path::Path;

/// Leading magic: format name + version (v2 added the schema fingerprint
/// and feature count to the footer).
pub const SEG_MAGIC: &[u8; 8] = b"ORFSEG2\n";
/// Trailing magic: lets a reader distinguish truncation from bad version.
pub const SEG_TAIL_MAGIC: &[u8; 8] = b"ORFSEGF\n";
/// Fixed trailer width: footer length + footer CRC + tail magic.
pub const TRAILER_LEN: usize = 4 + 4 + 8;

/// Blocks in a segment with `n_features` feature columns: disk-id
/// dictionary, day column, then one block per feature column.
pub fn n_blocks(n_features: usize) -> usize {
    2 + n_features
}

/// Feature-column payload is delta-coded integers (the common case for
/// SMART counters).
const MODE_INT_DELTA: u8 = 0;
/// Feature-column payload is raw `f32` bits (fractional, negative, huge,
/// or non-finite values — anything that does not round-trip through u64).
const MODE_RAW_F32: u8 = 1;

/// Logical (uncompressed row-struct) bytes per record: disk id + day +
/// `n_features` × f32. Used for the compression ratios `data info` reports.
pub fn logical_row_bytes(n_features: usize) -> u64 {
    4 + 2 + (n_features as u64) * 4
}

fn corrupt(path: &Path, detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        path: path.to_path_buf(),
        detail: detail.into(),
    }
}

/// Accumulates rows column-wise, then [`encode`](Self::encode)s them into
/// one segment image.
#[derive(Debug)]
pub struct SegmentBuilder {
    disk_ids: Vec<u32>,
    days: Vec<u16>,
    cols: Vec<Vec<f32>>,
    /// Fingerprint of the [`DomainSchema`] the rows were written under,
    /// stamped into the footer.
    schema_fp: u64,
}

impl Default for SegmentBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SegmentBuilder {
    /// Builder for the default SMART layout.
    pub fn new() -> Self {
        Self::for_schema(&DomainSchema::smart())
    }

    /// Builder sized and fingerprinted for an arbitrary domain layout.
    pub fn for_schema(schema: &DomainSchema) -> Self {
        Self {
            disk_ids: Vec::new(),
            days: Vec::new(),
            cols: vec![Vec::new(); schema.n_base_features()],
            schema_fp: schema.fingerprint(),
        }
    }

    /// Feature columns per row this builder encodes.
    pub fn n_features(&self) -> usize {
        self.cols.len()
    }

    pub fn n_rows(&self) -> usize {
        self.disk_ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.disk_ids.is_empty()
    }

    /// `(first, last)` day among buffered rows (`None` when empty).
    /// Rows arrive day-sorted, so this is just the ends of the day column.
    pub fn day_range(&self) -> Option<(u16, u16)> {
        Some((*self.days.first()?, *self.days.last()?))
    }

    /// Append one record (columns grow in lockstep). The caller validates
    /// the row width against the schema before pushing ([`StoreWriter`]
    /// refuses mixed-schema appends with a typed error).
    ///
    /// [`StoreWriter`]: crate::StoreWriter
    pub fn push(&mut self, rec: &DiskDay) {
        debug_assert_eq!(rec.features.len(), self.cols.len(), "row width mismatch");
        self.disk_ids.push(rec.disk_id);
        self.days.push(rec.day);
        for (col, &v) in self.cols.iter_mut().zip(rec.features.iter()) {
            col.push(v);
        }
    }

    /// Encode the buffered rows into a complete segment image
    /// (magic + body + footer + trailer).
    pub fn encode(&self) -> Vec<u8> {
        let n = self.n_rows();
        let n_blocks = n_blocks(self.cols.len());
        let mut out = Vec::with_capacity(64 + n * 8);
        out.extend_from_slice(SEG_MAGIC);
        let body_start = out.len();
        let mut block_ends: Vec<u64> = Vec::with_capacity(n_blocks);

        // Block 0: disk-id dictionary. Sorted unique ids as ascending
        // deltas, then one dictionary index per row.
        let mut dict: Vec<u32> = self.disk_ids.clone();
        dict.sort_unstable();
        dict.dedup();
        varint::write_u64(&mut out, dict.len() as u64);
        let mut prev = 0u64;
        for (i, &id) in dict.iter().enumerate() {
            let v = u64::from(id);
            // First entry is absolute; the rest are gaps (≥ 1: strictly
            // ascending after dedup).
            varint::write_u64(&mut out, if i == 0 { v } else { v - prev });
            prev = v;
        }
        for &id in &self.disk_ids {
            // lint: allow(panic_path, reason="dict was built by sort+dedup of this very disk_ids vec two statements up, so every id is present")
            let idx = dict.binary_search(&id).expect("id came from this list");
            varint::write_u64(&mut out, idx as u64);
        }
        block_ends.push((out.len() - body_start) as u64);

        // Block 1: day column, zigzag deltas (days are sorted ascending in
        // practice, so deltas are 0 or small positives).
        let mut prev = 0i64;
        for &d in &self.days {
            varint::write_u64(&mut out, varint::zigzag(i64::from(d) - prev));
            prev = i64::from(d);
        }
        block_ends.push((out.len() - body_start) as u64);

        // Feature blocks: int-delta when lossless, raw f32 bits otherwise.
        for col in &self.cols {
            let int_ok = col
                .iter()
                .all(|&v| v >= 0.0 && ((v as u64) as f32).to_bits() == v.to_bits());
            if int_ok {
                out.push(MODE_INT_DELTA);
                let mut prev = 0i64;
                for &v in col {
                    let u = v as u64 as i64; // counters fit i64 in practice;
                                             // wrapping deltas keep it lossless regardless
                    varint::write_u64(&mut out, varint::zigzag(u.wrapping_sub(prev)));
                    prev = u;
                }
            } else {
                out.push(MODE_RAW_F32);
                for &v in col {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            block_ends.push((out.len() - body_start) as u64);
        }

        let body_crc = crc32(&out);

        // Footer.
        let footer_start = out.len();
        out.extend_from_slice(&(n as u32).to_le_bytes());
        out.extend_from_slice(&(n_blocks as u32).to_le_bytes());
        for &e in &block_ends {
            out.extend_from_slice(&e.to_le_bytes());
        }
        out.extend_from_slice(&self.schema_fp.to_le_bytes());
        out.extend_from_slice(&(self.cols.len() as u32).to_le_bytes());
        out.extend_from_slice(&body_crc.to_le_bytes());
        let footer_len = (out.len() - footer_start) as u32;
        let footer_crc = crc32(&out[footer_start..]);

        // Trailer.
        out.extend_from_slice(&footer_len.to_le_bytes());
        out.extend_from_slice(&footer_crc.to_le_bytes());
        out.extend_from_slice(SEG_TAIL_MAGIC);
        out
    }
}

/// `u32::from_le_bytes` over a 4-byte subslice.
fn le_u32(bytes: &[u8]) -> u32 {
    // lint: allow(panic_path, reason="every caller slices an exact 4-byte range already bounds-checked against the footer/trailer layout")
    u32::from_le_bytes(bytes.try_into().unwrap())
}

/// `u64::from_le_bytes` over an 8-byte subslice.
fn le_u64(bytes: &[u8]) -> u64 {
    // lint: allow(panic_path, reason="every caller slices an exact 8-byte range already bounds-checked against the footer layout")
    u64::from_le_bytes(bytes.try_into().unwrap())
}

/// Footer fields, parsed and CRC-verified but with the body not yet
/// decoded. `data info` stops here; full decode continues in
/// [`Segment::decode`].
#[derive(Debug, Clone)]
pub struct Footer {
    pub n_rows: u32,
    /// Per-block end offsets relative to body start; block `i` spans
    /// `[ends[i-1], ends[i])`.
    pub block_ends: Vec<u64>,
    /// Fingerprint of the [`DomainSchema`] the segment was written under.
    pub schema_fp: u64,
    /// Feature columns per row (cross-checked against the block count).
    pub n_features: u32,
    pub body_crc: u32,
    /// Total body length in bytes (equals the last block end).
    pub body_len: u64,
}

impl Footer {
    /// Parse and verify the footer + trailer of a full segment image.
    pub fn parse(bytes: &[u8], path: &Path) -> Result<Footer, StoreError> {
        let min = SEG_MAGIC.len() + 8 + TRAILER_LEN; // magic + minimal footer + trailer
        if bytes.len() < min {
            return Err(corrupt(
                path,
                format!("file too short ({} bytes) to be a segment", bytes.len()),
            ));
        }
        if &bytes[..SEG_MAGIC.len()] != SEG_MAGIC {
            return Err(corrupt(path, "bad segment magic (not an ORFSEG2 file)"));
        }
        let tail = &bytes[bytes.len() - 8..];
        if tail != SEG_TAIL_MAGIC {
            return Err(corrupt(
                path,
                "missing tail magic (torn or truncated segment write)",
            ));
        }
        let trailer = &bytes[bytes.len() - TRAILER_LEN..];
        let footer_len = le_u32(&trailer[0..4]) as usize;
        let footer_crc = le_u32(&trailer[4..8]);
        let footer_end = bytes.len() - TRAILER_LEN;
        let footer_start = footer_end
            .checked_sub(footer_len)
            .filter(|&s| s >= SEG_MAGIC.len())
            .ok_or_else(|| corrupt(path, "footer length exceeds file"))?;
        let footer = &bytes[footer_start..footer_end];
        if crc32(footer) != footer_crc {
            return Err(corrupt(path, "footer CRC mismatch"));
        }
        if footer.len() < 12 {
            return Err(corrupt(path, "footer too short"));
        }
        let n_rows = le_u32(&footer[0..4]);
        let n_blocks = le_u32(&footer[4..8]) as usize;
        if n_blocks < 2 {
            return Err(corrupt(
                path,
                format!("segment has {n_blocks} blocks, need at least disk-id + day"),
            ));
        }
        // n_rows u32 + n_blocks u32 + ends u64×N + schema_fp u64 +
        // n_features u32 + body_crc u32.
        if footer.len() != 8 + 8 * n_blocks + 8 + 4 + 4 {
            return Err(corrupt(path, "footer length inconsistent with block count"));
        }
        let mut block_ends = Vec::with_capacity(n_blocks);
        let mut prev = 0u64;
        for i in 0..n_blocks {
            let off = 8 + 8 * i;
            let e = le_u64(&footer[off..off + 8]);
            if e < prev {
                return Err(corrupt(path, "block offsets not monotone"));
            }
            prev = e;
            block_ends.push(e);
        }
        let tail = 8 + 8 * n_blocks;
        let schema_fp = le_u64(&footer[tail..tail + 8]);
        let n_features = le_u32(&footer[tail + 8..tail + 12]);
        if n_features as usize != n_blocks - 2 {
            return Err(corrupt(
                path,
                format!(
                    "footer says {n_features} feature columns but the segment has {} \
                     feature blocks",
                    n_blocks - 2
                ),
            ));
        }
        let body_crc = le_u32(&footer[footer.len() - 4..]);
        let body_len = (footer_start - SEG_MAGIC.len()) as u64;
        let Some(&last_end) = block_ends.last() else {
            return Err(corrupt(path, "footer holds no block offsets"));
        };
        if last_end != body_len {
            return Err(corrupt(
                path,
                "last block offset does not match body length",
            ));
        }
        Ok(Footer {
            n_rows,
            block_ends,
            schema_fp,
            n_features,
            body_crc,
            body_len,
        })
    }

    /// Encoded byte size of block `i` (`i < block_ends.len()`, which
    /// `parse` pinned to the footer's block count).
    pub fn block_bytes(&self, i: usize) -> u64 {
        let start = if i == 0 { 0 } else { self.block_ends[i - 1] };
        // lint: allow(panic_path, reason="parse() cross-checks the block count against the footer length, and callers iterate i in 0..block_ends.len()")
        self.block_ends[i] - start
    }
}

/// Bounds-checked body reader used during decode.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    end: usize,
}

impl<'a> Cursor<'a> {
    fn read_varint(&mut self, path: &Path, what: &str) -> Result<u64, StoreError> {
        if self.pos >= self.end {
            return Err(corrupt(path, format!("{what}: block exhausted")));
        }
        let mut p = self.pos;
        let v = varint::read_u64(&self.bytes[..self.end], &mut p)
            .ok_or_else(|| corrupt(path, format!("{what}: truncated varint")))?;
        self.pos = p;
        Ok(v)
    }

    fn read_u8(&mut self, path: &Path, what: &str) -> Result<u8, StoreError> {
        if self.pos >= self.end {
            return Err(corrupt(path, format!("{what}: block exhausted")));
        }
        let b = self.bytes[self.pos];
        self.pos += 1;
        Ok(b)
    }

    fn finish(&self, path: &Path, what: &str) -> Result<(), StoreError> {
        if self.pos != self.end {
            return Err(corrupt(
                path,
                format!("{what}: {} trailing bytes in block", self.end - self.pos),
            ));
        }
        Ok(())
    }
}

/// A fully decoded segment: columnar in memory, rows materialized on
/// demand. Feature columns are exposed as slices so the frozen scorer can
/// consume them without building row vectors.
#[derive(Debug)]
pub struct Segment {
    disk_ids: Vec<u32>,
    days: Vec<u16>,
    cols: Vec<Vec<f32>>,
    /// Schema fingerprint the segment was written under (from the footer).
    schema_fp: u64,
}

impl Segment {
    /// Decode and fully verify a segment image (both CRCs, every offset and
    /// varint bounds-checked).
    pub fn decode(bytes: &[u8], path: &Path) -> Result<Segment, StoreError> {
        let footer = Footer::parse(bytes, path)?;
        let body_end = SEG_MAGIC.len() + footer.body_len as usize;
        if crc32(&bytes[..body_end]) != footer.body_crc {
            return Err(corrupt(path, "body CRC mismatch"));
        }
        let n = footer.n_rows as usize;
        let n_features = footer.n_features as usize;
        let body = bytes;
        let block = |i: usize| -> (usize, usize) {
            let start = if i == 0 { 0 } else { footer.block_ends[i - 1] };
            (
                SEG_MAGIC.len() + start as usize,
                // lint: allow(panic_path, reason="called with i in 0..n_blocks only; parse() pinned block_ends.len() to the footer's block count")
                SEG_MAGIC.len() + footer.block_ends[i] as usize,
            )
        };

        // Block 0: disk ids.
        let (start, end) = block(0);
        let mut cur = Cursor {
            bytes: body,
            pos: start,
            end,
        };
        let dict_len = cur.read_varint(path, "disk dict length")? as usize;
        if dict_len > n.max(1) {
            return Err(corrupt(path, "disk dictionary larger than row count"));
        }
        let mut dict: Vec<u32> = Vec::with_capacity(dict_len);
        let mut acc = 0u64;
        for i in 0..dict_len {
            let d = cur.read_varint(path, "disk dict entry")?;
            acc = if i == 0 { d } else { acc.saturating_add(d) };
            let id = u32::try_from(acc).map_err(|_| corrupt(path, "disk id exceeds u32"))?;
            dict.push(id);
        }
        let mut disk_ids = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = cur.read_varint(path, "disk index")? as usize;
            let id = *dict
                .get(idx)
                .ok_or_else(|| corrupt(path, "disk index out of dictionary range"))?;
            disk_ids.push(id);
        }
        cur.finish(path, "disk block")?;

        // Block 1: days.
        let (start, end) = block(1);
        let mut cur = Cursor {
            bytes: body,
            pos: start,
            end,
        };
        let mut days = Vec::with_capacity(n);
        let mut prev = 0i64;
        for _ in 0..n {
            let d = varint::unzigzag(cur.read_varint(path, "day delta")?);
            let day = prev
                .checked_add(d)
                .ok_or_else(|| corrupt(path, "day overflow"))?;
            let day = u16::try_from(day).map_err(|_| corrupt(path, "day out of u16 range"))?;
            days.push(day);
            prev = i64::from(day);
        }
        cur.finish(path, "day block")?;

        // Feature blocks.
        let mut cols = Vec::with_capacity(n_features);
        for c in 0..n_features {
            let (start, end) = block(2 + c);
            let mut cur = Cursor {
                bytes: body,
                pos: start,
                end,
            };
            let mode = cur.read_u8(path, "column mode")?;
            let mut col = Vec::with_capacity(n);
            match mode {
                MODE_INT_DELTA => {
                    // Hot loop of the whole replay path (every feature
                    // column × rows): inline the one-byte varint fast path —
                    // slow-moving counters delta to 0 or small values, so
                    // almost every code is a single byte.
                    let mut prev = 0i64;
                    let end = cur.end;
                    let mut pos = cur.pos;
                    for _ in 0..n {
                        if pos >= end {
                            return Err(corrupt(path, "feature delta: block exhausted"));
                        }
                        // lint: allow(panic_path, reason="pos < end was just checked, and end is a parse()-validated block bound inside body")
                        let b = body[pos];
                        let d = if b < 0x80 {
                            pos += 1;
                            u64::from(b)
                        } else {
                            varint::read_u64(&body[..end], &mut pos)
                                .ok_or_else(|| corrupt(path, "feature delta: truncated varint"))?
                        };
                        let u = prev.wrapping_add(varint::unzigzag(d));
                        col.push(u as u64 as f32);
                        prev = u;
                    }
                    cur.pos = pos;
                }
                MODE_RAW_F32 => {
                    for _ in 0..n {
                        if cur.pos + 4 > cur.end {
                            return Err(corrupt(path, "raw f32 column truncated"));
                        }
                        let bits = le_u32(&body[cur.pos..cur.pos + 4]);
                        cur.pos += 4;
                        col.push(f32::from_bits(bits));
                    }
                }
                m => {
                    return Err(corrupt(path, format!("unknown column mode byte {m}")));
                }
            }
            cur.finish(path, "feature block")?;
            cols.push(col);
        }

        Ok(Segment {
            disk_ids,
            days,
            cols,
            schema_fp: footer.schema_fp,
        })
    }

    pub fn n_rows(&self) -> usize {
        self.disk_ids.len()
    }

    /// Feature columns per row.
    pub fn n_features(&self) -> usize {
        self.cols.len()
    }

    /// Fingerprint of the schema the segment was written under.
    pub fn schema_fp(&self) -> u64 {
        self.schema_fp
    }

    pub fn disk_ids(&self) -> &[u32] {
        &self.disk_ids
    }

    pub fn days(&self) -> &[u16] {
        &self.days
    }

    /// One decoded feature column (all rows of feature `c < n_features()`).
    pub fn feature_col(&self, c: usize) -> &[f32] {
        // lint: allow(panic_path, reason="decode() builds exactly n_features columns; c is a schema feature index by contract")
        &self.cols[c]
    }

    /// All feature columns as borrowed slices — the batch-columnar view the
    /// frozen scorer consumes without materializing rows.
    pub fn feature_cols(&self) -> Vec<&[f32]> {
        self.cols.iter().map(|c| c.as_slice()).collect()
    }

    /// Materialize row `i < n_rows()` as a [`DiskDay`] (gathers across
    /// columns).
    pub fn record(&self, i: usize) -> DiskDay {
        let mut features = vec![0.0f32; self.cols.len()];
        for (f, col) in features.iter_mut().zip(self.cols.iter()) {
            // lint: allow(panic_path, reason="i < n_rows() by contract and decode() gives every column exactly n_rows entries")
            *f = col[i];
        }
        DiskDay {
            // lint: allow(panic_path, reason="i < n_rows() == disk_ids.len() by contract")
            disk_id: self.disk_ids[i],
            // lint: allow(panic_path, reason="i < n_rows() and decode() sizes days identically to disk_ids")
            day: self.days[i],
            features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orfpred_smart::N_FEATURES;
    use std::path::PathBuf;

    fn p() -> PathBuf {
        PathBuf::from("test.orfseg")
    }

    fn sample_rows() -> Vec<DiskDay> {
        let mut rows = Vec::new();
        for day in 0..5u16 {
            for disk in [0u32, 3, 7] {
                let mut features = vec![0.0f32; N_FEATURES];
                for (i, f) in features.iter_mut().enumerate() {
                    *f = match i % 4 {
                        0 => (u64::from(day) * 100 + u64::from(disk)) as f32, // counter
                        1 => 0.5 + day as f32,                                // fractional
                        2 => -1.0,                                            // negative
                        _ => 1e12,                                            // huge counter
                    };
                }
                rows.push(DiskDay {
                    disk_id: disk,
                    day,
                    features,
                });
            }
        }
        rows
    }

    #[test]
    fn encode_decode_round_trip_bitwise() {
        let rows = sample_rows();
        let mut b = SegmentBuilder::new();
        for r in &rows {
            b.push(r);
        }
        let bytes = b.encode();
        let seg = Segment::decode(&bytes, &p()).unwrap();
        assert_eq!(seg.n_rows(), rows.len());
        for (i, r) in rows.iter().enumerate() {
            let got = seg.record(i);
            assert_eq!(got.disk_id, r.disk_id);
            assert_eq!(got.day, r.day);
            for (a, b) in got.features.iter().zip(r.features.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn raw_mode_preserves_awkward_floats() {
        let specials = [
            -0.0f32,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            1.0e38,
            -3.25,
        ];
        let mut b = SegmentBuilder::new();
        for (i, &v) in specials.iter().enumerate() {
            let mut features = vec![v; N_FEATURES];
            features[0] = i as f32; // keep one clean counter column
            b.push(&DiskDay {
                disk_id: i as u32,
                day: 0,
                features,
            });
        }
        let bytes = b.encode();
        let seg = Segment::decode(&bytes, &p()).unwrap();
        for (i, &v) in specials.iter().enumerate() {
            assert_eq!(seg.record(i).features[1].to_bits(), v.to_bits());
        }
    }

    #[test]
    fn empty_segment_round_trips() {
        let b = SegmentBuilder::new();
        let bytes = b.encode();
        let seg = Segment::decode(&bytes, &p()).unwrap();
        assert_eq!(seg.n_rows(), 0);
        assert_eq!(seg.n_features(), N_FEATURES);
        assert_eq!(seg.schema_fp(), DomainSchema::smart().fingerprint());
    }

    #[test]
    fn non_smart_widths_round_trip_with_their_fingerprint() {
        let schema = DomainSchema::mce();
        let width = schema.n_base_features();
        assert_ne!(width, N_FEATURES, "mce must exercise a different width");
        let mut b = SegmentBuilder::for_schema(&schema);
        for day in 0..3u16 {
            let features: Vec<f32> = (0..width).map(|c| (c as f32) + f32::from(day)).collect();
            b.push(&DiskDay {
                disk_id: 1,
                day,
                features,
            });
        }
        let bytes = b.encode();
        let seg = Segment::decode(&bytes, &p()).unwrap();
        assert_eq!(seg.n_rows(), 3);
        assert_eq!(seg.n_features(), width);
        assert_eq!(seg.schema_fp(), schema.fingerprint());
        assert_eq!(seg.record(2).features.len(), width);
        assert_eq!(seg.record(2).features[width - 1], (width - 1) as f32 + 2.0);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let mut b = SegmentBuilder::new();
        for r in sample_rows() {
            b.push(&r);
        }
        let bytes = b.encode();
        for cut in 0..bytes.len() {
            match Segment::decode(&bytes[..cut], &p()) {
                Err(StoreError::Corrupt { .. }) => {}
                other => panic!("cut at {cut}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_bit_flip_is_caught() {
        let mut b = SegmentBuilder::new();
        for r in sample_rows().into_iter().take(4) {
            b.push(&r);
        }
        let bytes = b.encode();
        let mut tampered = bytes.clone();
        for byte in 0..tampered.len() {
            tampered[byte] ^= 0x01;
            assert!(
                matches!(
                    Segment::decode(&tampered, &p()),
                    Err(StoreError::Corrupt { .. })
                ),
                "flip at byte {byte} went undetected"
            );
            tampered[byte] ^= 0x01;
        }
    }
}
