//! Store reader: manifest-driven access to sealed segments, streaming
//! record/event replay, full verification, and the footer-only summary
//! behind `orfpred data info`.
//!
//! Replay works segment-at-a-time on owned buffers (one decoded segment
//! resident at a time), so memory stays bounded by the segment size, not
//! the fleet. Failure events are synthesized from the manifest's disk
//! roster and interleaved in exactly the simulator's order — all samples
//! of day *d* (ascending disk id), then all failures of day *d* — which is
//! what makes replay-from-store bit-identical to replay-from-sim.

use crate::segment::{logical_row_bytes, Footer, Segment, SEG_MAGIC};
use crate::writer::{StoreMeta, META_FILE, STORE_VERSION};
use crate::StoreError;
use orfpred_smart::gen::FleetEvent;
use orfpred_smart::record::{Dataset, DiskDay};
use orfpred_smart::DomainSchema;
use std::fs;
use std::path::{Path, PathBuf};

fn io_err(path: &Path, e: impl std::fmt::Display) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        detail: e.to_string(),
    }
}

fn corrupt(path: &Path, detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        path: path.to_path_buf(),
        detail: detail.into(),
    }
}

/// An opened store: validated manifest + lazy segment access.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    meta: StoreMeta,
    /// Resolved domain schema (manifest's, or implicit SMART for v1).
    schema: DomainSchema,
}

impl Store {
    /// Open a store directory: parse the manifest and cheaply
    /// cross-check it (version, row totals, dense roster, segment files
    /// present with the exact recorded size — which already catches torn
    /// writes without reading row data). Full CRC verification is
    /// [`verify`](Self::verify).
    pub fn open(dir: &Path) -> Result<Store, StoreError> {
        let meta_path = dir.join(META_FILE);
        let json = fs::read_to_string(&meta_path).map_err(|e| io_err(&meta_path, e))?;
        let meta: StoreMeta = serde_json::from_str(&json)
            .map_err(|e| corrupt(&meta_path, format!("bad manifest: {e}")))?;
        if meta.version > STORE_VERSION {
            return Err(corrupt(
                &meta_path,
                format!(
                    "manifest version {} is newer than this reader ({})",
                    meta.version, STORE_VERSION
                ),
            ));
        }
        let sum: u64 = meta.segments.iter().map(|s| s.rows).sum();
        if sum != meta.total_rows {
            return Err(corrupt(
                &meta_path,
                format!(
                    "total_rows {} != sum of segment rows {sum}",
                    meta.total_rows
                ),
            ));
        }
        for (i, d) in meta.disks.iter().enumerate() {
            if d.disk_id as usize != i {
                return Err(corrupt(
                    &meta_path,
                    format!("disk roster not dense at slot {i}"),
                ));
            }
        }
        for s in &meta.segments {
            let path = dir.join(&s.file);
            let actual = fs::metadata(&path).map_err(|e| io_err(&path, e))?.len();
            if actual != s.bytes {
                return Err(corrupt(
                    &path,
                    format!(
                        "segment is {actual} bytes, manifest says {} (torn write?)",
                        s.bytes
                    ),
                ));
            }
        }
        let schema = match &meta.schema {
            Some(s) => {
                s.validate()
                    .map_err(|e| corrupt(&meta_path, format!("manifest schema invalid: {e}")))?;
                s.clone()
            }
            None => DomainSchema::smart(),
        };
        Ok(Store {
            dir: dir.to_path_buf(),
            meta,
            schema,
        })
    }

    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// The domain schema the store's rows follow (implicit SMART when the
    /// manifest predates embedded schemas).
    pub fn schema(&self) -> &DomainSchema {
        &self.schema
    }

    /// Typed error when the store's layout disagrees with `domain` — the
    /// check behind `orfpred data verify --domain`. Fingerprints cover
    /// attribute ids/names/plausibility bits and the derived-feature plan,
    /// so a rename or window change is caught, not just a width change.
    pub fn verify_domain(&self, domain: &DomainSchema) -> Result<(), StoreError> {
        let (store_fp, domain_fp) = (self.schema.fingerprint(), domain.fingerprint());
        if store_fp != domain_fp {
            return Err(StoreError::InvalidInput {
                detail: format!(
                    "store was recorded under schema `{}` (fingerprint {store_fp:016x}, \
                     {} features) but domain `{}` expects fingerprint {domain_fp:016x} \
                     ({} features)",
                    self.schema.name,
                    self.schema.n_base_features(),
                    domain.name,
                    domain.n_base_features()
                ),
            });
        }
        Ok(())
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn n_segments(&self) -> usize {
        self.meta.segments.len()
    }

    pub fn n_rows(&self) -> u64 {
        self.meta.total_rows
    }

    fn segment_path(&self, i: usize) -> PathBuf {
        // lint: allow(panic_path, reason="private helper; every caller iterates i in 0..n_segments()")
        self.dir.join(&self.meta.segments[i].file)
    }

    /// Load and fully decode (CRC-verify) segment `i`.
    pub fn segment(&self, i: usize) -> Result<Segment, StoreError> {
        let path = self.segment_path(i);
        let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
        let seg = Segment::decode(&bytes, &path)?;
        // lint: allow(panic_path, reason="segment_path(i) above already indexed the same manifest entry; callers stay in 0..n_segments()")
        let want = self.meta.segments[i].rows;
        if seg.n_rows() as u64 != want {
            return Err(corrupt(
                &path,
                format!("segment holds {} rows, manifest says {want}", seg.n_rows()),
            ));
        }
        if seg.schema_fp() != self.schema.fingerprint() {
            return Err(corrupt(
                &path,
                format!(
                    "segment schema fingerprint {:016x} does not match the store's \
                     `{}` schema ({:016x})",
                    seg.schema_fp(),
                    self.schema.name,
                    self.schema.fingerprint()
                ),
            ));
        }
        if seg.n_features() != self.schema.n_base_features() {
            return Err(corrupt(
                &path,
                format!(
                    "segment rows have {} feature columns, schema `{}` has {} base columns",
                    seg.n_features(),
                    self.schema.name,
                    self.schema.n_base_features()
                ),
            ));
        }
        Ok(seg)
    }

    /// Stream every record in `(day, disk_id)` order.
    pub fn records(&self) -> Records<'_> {
        Records {
            store: self,
            next_seg: 0,
            seg: None,
            row: 0,
            failed: false,
        }
    }

    /// Stream the full event sequence — samples interleaved with
    /// synthesized failure events — in exactly [`FleetSim`]'s order.
    ///
    /// [`FleetSim`]: orfpred_smart::gen::FleetSim
    pub fn events(&self) -> Events<'_> {
        let mut failures: Vec<(u16, u32)> = self
            .meta
            .disks
            .iter()
            .filter(|d| d.failed)
            .map(|d| (d.last_day, d.disk_id))
            .collect();
        failures.sort_unstable();
        Events {
            records: self.records(),
            failures,
            next_failure: 0,
            pending: None,
            done: false,
        }
    }

    /// Stream the event sequence starting after a catch-up cursor: the
    /// first `skip` events (already covered by a restored checkpoint's
    /// `events_ingested` count) are consumed and discarded, the rest are
    /// yielded in [`Self::events`] order. One daemon tenant calls this with
    /// its own cursor, so every tenant replays exactly the store tail it
    /// missed.
    pub fn events_from(
        &self,
        skip: u64,
    ) -> impl Iterator<Item = Result<FleetEvent, StoreError>> + '_ {
        self.events().skip(skip as usize)
    }

    /// Materialize the whole store as a [`Dataset`] (validated). Only for
    /// stores that fit in memory — replay via [`events`](Self::events) for
    /// the rest.
    pub fn dataset(&self) -> Result<Dataset, StoreError> {
        let mut records = Vec::with_capacity(self.meta.total_rows as usize);
        for rec in self.records() {
            records.push(rec?);
        }
        let ds = Dataset {
            model: self.meta.model.clone(),
            duration_days: self.meta.duration_days,
            records,
            disks: self.meta.disks.clone(),
        };
        ds.validate().map_err(|e| {
            corrupt(
                &self.dir.join(META_FILE),
                format!("replayed dataset invalid: {e}"),
            )
        })?;
        Ok(ds)
    }

    /// Decode every segment, verifying both CRCs, the manifest row counts,
    /// global `(day, disk_id)` ordering, and that every row lands inside
    /// its disk's `[install_day, last_day]` window.
    pub fn verify(&self) -> Result<VerifyReport, StoreError> {
        let mut rows = 0u64;
        let mut bytes = 0u64;
        let mut last_key: Option<(u16, u32)> = None;
        for i in 0..self.n_segments() {
            let seg = self.segment(i)?;
            let path = self.segment_path(i);
            // lint: allow(panic_path, reason="i ranges over 0..n_segments(), the length of this vec")
            bytes += self.meta.segments[i].bytes;
            for r in 0..seg.n_rows() {
                // lint: allow(panic_path, reason="r ranges over 0..n_rows(); decode() guarantees all column vecs share that length")
                let (day, disk) = (seg.days()[r], seg.disk_ids()[r]);
                let key = (day, disk);
                if let Some(last) = last_key {
                    if key <= last {
                        return Err(corrupt(
                            &path,
                            format!("row order violated: {key:?} after {last:?}"),
                        ));
                    }
                }
                last_key = Some(key);
                let info = self.meta.disks.get(disk as usize).ok_or_else(|| {
                    corrupt(&path, format!("row references disk {disk} outside roster"))
                })?;
                if day < info.install_day || day > info.last_day {
                    return Err(corrupt(
                        &path,
                        format!(
                            "disk {disk} sampled on day {day} outside its window [{}, {}]",
                            info.install_day, info.last_day
                        ),
                    ));
                }
            }
            rows += seg.n_rows() as u64;
        }
        if rows != self.meta.total_rows {
            return Err(corrupt(
                &self.dir.join(META_FILE),
                format!(
                    "replayed {rows} rows, manifest says {}",
                    self.meta.total_rows
                ),
            ));
        }
        Ok(VerifyReport {
            segments: self.n_segments(),
            rows,
            bytes,
            schema_fp: self.schema.fingerprint(),
        })
    }

    /// Footer-only summary (no row decode): sizes, date range, and
    /// per-column encoded bytes + modes for the `data info` report.
    pub fn info(&self) -> Result<StoreInfo, StoreError> {
        let n_features = self.schema.n_base_features();
        let mut columns: Vec<ColumnStat> = (0..n_features)
            .map(|c| ColumnStat {
                name: self.schema.feature_name(c),
                encoded_bytes: 0,
                raw_segments: 0,
                int_segments: 0,
            })
            .collect();
        let mut disk_id_bytes = 0u64;
        let mut day_bytes = 0u64;
        let mut disk_bytes = 0u64;
        for (i, sm) in self.meta.segments.iter().enumerate() {
            let path = self.segment_path(i);
            let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
            let footer = Footer::parse(&bytes, &path)?;
            if u64::from(footer.n_rows) != sm.rows {
                return Err(corrupt(
                    &path,
                    format!(
                        "footer says {} rows, manifest says {}",
                        footer.n_rows, sm.rows
                    ),
                ));
            }
            if footer.schema_fp != self.schema.fingerprint()
                || footer.n_features as usize != n_features
            {
                return Err(corrupt(
                    &path,
                    format!(
                        "segment footer schema (fingerprint {:016x}, {} features) \
                         disagrees with the store's `{}` schema",
                        footer.schema_fp, footer.n_features, self.schema.name
                    ),
                ));
            }
            disk_bytes += bytes.len() as u64;
            disk_id_bytes += footer.block_bytes(0);
            day_bytes += footer.block_bytes(1);
            for (c, col) in columns.iter_mut().enumerate() {
                let b = 2 + c;
                col.encoded_bytes += footer.block_bytes(b);
                // Peek the mode byte (first byte of the block's body span).
                let start = if b == 0 { 0 } else { footer.block_ends[b - 1] };
                let mode = bytes[SEG_MAGIC.len() + start as usize];
                if mode == 0 {
                    col.int_segments += 1;
                } else {
                    col.raw_segments += 1;
                }
            }
        }
        let m = &self.meta;
        Ok(StoreInfo {
            segments: m.segments.len(),
            rows: m.total_rows,
            segment_rows: m.segment_rows,
            n_disks: m.disks.len(),
            n_failed: m.disks.iter().filter(|d| d.failed).count(),
            first_day: m.segments.first().map(|s| s.first_day),
            last_day: m.segments.last().map(|s| s.last_day),
            duration_days: m.duration_days,
            model: m.model.clone(),
            disk_bytes,
            logical_bytes: m.total_rows * logical_row_bytes(n_features),
            disk_id_bytes,
            day_bytes,
            columns,
            schema_name: self.schema.name.clone(),
            schema_fp: self.schema.fingerprint(),
            n_attributes: self.schema.n_attributes(),
        })
    }
}

/// What [`Store::verify`] checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    pub segments: usize,
    pub rows: u64,
    /// Encoded bytes decoded and CRC-verified.
    pub bytes: u64,
    /// Schema fingerprint every segment matched.
    pub schema_fp: u64,
}

/// Per-feature-column stats for `data info`.
#[derive(Debug, Clone)]
pub struct ColumnStat {
    /// Human feature name (e.g. `smart_5_raw`).
    pub name: String,
    /// Encoded bytes across all segments (including the mode byte).
    pub encoded_bytes: u64,
    /// Segments that stored this column as raw f32 bits.
    pub raw_segments: u32,
    /// Segments that stored this column delta-coded.
    pub int_segments: u32,
}

/// Footer-level store summary.
#[derive(Debug, Clone)]
pub struct StoreInfo {
    pub segments: usize,
    pub rows: u64,
    pub segment_rows: u32,
    pub n_disks: usize,
    pub n_failed: usize,
    pub first_day: Option<u16>,
    pub last_day: Option<u16>,
    pub duration_days: u16,
    pub model: String,
    /// Actual bytes across segment files.
    pub disk_bytes: u64,
    /// Uncompressed row-struct bytes the same rows would occupy.
    pub logical_bytes: u64,
    pub disk_id_bytes: u64,
    pub day_bytes: u64,
    pub columns: Vec<ColumnStat>,
    /// Domain schema name (`smart` for v1 manifests).
    pub schema_name: String,
    /// Schema fingerprint all segments were written under.
    pub schema_fp: u64,
    /// Attributes (not feature columns) in the schema.
    pub n_attributes: usize,
}

/// Streaming record iterator: one decoded segment resident at a time.
/// Yields `Err` once on the first corrupt/unreadable segment, then fuses.
#[derive(Debug)]
pub struct Records<'a> {
    store: &'a Store,
    next_seg: usize,
    seg: Option<Segment>,
    row: usize,
    failed: bool,
}

impl Iterator for Records<'_> {
    type Item = Result<DiskDay, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(seg) = &self.seg {
                if self.row < seg.n_rows() {
                    let rec = seg.record(self.row);
                    self.row += 1;
                    return Some(Ok(rec));
                }
                self.seg = None;
            }
            if self.next_seg >= self.store.n_segments() {
                return None;
            }
            match self.store.segment(self.next_seg) {
                Ok(seg) => {
                    self.next_seg += 1;
                    self.row = 0;
                    self.seg = Some(seg);
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Streaming event iterator: records plus synthesized failure events, in
/// simulator order.
#[derive(Debug)]
pub struct Events<'a> {
    records: Records<'a>,
    /// `(fail_day, disk_id)` sorted ascending.
    failures: Vec<(u16, u32)>,
    next_failure: usize,
    pending: Option<DiskDay>,
    done: bool,
}

impl Iterator for Events<'_> {
    type Item = Result<FleetEvent, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if self.pending.is_none() {
            match self.records.next() {
                Some(Ok(rec)) => self.pending = Some(rec),
                Some(Err(e)) => {
                    self.done = true;
                    return Some(Err(e));
                }
                None => {}
            }
        }
        // A failure on day d comes after every sample of day d (the failing
        // disk reports its final SMART snapshot before the failure event).
        let fail_now = match (&self.pending, self.failures.get(self.next_failure)) {
            (Some(rec), Some(&(fd, _))) => fd < rec.day,
            (None, Some(_)) => true,
            (_, None) => false,
        };
        if fail_now {
            let (day, disk_id) = self.failures[self.next_failure];
            self.next_failure += 1;
            return Some(Ok(FleetEvent::Failure { disk_id, day }));
        }
        match self.pending.take() {
            Some(rec) => Some(Ok(FleetEvent::Sample(rec))),
            None => {
                self.done = true;
                None
            }
        }
    }
}
